"""Static timing analysis over per-gate delay annotations."""

from repro.sta.timing import TimingReport, analyze_timing, critical_path

__all__ = ["TimingReport", "analyze_timing", "critical_path"]
