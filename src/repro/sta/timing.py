"""Static timing analysis: arrival times, slack, critical path.

SERTOPT's timing constraint is the baseline circuit's delay ``T_init``;
this module computes circuit delay under any per-gate delay annotation
(from :class:`repro.tech.electrical_view.CircuitElectrical` or from a
raw delay-assignment vector during nullspace exploration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclass(frozen=True)
class TimingReport:
    """Arrival/required times (ps) plus derived timing facts."""

    circuit_name: str
    arrival_ps: dict[str, float]
    required_ps: dict[str, float]
    delay_ps: float

    def slack_ps(self, name: str) -> float:
        return self.required_ps[name] - self.arrival_ps[name]

    def worst_slack_ps(self) -> float:
        return min(
            self.required_ps[name] - self.arrival_ps[name]
            for name in self.arrival_ps
        )


def analyze_timing(
    circuit: Circuit, delays: Mapping[str, float]
) -> TimingReport:
    """Longest-path analysis; primary inputs arrive at t = 0.

    ``delays`` maps every logic gate to its propagation delay in ps.
    The required time at every primary output is the circuit delay, so
    gates on the critical path have zero slack.
    """
    arrival: dict[str, float] = {}
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            arrival[name] = 0.0
            continue
        delay = delays.get(name)
        if delay is None:
            raise AnalysisError(f"no delay annotation for gate {name!r}")
        if delay < 0.0:
            raise AnalysisError(f"negative delay for gate {name!r}: {delay}")
        arrival[name] = delay + max(arrival[f] for f in gate.fanins)

    circuit_delay = max(arrival[name] for name in circuit.outputs)

    required: dict[str, float] = {}
    for name in circuit.reverse_topological_order():
        constraint = circuit_delay if circuit.is_output(name) else float("inf")
        for successor in circuit.fanouts(name):
            successor_required = required[successor] - delays.get(successor, 0.0)
            constraint = min(constraint, successor_required)
        required[name] = constraint

    return TimingReport(
        circuit_name=circuit.name,
        arrival_ps=arrival,
        required_ps=required,
        delay_ps=circuit_delay,
    )


def critical_path(
    circuit: Circuit, delays: Mapping[str, float]
) -> tuple[str, ...]:
    """Gate names along (one) longest PI-to-PO path, source first."""
    report = analyze_timing(circuit, delays)
    arrival = report.arrival_ps
    end = max(circuit.outputs, key=lambda name: arrival[name])
    path: list[str] = []
    current = end
    while True:
        gate = circuit.gate(current)
        if gate.is_input:
            break
        path.append(current)
        current = max(gate.fanins, key=lambda f: arrival[f])
    path.reverse()
    return tuple(path)
