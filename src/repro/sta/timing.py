"""Static timing analysis: arrival times, slack, critical path.

SERTOPT's timing constraint is the baseline circuit's delay ``T_init``;
this module computes circuit delay under any per-gate delay annotation
(from :class:`repro.tech.electrical_view.CircuitElectrical` or from a
raw delay-assignment vector during nullspace exploration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclass(frozen=True)
class TimingReport:
    """Arrival/required times (ps) plus derived timing facts."""

    circuit_name: str
    arrival_ps: dict[str, float]
    required_ps: dict[str, float]
    delay_ps: float

    def slack_ps(self, name: str) -> float:
        return self.required_ps[name] - self.arrival_ps[name]

    def worst_slack_ps(self) -> float:
        return min(
            self.required_ps[name] - self.arrival_ps[name]
            for name in self.arrival_ps
        )


def analyze_timing(
    circuit: Circuit, delays: Mapping[str, float]
) -> TimingReport:
    """Longest-path analysis; primary inputs arrive at t = 0.

    ``delays`` maps every logic gate to its propagation delay in ps.
    The required time at every primary output is the circuit delay, so
    gates on the critical path have zero slack.

    >>> from repro.circuit.gate import GateType
    >>> from repro.circuit.netlist import Circuit
    >>> c = Circuit()
    >>> a = c.add_input("a")
    >>> g1 = c.add_gate("g1", GateType.NOT, [a])
    >>> g2 = c.add_gate("g2", GateType.NOT, [g1])
    >>> c.mark_output(g2)
    >>> report = analyze_timing(c, {"g1": 10.0, "g2": 5.0})
    >>> report.delay_ps, report.slack_ps("g1")
    (15.0, 0.0)
    """
    arrival: dict[str, float] = {}
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            arrival[name] = 0.0
            continue
        delay = delays.get(name)
        if delay is None:
            raise AnalysisError(f"no delay annotation for gate {name!r}")
        if delay < 0.0:
            raise AnalysisError(f"negative delay for gate {name!r}: {delay}")
        arrival[name] = delay + max(arrival[f] for f in gate.fanins)

    circuit_delay = max(arrival[name] for name in circuit.outputs)

    required: dict[str, float] = {}
    for name in circuit.reverse_topological_order():
        constraint = circuit_delay if circuit.is_output(name) else float("inf")
        for successor in circuit.fanouts(name):
            successor_required = required[successor] - delays.get(successor, 0.0)
            constraint = min(constraint, successor_required)
        required[name] = constraint

    return TimingReport(
        circuit_name=circuit.name,
        arrival_ps=arrival,
        required_ps=required,
        delay_ps=circuit_delay,
    )


@dataclass(frozen=True)
class BatchTimingReport:
    """Dense timing facts for a population of delay annotations.

    Rows of every array follow ``circuit.indexed()`` order; lane ``b``
    equals :func:`analyze_timing` of delay vector ``b`` exactly (max and
    min over floats are exact, so the level-batched reductions introduce
    no rounding differences versus the dict walk).
    """

    arrival_ps: np.ndarray  #: ``(B, V)``
    required_ps: np.ndarray  #: ``(B, V)``
    delay_ps: np.ndarray  #: ``(B,)`` circuit delays

    def slack_ps(self) -> np.ndarray:
        """``(B, V)`` slack per signal (meaningful on gate rows)."""
        return self.required_ps - self.arrival_ps


def analyze_timing_batch(indexed, delays: np.ndarray) -> BatchTimingReport:
    """Longest-path analysis for ``(B, V)`` per-row delay vectors.

    The level-synchronized batched form of :func:`analyze_timing`:
    arrival times sweep forward one logic level at a time (max over
    fan-ins via ``reduceat`` — max and min are exact, so segment
    reassociation cannot change a bit), required times sweep backward,
    and every lane's numbers are exactly those of the scalar walk.  The
    per-level gather plans come precomputed from
    :meth:`IndexedCircuit.fanin_level_segments` /
    :meth:`~IndexedCircuit.fanout_level_segments`, so one call does no
    level bookkeeping of its own — this runs inside every timing-repair
    round of the batched matcher.
    """
    delays = np.asarray(delays, dtype=np.float64)
    if delays.ndim != 2 or delays.shape[1] != indexed.n_signals:
        raise AnalysisError(
            f"expected (B, {indexed.n_signals}) delays, got {delays.shape}"
        )
    if np.any(delays[:, indexed.gate_rows] < 0.0):
        raise AnalysisError("negative delay in batched timing analysis")
    n_lanes = delays.shape[0]

    arrival = np.zeros((n_lanes, indexed.n_signals))
    for rows, srcs, starts in indexed.fanin_level_segments():
        worst = np.maximum.reduceat(arrival[:, srcs], starts, axis=1)
        arrival[:, rows] = delays[:, rows] + worst

    circuit_delay = arrival[:, indexed.output_rows].max(axis=1)

    required = np.where(
        indexed.is_output[np.newaxis, :],
        circuit_delay[:, np.newaxis],
        np.inf,
    )
    for rows, dst, starts in indexed.fanout_level_segments():
        successor_required = np.minimum.reduceat(
            required[:, dst] - delays[:, dst], starts, axis=1
        )
        required[:, rows] = np.minimum(required[:, rows], successor_required)

    return BatchTimingReport(
        arrival_ps=arrival, required_ps=required, delay_ps=circuit_delay
    )


def critical_path(
    circuit: Circuit, delays: Mapping[str, float]
) -> tuple[str, ...]:
    """Gate names along (one) longest PI-to-PO path, source first."""
    report = analyze_timing(circuit, delays)
    arrival = report.arrival_ps
    end = max(circuit.outputs, key=lambda name: arrival[name])
    path: list[str] = []
    current = end
    while True:
        gate = circuit.gate(current)
        if gate.is_input:
            break
        path.append(current)
        current = max(gate.fanins, key=lambda f: arrival[f])
    path.reverse()
    return tuple(path)
