"""Declarative campaign grids and content-addressed scenario keys.

A :class:`CampaignSpec` names every axis of a batch soft-error study —
circuits, injected charges, environments, parameter assignments and the
analysis configuration — and expands into a deterministic sequence of
:class:`ScenarioKey`\\ s.  Keys are hashable, JSON-serializable and carry
a stable SHA-256 content digest, which is what the
:class:`~repro.campaign.store.ResultStore` uses to resume a campaign and
skip scenarios that were already computed (by this run or any earlier
one).

Digest stability is a compatibility contract: two scenarios get the same
digest exactly when the analysis inputs are identical, *including* the
contents of the named assignment and environment — renaming-safe aliases
are deliberately not provided, so a store can never serve a stale result
for a redefined name.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.campaign.environments import SEA_LEVEL, Environment
from repro.core.aserta import AsertaConfig
from repro.core.masking import DEFAULT_SHARE_EPSILON
from repro.errors import AnalysisError, CampaignError
from repro.tech import constants as k
from repro.tech.library import CellParams, ParameterAssignment

#: Version of the key serialization; bump on incompatible digest changes.
KEY_SCHEMA = 1


def canonical_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical (sorted, compact) JSON form."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _cell_payload(cell: CellParams) -> list[float]:
    return [cell.size, cell.length_nm, cell.vdd, cell.vth]


def assignment_fingerprint(assignment: ParameterAssignment) -> str:
    """Short content hash of an assignment (default cell + overrides)."""
    payload = {
        "default": _cell_payload(assignment.default),
        "overrides": {
            name: _cell_payload(cell)
            for name, cell in sorted(assignment.overrides().items())
        },
    }
    return canonical_digest(payload)[:12]


@dataclass(frozen=True)
class ScenarioKey:
    """One point of the campaign grid, fully identifying an analysis.

    ``share_epsilon`` and ``structural_engine`` form the analysis-config
    axis: campaigns can sweep non-default Equation-2 cutoffs or pin the
    event-driven estimator.  At their defaults they are *omitted* from
    the serialized form, so every digest computed before the axis
    existed — and every record in an old result store — still matches a
    default-config scenario exactly; a non-default value changes the
    digest, as any analysis input must.
    """

    circuit: str
    charge_fc: float
    environment: str
    environment_digest: str
    assignment: str
    assignment_digest: str
    n_vectors: int
    seed: int
    n_sample_widths: int
    input_probability: float
    use_tables: bool
    share_epsilon: float = DEFAULT_SHARE_EPSILON
    structural_engine: str = "batched"

    def to_json_dict(self) -> dict[str, Any]:
        payload = {
            "schema": KEY_SCHEMA,
            "circuit": self.circuit,
            "charge_fc": self.charge_fc,
            "environment": self.environment,
            "environment_digest": self.environment_digest,
            "assignment": self.assignment,
            "assignment_digest": self.assignment_digest,
            "n_vectors": self.n_vectors,
            "seed": self.seed,
            "n_sample_widths": self.n_sample_widths,
            "input_probability": self.input_probability,
            "use_tables": self.use_tables,
        }
        # Default values are omitted (not serialized as defaults) so
        # digests of default-config scenarios are stable across the
        # introduction of the analysis-config axis: old stores resume.
        if self.share_epsilon != DEFAULT_SHARE_EPSILON:
            payload["share_epsilon"] = self.share_epsilon
        if self.structural_engine != "batched":
            payload["structural_engine"] = self.structural_engine
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ScenarioKey":
        schema = payload.get("schema", KEY_SCHEMA)
        if schema != KEY_SCHEMA:
            raise CampaignError(
                f"scenario key schema {schema} not supported (expected {KEY_SCHEMA})"
            )
        fields = {key: value for key, value in payload.items() if key != "schema"}
        try:
            return cls(**fields)
        except TypeError as exc:
            raise CampaignError(f"malformed scenario key: {exc}") from None

    def digest(self) -> str:
        """Stable content hash identifying this scenario in a store."""
        return canonical_digest(self.to_json_dict())

    def structural_group(self) -> tuple:
        """Axis values the expensive structural pass (P_ij estimation)
        depends on — scenarios sharing a group share one analyzer."""
        return (
            self.circuit,
            self.n_vectors,
            self.seed,
            self.input_probability,
            self.use_tables,
            self.share_epsilon,
            self.structural_engine,
        )


def _default_assignments() -> dict[str, ParameterAssignment]:
    return {"nominal": ParameterAssignment()}


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative grid of one campaign.

    Scenario order (and therefore store order and summary order) is
    deterministic: circuits and charges in declaration order, assignments
    sorted by name, environments in declaration order, sample-width
    counts in declaration order.  See ``docs/campaigns.md`` for the
    digest/resume semantics.

    >>> spec = CampaignSpec(circuits=("c17",), charges_fc=(4.0, 16.0))
    >>> spec.size()
    2
    >>> keys = spec.scenarios()
    >>> [k.charge_fc for k in keys]
    [4.0, 16.0]
    >>> keys[0].digest() == spec.scenarios()[0].digest()  # stable identity
    True
    """

    #: Circuit names, resolved through the ISCAS-85 registry.
    circuits: tuple[str, ...]
    #: Injected charge per strike, fC, one scenario per value.
    charges_fc: tuple[float, ...] = (k.DEFAULT_CHARGE_FC,)
    #: Deployment scenarios the results are scaled into.
    environments: tuple[Environment, ...] = (SEA_LEVEL,)
    #: Named parameter assignments (design variants) to compare.
    assignments: Mapping[str, ParameterAssignment] = field(
        default_factory=_default_assignments
    )
    #: Random vectors for the P_ij estimate (shared by the whole grid).
    n_vectors: int = 2000
    #: Seed for the sensitization vectors.
    seed: int = 0
    #: Sample-glitch-width counts — the analysis-config axis of the grid.
    sample_width_counts: tuple[int, ...] = (10,)
    #: Static probability assumed at every primary input.
    input_probability: float = 0.5
    #: Route electrical queries through the interpolated look-up tables.
    use_tables: bool = True
    #: Equation-2 deep-chain route-dropping cutoff (analysis-config
    #: axis; non-default values change scenario digests).
    share_epsilon: float = DEFAULT_SHARE_EPSILON
    #: Structural P_ij estimator ("batched" or "event"); bit-identical
    #: by contract, carried so campaigns can pin the escape hatch.
    structural_engine: str = "batched"
    #: Directory for the engine's on-disk compiled-artifact cache
    #: (``P_ij`` matrices, stacked LUT tensors).  ``None`` keeps the
    #: cache in-memory per worker.  Execution configuration only: it
    #: never enters scenario digests, so pointing an existing campaign
    #: at a cache directory cannot invalidate (or be confused with) its
    #: result store.
    cache_dir: str | None = None
    #: Optional :class:`repro.telemetry.Telemetry` handle the runner
    #: records campaign spans and metrics into (workers ship their span
    #: buffers back for cross-process aggregation).  Execution
    #: configuration only, exactly like ``cache_dir``: it never enters
    #: scenario digests, so tracing a campaign cannot invalidate (or be
    #: confused with) its result store.
    telemetry: Any = None

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", os.fspath(self.cache_dir))
        object.__setattr__(self, "circuits", tuple(self.circuits))
        object.__setattr__(
            self, "charges_fc", tuple(float(q) for q in self.charges_fc)
        )
        object.__setattr__(self, "environments", tuple(self.environments))
        object.__setattr__(self, "assignments", dict(self.assignments))
        object.__setattr__(
            self,
            "sample_width_counts",
            tuple(int(n) for n in self.sample_width_counts),
        )
        object.__setattr__(self, "share_epsilon", float(self.share_epsilon))
        if not self.circuits:
            raise CampaignError("campaign needs at least one circuit")
        if len(set(self.circuits)) != len(self.circuits):
            raise CampaignError(f"duplicate circuits in {self.circuits}")
        if not self.charges_fc:
            raise CampaignError("campaign needs at least one injected charge")
        if any(q < 0.0 for q in self.charges_fc):
            raise CampaignError(f"charges must be >= 0 fC, got {self.charges_fc}")
        if len(set(self.charges_fc)) != len(self.charges_fc):
            raise CampaignError(f"duplicate charges in {self.charges_fc}")
        if not self.environments:
            raise CampaignError("campaign needs at least one environment")
        names = [env.name for env in self.environments]
        if len(set(names)) != len(names):
            raise CampaignError(f"duplicate environment names in {names}")
        if not self.assignments:
            raise CampaignError("campaign needs at least one assignment")
        if not self.sample_width_counts:
            raise CampaignError("campaign needs at least one sample-width count")
        if len(set(self.sample_width_counts)) != len(self.sample_width_counts):
            raise CampaignError(
                f"duplicate sample-width counts in {self.sample_width_counts}"
            )
        # Reuse AsertaConfig's validation for the shared analysis knobs.
        try:
            for count in self.sample_width_counts:
                self.aserta_config(count)
        except AnalysisError as exc:
            raise CampaignError(str(exc)) from None

    def aserta_config(self, n_sample_widths: int | None = None) -> AsertaConfig:
        """The analyzer configuration for one sample-width count."""
        return AsertaConfig(
            n_vectors=self.n_vectors,
            seed=self.seed,
            n_sample_widths=(
                self.sample_width_counts[0]
                if n_sample_widths is None
                else n_sample_widths
            ),
            input_probability=self.input_probability,
            use_tables=self.use_tables,
            share_epsilon=self.share_epsilon,
            structural_engine=self.structural_engine,
        )

    def environment_by_name(self, name: str) -> Environment:
        for env in self.environments:
            if env.name == name:
                return env
        raise CampaignError(f"environment {name!r} not in this campaign")

    def size(self) -> int:
        """Number of scenarios the grid expands into."""
        return (
            len(self.circuits)
            * len(self.charges_fc)
            * len(self.environments)
            * len(self.assignments)
            * len(self.sample_width_counts)
        )

    def structural_groups(self) -> tuple[tuple, ...]:
        """Distinct structural groups of the grid, in scenario order.

        One entry per expensive structural pass (see
        :meth:`ScenarioKey.structural_group`) — what a resident worker
        pool needs to know to warm up ahead of the first batch.
        """
        groups: list[tuple] = []
        seen: set[tuple] = set()
        for key in self.scenarios():
            group = key.structural_group()
            if group not in seen:
                seen.add(group)
                groups.append(group)
        return tuple(groups)

    def scenarios(self) -> tuple[ScenarioKey, ...]:
        """Expand the grid into its deterministic scenario sequence."""
        env_digests = {env.name: env.fingerprint() for env in self.environments}
        assignment_digests = {
            name: assignment_fingerprint(assignment)
            for name, assignment in self.assignments.items()
        }
        keys: list[ScenarioKey] = []
        for circuit in self.circuits:
            for assignment_name in sorted(self.assignments):
                for charge in self.charges_fc:
                    for env in self.environments:
                        for count in self.sample_width_counts:
                            keys.append(
                                ScenarioKey(
                                    circuit=circuit,
                                    charge_fc=charge,
                                    environment=env.name,
                                    environment_digest=env_digests[env.name],
                                    assignment=assignment_name,
                                    assignment_digest=assignment_digests[
                                        assignment_name
                                    ],
                                    n_vectors=self.n_vectors,
                                    seed=self.seed,
                                    n_sample_widths=count,
                                    input_probability=self.input_probability,
                                    use_tables=self.use_tables,
                                    share_epsilon=self.share_epsilon,
                                    structural_engine=self.structural_engine,
                                )
                            )
        return tuple(keys)
