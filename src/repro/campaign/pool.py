"""A resident, pre-forked worker pool for campaign execution.

``concurrent.futures.ProcessPoolExecutor`` made every ``run()`` pay the
pool's fixed costs on the critical path: processes were spawned lazily
at first ``submit``, each worker re-imported NumPy and rebuilt its
engine handle mid-campaign, batches were assigned statically, and
results arrived only at the barrier join.  On the committed bench grid
that stack of fixed costs made 2 workers *slower* than serial (0.56×).

:class:`WorkerPool` moves every fixed cost off the critical path:

* **Pre-forked**: :meth:`start` forks the workers once and blocks until
  every worker reports ready — the spin-up is *measured* (and paid at a
  time of the caller's choosing), not interleaved with the first batch.
* **Warm**: during spin-up each worker builds its
  :class:`~repro.engine.engine.AnalysisEngine` handle for the pool's
  ``cache_dir`` and promotes the on-disk artifact tier into memory
  (:meth:`~repro.engine.engine.AnalysisEngine.warm_start`), so the
  first batch starts from whatever ``P_ij`` matrices and stacked LUT
  tensors earlier runs already paid for.
* **Dynamic stealing**: batches go onto one shared queue; a worker that
  finishes early steals the next batch instead of idling behind a
  static round-robin assignment.  Per-batch ``steal_wait_ns`` records
  exactly how long each worker sat blocked on the queue.
* **Streaming**: :meth:`run_batches` is a generator that yields each
  batch's results the moment they arrive, so the caller can append to
  its :class:`~repro.campaign.store.ResultStore` incrementally — a
  crash mid-campaign loses only the batches still in flight.
* **Resident**: the pool outlives a single ``run()``.  A
  :class:`~repro.campaign.runner.CampaignRunner` handed a pool shares
  it across runs (and with other runners), which is the
  analysis-as-a-service execution shape: fork once, analyze forever.

Worker failures surface precisely: an exception raised by analysis
code inside a worker is re-raised in the parent as itself (pickled
round-trip, with a ``repr`` fallback for unpicklable exceptions); a
worker *dying* (OOM kill, segfault) raises :class:`WorkerPoolBroken`,
which the runner treats as "finish this run serially".
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_mod
import pickle
import time
from typing import Iterator, Sequence

from repro.errors import CampaignError

_LOG = logging.getLogger(__name__)

#: Seconds between liveness checks while blocked on the result queue.
_POLL_S = 0.1


class WorkerPoolError(CampaignError):
    """The pool could not be created or used."""


class WorkerPoolBroken(WorkerPoolError):
    """A worker process died with work outstanding.

    Raised from :meth:`WorkerPool.start` or mid-stream from
    :meth:`WorkerPool.run_batches`; the pool is unusable afterwards
    (``close()`` it) and the caller decides how to finish the remaining
    work — the campaign runner falls back to the serial path.
    """


def _worker_main(index: int, cache_dir, task_queue, result_queue) -> None:
    """One pool worker: warm up, report ready, then steal batches.

    Runs in a forked child.  The import of the runner module is
    deferred to here so ``pool`` and ``runner`` can import each other
    at module level without a cycle (the fork inherits the parent's
    already-imported module anyway).
    """
    from repro.campaign import runner as _runner

    # A forked worker inherits the parent's analyzer/engine caches —
    # deliberately (a warmed parent hands workers the structural pass
    # for free) — but its build/reuse counters must start at zero so
    # per-worker accounting (builds + reuses == batches handled) holds
    # for the pool's own lifetime.  A batch served from an inherited
    # cache counts as a reuse, which is exactly what it is.
    _runner._WORKER_STATS["analyzer_builds"] = 0
    _runner._WORKER_STATS["analyzer_reuses"] = 0
    warm_started_ns = time.perf_counter_ns()
    preloaded = 0
    try:
        engine = _runner._engine_for(cache_dir)
        preloaded = engine.warm_start()
    except Exception:  # pragma: no cover - warm-up is best-effort
        _LOG.exception("worker w%d warm-up failed; starting cold", index)
    warm_s = (time.perf_counter_ns() - warm_started_ns) / 1e9
    result_queue.put(("ready", index, os.getpid(), warm_s, preloaded))

    while True:
        steal_started_ns = time.perf_counter_ns()
        task = task_queue.get()
        steal_wait_ns = time.perf_counter_ns() - steal_started_ns
        if task is None:
            break
        batch_index, group, config, items, batch_cache_dir, ship = task
        try:
            results, stats = _runner._evaluate_batch(
                group, config, items, batch_cache_dir,
                telemetry=None, ship_telemetry=ship,
            )
            stats["worker"] = f"w{index}"
            stats["steal_started_at_ns"] = steal_started_ns
            stats["steal_wait_ns"] = steal_wait_ns
            stats["sent_at_ns"] = time.perf_counter_ns()
            result_queue.put(("result", index, batch_index, results, stats))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = None
            result_queue.put(
                ("error", index, batch_index, payload, repr(exc))
            )
            if not isinstance(exc, Exception):  # pragma: no cover
                raise  # KeyboardInterrupt and friends still kill the worker


class WorkerPool:
    """``workers`` pre-forked campaign processes around a shared queue.

    ``cache_dir`` is the on-disk artifact cache the workers warm up
    from (and write back to); pass the campaign spec's.  The pool is a
    context manager; :meth:`start` may be called explicitly (to control
    *when* the spin-up is paid and read :attr:`spinup_s`) or left to the
    first :meth:`run_batches` call.

    >>> pool = WorkerPool(workers=2)
    >>> pool.worker_labels
    ('w0', 'w1')
    >>> pool.started
    False
    """

    def __init__(
        self,
        workers: int,
        cache_dir: str | None = None,
        start_timeout_s: float = 120.0,
    ) -> None:
        if workers < 1:
            raise WorkerPoolError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.start_timeout_s = start_timeout_s
        #: Measured seconds from fork to every worker ready (fork +
        #: engine handle + disk-tier preload); 0.0 until started.
        self.spinup_s = 0.0
        #: Artifacts each worker promoted from disk during warm-up,
        #: keyed by worker label.
        self.preloaded_by_worker: dict[str, int] = {}
        self._processes: list[multiprocessing.Process] = []
        self._task_queue = None
        self._result_queue = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._processes)

    @property
    def worker_labels(self) -> tuple[str, ...]:
        """Stable worker identities (``w0`` … ``wN-1``) — these, not
        PIDs, are what batch stats and bench JSON key on."""
        return tuple(f"w{i}" for i in range(self.workers))

    def start(self) -> float:
        """Fork the workers and block until all report ready.

        Idempotent (returns the recorded spin-up on a started pool).
        Raises :class:`WorkerPoolError` when processes cannot be forked
        at all and :class:`WorkerPoolBroken` when a worker dies during
        warm-up.
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        if self.started:
            return self.spinup_s
        ctx = multiprocessing.get_context()
        started_ns = time.perf_counter_ns()
        try:
            self._task_queue = ctx.Queue()
            self._result_queue = ctx.Queue()
            for index in range(self.workers):
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        index,
                        self.cache_dir,
                        self._task_queue,
                        self._result_queue,
                    ),
                    daemon=True,
                    name=f"campaign-w{index}",
                )
                process.start()
                self._processes.append(process)
        except (ImportError, NotImplementedError, OSError) as exc:
            self._abandon()
            raise WorkerPoolError(
                f"cannot fork worker processes: {exc}"
            ) from exc
        ready = 0
        deadline = time.monotonic() + self.start_timeout_s
        while ready < self.workers:
            message = self._next_message(deadline, waiting_for="ready")
            if message[0] != "ready":  # pragma: no cover - defensive
                continue  # a result cannot precede its worker's ready
            __, index, __pid, __warm_s, preloaded = message
            self.preloaded_by_worker[f"w{index}"] = preloaded
            ready += 1
        self.spinup_s = (time.perf_counter_ns() - started_ns) / 1e9
        _LOG.debug(
            "worker pool ready: %d workers in %.3fs (preloaded %s)",
            self.workers, self.spinup_s, self.preloaded_by_worker,
        )
        return self.spinup_s

    def _next_message(self, deadline: float, waiting_for: str):
        """One message off the result queue, watching worker liveness."""
        while True:
            try:
                return self._result_queue.get(timeout=_POLL_S)
            except queue_mod.Empty:
                dead = [
                    p.name for p in self._processes if p.exitcode is not None
                ]
                if dead:
                    self._abandon()
                    raise WorkerPoolBroken(
                        f"worker(s) {dead} died while the pool waited "
                        f"for {waiting_for}"
                    ) from None
                if time.monotonic() > deadline:
                    self._abandon()
                    raise WorkerPoolBroken(
                        f"timed out after {self.start_timeout_s}s waiting "
                        f"for {waiting_for}"
                    ) from None

    def run_batches(
        self,
        batches: Sequence[tuple],
        ship_telemetry: bool = False,
    ) -> Iterator[tuple[int, list, dict]]:
        """Stream the batches through the pool.

        ``batches`` are the runner's ``(group, config, items,
        cache_dir)`` tuples.  All of them are enqueued up front — the
        workers steal dynamically — and ``(batch_index, results,
        stats)`` triples are yielded in *completion* order as each
        arrives, so the caller can persist incrementally.  ``stats`` is
        the worker's batch record extended with the pool fields
        (``worker``, ``steal_started_at_ns``/``steal_wait_ns``,
        ``sent_at_ns``) plus the parent-side ``received_at_ns``.

        With ``ship_telemetry=True`` each worker records its batch into
        a fresh telemetry handle and ships the payload under
        ``stats["telemetry"]`` for the caller to merge.

        Worker-raised exceptions re-raise here as themselves;
        :class:`WorkerPoolBroken` means a worker died mid-run.
        """
        self.start()
        for batch_index, (group, config, items, cache_dir) in enumerate(
            batches
        ):
            self._task_queue.put(
                (batch_index, group, config, items, cache_dir,
                 ship_telemetry)
            )
        outstanding = len(batches)
        # No per-batch deadline: analysis batches are minutes-long at
        # production scale, so only worker death (not slowness) breaks
        # the stream.
        deadline = float("inf")
        while outstanding:
            message = self._next_message(deadline, waiting_for="results")
            kind = message[0]
            if kind == "ready":  # pragma: no cover - restarted pool
                continue
            if kind == "error":
                __, index, batch_index, payload, fallback = message
                outstanding -= 1
                self._drain_tasks()
                exc = None
                if payload is not None:
                    try:
                        exc = pickle.loads(payload)
                    except Exception:
                        exc = None
                if exc is not None:
                    raise exc
                raise WorkerPoolError(
                    f"worker w{index} failed on batch {batch_index}: "
                    f"{fallback}"
                )
            __, index, batch_index, results, stats = message
            stats["received_at_ns"] = time.perf_counter_ns()
            outstanding -= 1
            yield batch_index, results, stats

    def _drain_tasks(self) -> None:
        """Pull unclaimed tasks back off the queue after a failure so
        the surviving workers go idle instead of burning through a
        campaign the caller is about to abort."""
        if self._task_queue is None:
            return
        while True:
            try:
                self._task_queue.get_nowait()
            except (queue_mod.Empty, OSError):
                return

    def _abandon(self) -> None:
        """Tear down without the polite sentinel handshake."""
        for process in self._processes:
            if process.exitcode is None:
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
        self._processes.clear()
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._task_queue = None
        self._result_queue = None
        self._closed = True

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed and not self._processes:
            return
        if self._task_queue is not None:
            self._drain_tasks()
            try:
                for __ in self._processes:
                    self._task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.exitcode is None:  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        self._processes.clear()
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
        self._task_queue = None
        self._result_queue = None
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
