"""Command-line campaign driver.

Examples::

    # 2 circuits x 3 charges x 2 environments, parallel, persistent store
    python -m repro.campaign --circuits c17 c432 --charges 4 8 16 \\
        --environments sea-level avionics --store campaign.jsonl

    # re-summarize an existing store without computing anything
    python -m repro.campaign --circuits c17 c432 --charges 4 8 16 \\
        --environments sea-level avionics --store campaign.jsonl
    # (completed scenarios are skipped, so the second run is instant)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.campaign.environments import ENVIRONMENTS, environment
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import STORE_BACKENDS, ResultStore
from repro.campaign.summarize import format_runtime_accounting, summarize
from repro.errors import CampaignError, ReproError
from repro.tech import constants as k
from repro.tech.library import CellParams, ParameterAssignment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a batch soft-error analysis campaign over a "
        "circuit x charge x environment x assignment grid.",
    )
    parser.add_argument(
        "--circuits", nargs="+", required=True, metavar="NAME",
        help="ISCAS-85 circuit names (e.g. c17 c432 c499)",
    )
    parser.add_argument(
        "--charges", nargs="+", type=float, default=[4.0, 8.0, k.DEFAULT_CHARGE_FC],
        metavar="FC", help="injected charges in fC (default: 4 8 16)",
    )
    parser.add_argument(
        "--environments", nargs="+", default=["sea-level", "avionics"],
        choices=sorted(ENVIRONMENTS), metavar="ENV",
        help=f"environment presets (choices: {', '.join(sorted(ENVIRONMENTS))})",
    )
    parser.add_argument(
        "--sizes", nargs="+", type=float, default=[1.0], metavar="Z",
        help="uniform gate sizes, one assignment per value "
        "(1.0 is named 'nominal', others 'sizeZ')",
    )
    parser.add_argument(
        "--n-vectors", type=int, default=2000,
        help="random vectors for the P_ij estimate (default: 2000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sensitization seed")
    parser.add_argument(
        "--sample-widths", nargs="+", type=int, default=[10], metavar="K",
        help="sample glitch-width counts, one analysis config per value",
    )
    parser.add_argument(
        "--share-epsilon", type=float, default=None, metavar="EPS",
        help="Equation-2 route-dropping cutoff (analysis-config axis; "
        "non-default values get their own scenario digests)",
    )
    parser.add_argument(
        "--structural-engine", default=None, choices=["batched", "event"],
        help="structural P_ij estimator (bit-identical; 'event' is the "
        "escape hatch)",
    )
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="persistent result store; completed scenarios are skipped "
        "on re-runs.  A .sqlite/.sqlite3/.db suffix selects the SQLite "
        "backend (concurrent-writer safe, O(1) resume), anything else "
        "JSONL",
    )
    parser.add_argument(
        "--store-backend", default="auto",
        choices=list(STORE_BACKENDS),
        help="override the suffix-based store backend selection",
    )
    parser.add_argument(
        "--compact-store", action="store_true",
        help="rewrite the store without redundant history after the "
        "run (JSONL: drop superseded lines, atomic rename; SQLite: "
        "checkpoint + VACUUM)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk compiled-artifact cache (P_ij matrices, LUT "
        "tensors); re-runs and other campaigns sharing the directory "
        "skip the structural fault simulation",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--serial", action="store_true", help="force single-process execution"
    )
    mode.add_argument(
        "--parallel", action="store_true", help="force process-parallel execution"
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome/Perfetto trace of the run (spans from "
        "every worker process merged onto one timeline); open it at "
        "https://ui.perfetto.dev or chrome://tracing",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry report (span totals + metric "
        "counters) after the summary tables",
    )
    return parser


def _assignments(sizes: Sequence[float]) -> dict[str, ParameterAssignment]:
    assignments: dict[str, ParameterAssignment] = {}
    for size in sizes:
        name = "nominal" if size == 1.0 else f"size{size:g}"
        if name in assignments:
            raise CampaignError(f"duplicate --sizes value: {size:g}")
        assignments[name] = ParameterAssignment(CellParams(size=size))
    return assignments


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        extra = {}
        if args.share_epsilon is not None:
            extra["share_epsilon"] = args.share_epsilon
        if args.structural_engine is not None:
            extra["structural_engine"] = args.structural_engine
        telemetry = None
        if args.trace_out or args.metrics:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        spec = CampaignSpec(
            circuits=tuple(args.circuits),
            charges_fc=tuple(args.charges),
            environments=tuple(environment(name) for name in args.environments),
            assignments=_assignments(args.sizes),
            n_vectors=args.n_vectors,
            seed=args.seed,
            sample_width_counts=tuple(args.sample_widths),
            cache_dir=args.cache_dir,
            telemetry=telemetry,
            **extra,
        )
        store = (
            ResultStore(args.store, backend=args.store_backend)
            if args.store
            else ResultStore()
        )
        parallel = True if args.parallel else False if args.serial else None
        with store, CampaignRunner(
            spec, store=store, max_workers=args.workers
        ) as runner:
            outcome = runner.run(parallel=parallel)
            summary = summarize(outcome)
            print(summary.format_fit_table())
            print()
            print(summary.format_best_table())
            print()
            print(format_runtime_accounting(outcome))
            if args.compact_store:
                dropped = store.compact()
                print(f"compacted store: {dropped} redundant record(s) dropped")
            if store.path is not None:
                print(
                    f"store: {store.path} ({len(store)} results, "
                    f"{store.backend_name} backend)"
                )
        if telemetry is not None and args.metrics:
            from repro.telemetry import format_report

            print()
            print(format_report(telemetry))
        if telemetry is not None and args.trace_out:
            from repro.telemetry import write_chrome_trace

            path = write_chrome_trace(
                args.trace_out,
                telemetry.tracer.spans(),
                metadata={"mode": outcome.mode, "workers": outcome.workers},
            )
            print(f"trace: {path} ({len(telemetry.tracer)} spans)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
