"""Aggregation across a campaign grid: FIT tables, best assignments,
and runtime accounting.

Works on any collection of :class:`ScenarioResult` — a fresh
:class:`~repro.campaign.runner.CampaignOutcome` or the replayed contents
of a :class:`~repro.campaign.store.ResultStore` — so summaries can be
regenerated offline from a store file without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.reports import format_table
from repro.campaign.runner import CampaignOutcome
from repro.campaign.store import ScenarioResult
from repro.errors import CampaignError


@dataclass(frozen=True)
class AssignmentRanking:
    """How one named assignment fares for one (circuit, environment)."""

    circuit: str
    environment: str
    assignment: str
    #: Mean FIT across the (charge, sample-width) scenarios.
    mean_fit: float
    #: Worst-case mission upset probability across those scenarios.
    worst_mission_upset: float


class CampaignSummary:
    """Grid-level views over a set of scenario results."""

    def __init__(self, results: Iterable[ScenarioResult]) -> None:
        self.results: tuple[ScenarioResult, ...] = tuple(results)
        if not self.results:
            raise CampaignError("cannot summarize an empty result set")

    def rankings(self) -> tuple[AssignmentRanking, ...]:
        """Every (circuit, environment, assignment) aggregate, ordered by
        circuit, environment, then ascending mean FIT."""
        buckets: dict[tuple[str, str, str], list[ScenarioResult]] = {}
        for result in self.results:
            key = (result.key.circuit, result.key.environment, result.key.assignment)
            buckets.setdefault(key, []).append(result)
        rankings = [
            AssignmentRanking(
                circuit=circuit,
                environment=environment,
                assignment=assignment,
                mean_fit=sum(r.fit for r in group) / len(group),
                worst_mission_upset=max(
                    r.mission_upset_probability for r in group
                ),
            )
            for (circuit, environment, assignment), group in buckets.items()
        ]
        rankings.sort(key=lambda r: (r.circuit, r.environment, r.mean_fit))
        return tuple(rankings)

    def best_assignments(self) -> tuple[AssignmentRanking, ...]:
        """The lowest-mean-FIT assignment per (circuit, environment)."""
        best: dict[tuple[str, str], AssignmentRanking] = {}
        for ranking in self.rankings():
            key = (ranking.circuit, ranking.environment)
            if key not in best or ranking.mean_fit < best[key].mean_fit:
                best[key] = ranking
        return tuple(best[key] for key in sorted(best))

    def fit_rows(self) -> list[tuple]:
        """One row per scenario: the grid point and its absolute rates."""
        rows = []
        for result in self.results:
            key = result.key
            rows.append(
                (
                    key.circuit,
                    key.environment,
                    key.assignment,
                    key.charge_fc,
                    key.n_sample_widths,
                    result.unreliability_total,
                    result.fit,
                    result.mission_upset_probability,
                )
            )
        return rows

    def format_fit_table(self, title: str = "campaign FIT table") -> str:
        return format_table(
            ("circuit", "environment", "assignment", "charge (fC)", "k",
             "U (ps)", "FIT", "P(mission upset)"),
            self.fit_rows(),
            title=title,
        )

    def format_best_table(
        self, title: str = "best assignment per circuit x environment"
    ) -> str:
        rows = [
            (b.circuit, b.environment, b.assignment, b.mean_fit,
             b.worst_mission_upset)
            for b in self.best_assignments()
        ]
        return format_table(
            ("circuit", "environment", "best assignment", "mean FIT",
             "worst P(upset)"),
            rows,
            title=title,
        )


def summarize(
    results: Iterable[ScenarioResult] | CampaignOutcome,
) -> CampaignSummary:
    """Build a summary from results or directly from a run outcome."""
    if isinstance(results, CampaignOutcome):
        results = results.results
    return CampaignSummary(results)


def format_runtime_accounting(outcome: CampaignOutcome) -> str:
    """Throughput and cache-effectiveness lines for one run."""
    lines: list[str] = [
        f"scenarios: {len(outcome.results)} "
        f"({outcome.computed} computed, {outcome.skipped} from store)",
        f"mode: {outcome.mode} ({outcome.workers} worker"
        f"{'s' if outcome.workers != 1 else ''})",
        f"wall time: {outcome.wall_s:.2f} s "
        f"({outcome.scenarios_per_second:.2f} scenarios/s)",
    ]
    if outcome.analyze_s > 0.0 and outcome.wall_s > 0.0:
        line = f"analysis time: {outcome.analyze_s:.2f} s"
        if outcome.mode == "parallel":
            line += f" (parallel speedup {outcome.analyze_s / outcome.wall_s:.2f}X)"
        lines.append(line)
    return "\n".join(lines)
