"""Aggregation across a campaign grid: FIT tables, best assignments,
and runtime accounting.

Works on any collection of :class:`ScenarioResult` — a fresh
:class:`~repro.campaign.runner.CampaignOutcome` or the replayed contents
of a :class:`~repro.campaign.store.ResultStore` — so summaries can be
regenerated offline from a store file without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.reports import format_table
from repro.campaign.runner import CampaignOutcome, analyzer_for
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ScenarioResult
from repro.errors import CampaignError
from repro.logicsim.sensitization import observability_matrix


@dataclass(frozen=True)
class AssignmentRanking:
    """How one named assignment fares for one (circuit, environment)."""

    circuit: str
    environment: str
    assignment: str
    #: Mean FIT across the (charge, sample-width) scenarios.
    mean_fit: float
    #: Worst-case mission upset probability across those scenarios.
    worst_mission_upset: float


class CampaignSummary:
    """Grid-level views over a set of scenario results.

    Groups :class:`ScenarioResult`\\ s by circuit, charge and
    environment and renders the comparison tables (FIT rates, mission
    upset probabilities, observability rows) campaigns report — see
    ``format_fit_table`` and friends.
    """

    def __init__(self, results: Iterable[ScenarioResult]) -> None:
        self.results: tuple[ScenarioResult, ...] = tuple(results)
        if not self.results:
            raise CampaignError("cannot summarize an empty result set")

    def rankings(self) -> tuple[AssignmentRanking, ...]:
        """Every (circuit, environment, assignment) aggregate, ordered by
        circuit, environment, then ascending mean FIT."""
        buckets: dict[tuple[str, str, str], list[ScenarioResult]] = {}
        for result in self.results:
            key = (result.key.circuit, result.key.environment, result.key.assignment)
            buckets.setdefault(key, []).append(result)
        rankings = [
            AssignmentRanking(
                circuit=circuit,
                environment=environment,
                assignment=assignment,
                mean_fit=sum(r.fit for r in group) / len(group),
                worst_mission_upset=max(
                    r.mission_upset_probability for r in group
                ),
            )
            for (circuit, environment, assignment), group in buckets.items()
        ]
        rankings.sort(key=lambda r: (r.circuit, r.environment, r.mean_fit))
        return tuple(rankings)

    def best_assignments(self) -> tuple[AssignmentRanking, ...]:
        """The lowest-mean-FIT assignment per (circuit, environment)."""
        best: dict[tuple[str, str], AssignmentRanking] = {}
        for ranking in self.rankings():
            key = (ranking.circuit, ranking.environment)
            if key not in best or ranking.mean_fit < best[key].mean_fit:
                best[key] = ranking
        return tuple(best[key] for key in sorted(best))

    def fit_rows(self) -> list[tuple]:
        """One row per scenario: the grid point and its absolute rates."""
        rows = []
        for result in self.results:
            key = result.key
            rows.append(
                (
                    key.circuit,
                    key.environment,
                    key.assignment,
                    key.charge_fc,
                    key.n_sample_widths,
                    result.unreliability_total,
                    result.fit,
                    result.mission_upset_probability,
                )
            )
        return rows

    def format_fit_table(self, title: str = "campaign FIT table") -> str:
        return format_table(
            ("circuit", "environment", "assignment", "charge (fC)", "k",
             "U (ps)", "FIT", "P(mission upset)"),
            self.fit_rows(),
            title=title,
        )

    def format_best_table(
        self, title: str = "best assignment per circuit x environment"
    ) -> str:
        rows = [
            (b.circuit, b.environment, b.assignment, b.mean_fit,
             b.worst_mission_upset)
            for b in self.best_assignments()
        ]
        return format_table(
            ("circuit", "environment", "best assignment", "mean FIT",
             "worst P(upset)"),
            rows,
            title=title,
        )


def summarize(
    results: Iterable[ScenarioResult] | CampaignOutcome,
) -> CampaignSummary:
    """Build a summary from results or directly from a run outcome."""
    if isinstance(results, CampaignOutcome):
        results = results.results
    return CampaignSummary(results)


def observability_rows(
    spec: CampaignSpec, circuit_name: str, top: int = 10
) -> list[tuple[str, int, float, int]]:
    """The ``top`` most-observable gates of one campaign circuit.

    Per-gate observability is the shared dense summary
    ``min(1, sum_j P_ij)``
    (:func:`repro.logicsim.sensitization.observability_matrix` over the
    analyzer's cached ``P_ij`` matrix) — the same implementation behind
    :func:`repro.logicsim.sensitization.observability`, so campaign
    reports can never drift from the analyzer's numbers.  The analyzer
    comes from the runner's per-process cache: free after a serial run
    in this process; after a parallel run (whose analyzers live in the
    worker processes) or on a fresh process it is built here — served
    from the artifact cache when ``spec.cache_dir`` points at a warmed
    store, a full structural pass otherwise.
    """
    if circuit_name not in spec.circuits:
        raise CampaignError(f"circuit {circuit_name!r} not in this campaign")
    key = spec.scenarios()[0].structural_group()
    group = (circuit_name,) + key[1:]
    analyzer = analyzer_for(group, spec.aserta_config(), spec.cache_dir)
    idx = analyzer.indexed
    totals = observability_matrix(analyzer.p_matrix)
    gate_rows = idx.gate_rows
    ranked = gate_rows[np.argsort(-totals[gate_rows], kind="stable")][:top]
    return [
        (
            idx.order[row],
            int(idx.level[row]),
            float(totals[row]),
            int(np.count_nonzero(analyzer.p_matrix[row])),
        )
        for row in ranked
    ]


def format_observability_table(
    spec: CampaignSpec, circuit_name: str, top: int = 10
) -> str:
    """Most-observable gates of one circuit, as a report table."""
    return format_table(
        ("gate", "level", "observability", "outputs reached"),
        observability_rows(spec, circuit_name, top=top),
        title=f"most observable gates — {circuit_name}",
    )


def format_runtime_accounting(outcome: CampaignOutcome) -> str:
    """Throughput and cache-effectiveness lines for one run."""
    lines: list[str] = [
        f"scenarios: {len(outcome.results)} "
        f"({outcome.computed} computed, {outcome.skipped} from store)",
        f"mode: {outcome.mode} ({outcome.workers} worker"
        f"{'s' if outcome.workers != 1 else ''})",
        f"wall time: {outcome.wall_s:.2f} s "
        f"({outcome.scenarios_per_second:.2f} scenarios/s)",
    ]
    if outcome.analyze_s > 0.0 and outcome.wall_s > 0.0:
        line = f"analysis time: {outcome.analyze_s:.2f} s"
        if outcome.mode == "parallel":
            line += f" (parallel speedup {outcome.analyze_s / outcome.wall_s:.2f}X)"
        lines.append(line)
    if outcome.mode == "parallel":
        spinup = (
            f"{outcome.pool_spinup_s:.3f} s"
            if outcome.pool_spinup_s > 0.0
            else "0 s (resident pool reused)"
        )
        lines.append(
            f"pool spin-up: {spinup}; result streaming: "
            f"{outcome.result_recv_s * 1e3:.2f} ms total"
        )
    return "\n".join(lines)
