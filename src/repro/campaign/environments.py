"""Environment / mission models: from unreliability to FIT rates.

ASERTA's circuit unreliability ``U`` (Equation 4) is a *relative* figure:
the size-weighted expected latched glitch width, in ps.  To compare
design points across deployment scenarios — a consumer device at sea
level, avionics at flight altitude, a satellite in orbit — ``U`` must be
scaled into an absolute upset rate.  The model used here follows the
standard SER-benchmarking recipe (JESD89-style):

* a **technology-node FIT/Mb table** gives the latched-upset rate of a
  reference storage cell at the New-York-City sea-level neutron flux;
* an **environment flux multiplier** scales that reference flux
  (sea level = 1; flight altitude ~ hundreds; orbit ~ thousands);
* a **duty cycle** scales for the fraction of time the circuit is
  powered and latching;
* ``U / T_clk`` converts the circuit's unreliability into an *effective
  cell count*: strikes hit gate ``i`` at a rate proportional to its size
  ``Z_i``, and a strike is latched with probability ``sum_j W_ij / T_clk``
  (latching-window masking — the same argument that makes ``W_ij`` the
  capture weight in Equation 3), so the whole circuit upsets like
  ``U / T_clk`` reference cells.

Putting it together::

    FIT(circuit) = FIT/Mb(node) / 1e6 * flux * duty * U / T_clk

FIT is failures per 1e9 device-hours, so a mission of ``H`` hours upsets
with probability ``1 - exp(-FIT * 1e-9 * H)``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass

from repro.errors import CampaignError
from repro.tech import constants as k

#: Reference latched-upset rates for a storage cell, in FIT per megabit
#: (1e6 bits) at the sea-level reference flux, by technology node (nm).
#: Per-bit SER grows as cells shrink and critical charge falls; the
#: magnitudes follow published SRAM SER surveys (hundreds of FIT/Mb at
#: deep-submicron nodes).
FIT_PER_MB_BY_NODE_NM: dict[float, float] = {
    250.0: 120.0,
    180.0: 250.0,
    130.0: 450.0,
    100.0: 650.0,
    70.0: 800.0,
    45.0: 1000.0,
}

#: Hours in a (365-day) year, for mission-length arithmetic.
HOURS_PER_YEAR = 8760.0


def fit_per_mb(node_nm: float) -> float:
    """Reference FIT/Mb at ``node_nm``, linearly interpolated between the
    tabulated nodes and clamped at the table ends."""
    if node_nm <= 0.0:
        raise CampaignError(f"technology node must be positive, got {node_nm}")
    nodes = sorted(FIT_PER_MB_BY_NODE_NM)
    if node_nm <= nodes[0]:
        return FIT_PER_MB_BY_NODE_NM[nodes[0]]
    if node_nm >= nodes[-1]:
        return FIT_PER_MB_BY_NODE_NM[nodes[-1]]
    for low, high in zip(nodes, nodes[1:]):
        if low <= node_nm <= high:
            frac = (node_nm - low) / (high - low)
            f_low = FIT_PER_MB_BY_NODE_NM[low]
            f_high = FIT_PER_MB_BY_NODE_NM[high]
            return f_low + frac * (f_high - f_low)
    raise CampaignError(f"node {node_nm} not bracketed")  # pragma: no cover


@dataclass(frozen=True)
class EnvironmentRates:
    """Absolute soft-error rates of one circuit in one environment."""

    #: Failures per 1e9 device-hours.
    fit: float
    #: Mean time to failure, hours (``inf`` when FIT is zero).
    mttf_hours: float
    #: Probability of at least one upset over the environment's mission.
    mission_upset_probability: float


@dataclass(frozen=True)
class Environment:
    """One deployment scenario: flux, duty cycle and mission length.

    Environments scale ASERTA's *relative* unreliability into absolute
    failure rates: ``flux_multiplier`` is the particle flux relative to
    the sea-level reference (NYC = 1.0), ``duty_cycle`` the fraction of
    time the circuit is clocked, and ``mission_hours`` the exposure the
    mission-upset probability integrates over.  Presets ``SEA_LEVEL``,
    ``AVIONICS`` and ``LEO_SPACE`` are looked up by
    :func:`environment`; the derived metrics are FIT (failures per
    10^9 device-hours) and ``mission_upset_probability``.
    """

    name: str
    description: str = ""
    #: Particle flux relative to the sea-level reference (NYC = 1.0).
    flux_multiplier: float = 1.0
    #: Fraction of time the circuit is powered and latching.
    duty_cycle: float = 1.0
    #: Mission length over which the upset probability is quoted, hours.
    mission_hours: float = 5.0 * HOURS_PER_YEAR
    #: Technology node selecting the reference FIT/Mb.
    technology_node_nm: float = k.NOMINAL_LENGTH_NM
    #: Clock period used for the latching-window conversion, ps.
    clock_period_ps: float = k.CLOCK_PERIOD_PS

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("environment needs a name")
        if self.flux_multiplier <= 0.0:
            raise CampaignError(
                f"flux_multiplier must be positive, got {self.flux_multiplier}"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise CampaignError(
                f"duty_cycle must be in (0, 1], got {self.duty_cycle}"
            )
        if self.mission_hours <= 0.0:
            raise CampaignError(
                f"mission_hours must be positive, got {self.mission_hours}"
            )
        if self.clock_period_ps <= 0.0:
            raise CampaignError(
                f"clock_period_ps must be positive, got {self.clock_period_ps}"
            )
        fit_per_mb(self.technology_node_nm)  # validates the node

    @property
    def cell_fit(self) -> float:
        """FIT of one reference storage cell in this environment."""
        return (
            fit_per_mb(self.technology_node_nm)
            / 1e6
            * self.flux_multiplier
            * self.duty_cycle
        )

    def circuit_fit(self, unreliability_total: float) -> float:
        """FIT of a circuit whose ASERTA unreliability is ``U`` (ps)."""
        if unreliability_total < 0.0:
            raise CampaignError(
                f"unreliability must be >= 0, got {unreliability_total}"
            )
        return self.cell_fit * unreliability_total / self.clock_period_ps

    def rates(self, unreliability_total: float) -> EnvironmentRates:
        """All absolute rates for one analysis result."""
        fit = self.circuit_fit(unreliability_total)
        mttf = math.inf if fit <= 0.0 else 1e9 / fit
        mission = 1.0 - math.exp(-fit * 1e-9 * self.mission_hours)
        return EnvironmentRates(
            fit=fit, mttf_hours=mttf, mission_upset_probability=mission
        )

    def fingerprint(self) -> str:
        """Short content hash of the *physical* fields, so stored results
        are invalidated exactly when the model changes — ``name`` is
        already a separate scenario-key field and ``description`` is
        cosmetic, so neither participates."""
        payload = asdict(self)
        del payload["name"], payload["description"]
        encoded = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:12]


#: Consumer electronics at the New-York-City sea-level reference flux.
SEA_LEVEL = Environment(
    name="sea-level",
    description="consumer device at the NYC sea-level reference flux",
    flux_multiplier=1.0,
    duty_cycle=1.0,
    mission_hours=5.0 * HOURS_PER_YEAR,
)

#: Commercial-avionics flight altitude (~12 km): the neutron flux is a
#: few hundred times the ground reference; airframe service life is long
#: but the equipment is powered only in flight.
AVIONICS = Environment(
    name="avionics",
    description="commercial flight altitude (~12 km)",
    flux_multiplier=300.0,
    duty_cycle=0.4,
    mission_hours=60_000.0,
)

#: Low-Earth orbit: no atmospheric shielding, always on, shorter mission.
LEO_SPACE = Environment(
    name="leo-space",
    description="low-Earth orbit, unshielded, always on",
    flux_multiplier=6000.0,
    duty_cycle=1.0,
    mission_hours=3.0 * HOURS_PER_YEAR,
)

#: Preset registry used by the CLI and the experiment harnesses.
ENVIRONMENTS: dict[str, Environment] = {
    env.name: env for env in (SEA_LEVEL, AVIONICS, LEO_SPACE)
}


def environment(name: str) -> Environment:
    """Look up a preset environment by name."""
    try:
        return ENVIRONMENTS[name]
    except KeyError:
        raise CampaignError(
            f"unknown environment {name!r}; choose from {sorted(ENVIRONMENTS)}"
        ) from None
