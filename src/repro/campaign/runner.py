"""Campaign execution: serial or process-parallel, with analyzer reuse.

The expensive part of every scenario is *structural*: the 10k-vector
``P_ij`` estimation performed by ``AsertaAnalyzer.__init__`` depends only
on ``ScenarioKey.structural_group()`` — (circuit, n_vectors, seed,
input probability, table routing) — not on charge, assignment,
environment or sample-width count.  The runner therefore

* groups scenarios by structural group and dispatches *batches*, so one
  analyzer build is amortized over the whole batch;
* keeps a per-worker-process analyzer cache, so a worker handed two
  batches of the same group builds the analyzer once;
* within a batch, shares the electrical analysis across environments
  (the environment axis is pure post-scaling of ``U``).

Scenarios already present in the :class:`ResultStore` are skipped before
any work is dispatched, which is the resume path.  Parallel execution
uses a pre-forked :class:`~repro.campaign.pool.WorkerPool` — workers
fork once per runner (or are handed in and shared across runs), warm up
from the on-disk artifact cache, steal batches from a shared queue and
stream results back so the store is appended to as they arrive.
Anything that prevents the pool from working (a sandbox without process
spawning, a non-picklable custom assignment) falls back to the serial
path rather than failing the campaign, and a worker dying mid-run
demotes only the *remaining* batches to serial execution.
"""

from __future__ import annotations

import logging
import math
import os
import time
from dataclasses import dataclass
from typing import Sequence

from repro.campaign.environments import Environment
from repro.campaign.pool import (
    WorkerPool,
    WorkerPoolBroken,
    WorkerPoolError,
)
from repro.campaign.spec import CampaignSpec, ScenarioKey
from repro.campaign.store import ResultStore, ScenarioResult
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.engine.engine import (
    AnalysisEngine,
    get_default_engine,
    set_default_engine,
)
from repro.errors import CampaignError
from repro.tech.library import ParameterAssignment
from repro.telemetry import Telemetry, resolve

_LOG = logging.getLogger(__name__)

#: One unit of dispatched work: the key plus the (picklable) objects the
#: worker needs to evaluate it.
WorkItem = tuple[ScenarioKey, ParameterAssignment, Environment]

#: Per-process analyzer cache, keyed by ``ScenarioKey.structural_group()``
#: plus the cache directory (the one place that axis list is defined).
#: Lives at module scope so ProcessPoolExecutor workers reuse analyzers
#: across batches without any coordination.
_ANALYZER_CACHE: dict[tuple, AsertaAnalyzer] = {}

#: Per-process analyzer reuse counters — the observable the parallel
#: regression tests assert on (wall-clock is too noisy for CI).
_WORKER_STATS = {"analyzer_builds": 0, "analyzer_reuses": 0}

#: Auto-mode amortization threshold: grids with fewer pending analysis
#: units than this run serially — process-pool startup (interpreter +
#: NumPy import, table rebuild per worker) costs more than it saves on
#: small grids, which is exactly the parallel-slower-than-serial
#: regression ``BENCH_campaign.json`` recorded.  Forcing
#: ``parallel=True`` still dispatches regardless of grid size.
PARALLEL_MIN_UNITS = 16

#: Per-process engine handles, one per cache directory.  Workers build
#: the handle lazily on first use, so every batch a worker is handed
#: shares one compiled-artifact cache (and, with a ``cache_dir``, the
#: same on-disk store as every other worker and every later run).
_ENGINE_HANDLES: dict[str, AnalysisEngine] = {}


def clear_analyzer_cache() -> None:
    """Drop this process's analyzer, engine and artifact caches.

    Forked worker processes inherit the parent's caches, so a warmed
    parent gives workers the structural pass for free; benchmarks call
    this to measure honestly-cold runs, and long-lived services can call
    it to bound memory.  (On-disk artifact stores are left in place —
    they are the *deliberately* persistent tier.)
    """
    _ANALYZER_CACHE.clear()
    _ENGINE_HANDLES.clear()
    _WORKER_STATS["analyzer_builds"] = 0
    _WORKER_STATS["analyzer_reuses"] = 0
    set_default_engine(None)


def _engine_for(cache_dir: str | None) -> AnalysisEngine:
    """This process's engine handle for one cache directory."""
    if cache_dir is None:
        return get_default_engine()
    engine = _ENGINE_HANDLES.get(cache_dir)
    if engine is None:
        engine = AnalysisEngine(cache_dir=cache_dir)
        _ENGINE_HANDLES[cache_dir] = engine
    return engine


def analyzer_for(
    group: tuple, config: AsertaConfig, cache_dir: str | None = None
) -> AsertaAnalyzer:
    """This process's cached analyzer for one structural group.

    Builds (and caches) on first use; campaign summaries and reports
    share it so they ride whatever this process already paid for.
    """
    key = (group, cache_dir)
    analyzer = _ANALYZER_CACHE.get(key)
    if analyzer is None:
        circuit_name = group[0]
        analyzer = AsertaAnalyzer(
            iscas85_circuit(circuit_name),
            config,
            engine=_engine_for(cache_dir),
        )
        _ANALYZER_CACHE[key] = analyzer
        _WORKER_STATS["analyzer_builds"] += 1
    else:
        _WORKER_STATS["analyzer_reuses"] += 1
    return analyzer


def _analysis_unit(key: ScenarioKey) -> tuple:
    """Axis values one electrical analysis depends on beyond the
    structural group — scenarios sharing a unit (i.e. differing only in
    environment) share one analysis."""
    return (key.charge_fc, key.assignment_digest, key.n_sample_widths)


def _evaluate_batch(
    group: tuple,
    config: AsertaConfig,
    items: Sequence[WorkItem],
    cache_dir: str | None = None,
    telemetry=None,
    ship_telemetry: bool = False,
) -> tuple[list[ScenarioResult], dict]:
    """Evaluate one batch of scenarios sharing a structural group.

    Runs in a worker process under parallel execution and in the main
    process under serial execution — the results are identical because
    every analysis is fully determined by (circuit, config, charge,
    assignment).  ``cache_dir`` selects the worker's compiled-artifact
    cache handle (shared across batches and, on disk, across workers
    and runs).

    Alongside the results, returns a per-batch stats record — the
    worker pid, the process-cumulative analyzer build/reuse counters,
    and the batch's phase timings (``analyzer_build_s``/``analyze_s``
    against ``wall_s``, plus raw ``perf_counter_ns`` endpoints so the
    runner can place the batch on the merged campaign timeline) — so
    callers can assert structural-pass reuse and phase accounting
    directly instead of inferring them from wall-clock.

    ``telemetry`` (serial path) records spans and metrics into the
    caller's live handle; ``ship_telemetry=True`` (worker processes —
    a :class:`~repro.telemetry.Telemetry` does not cross the pickle
    boundary) records into a fresh local handle and returns its
    picklable payload under ``stats["telemetry"]`` for the runner to
    merge.  Engine cache work done by the batch is recorded as
    ``campaign.engine.*`` counter deltas of ``engine.stats()``, so
    shared (possibly pre-warmed) engines are never mutated.
    """
    tel = Telemetry() if ship_telemetry else resolve(telemetry)
    batch_started_ns = time.perf_counter_ns()
    engine_before: dict = {}
    if tel.enabled:
        # Snapshot before the analyzer build: the structural fault
        # simulation (the expensive engine work) runs inside
        # AsertaAnalyzer.__init__, so a post-build snapshot would miss it.
        engine_before = _engine_for(cache_dir).stats()
    build_started = time.perf_counter()
    with tel.span("campaign.analyzer_build", circuit=group[0]):
        analyzer = analyzer_for(group, config, cache_dir)
    build_s = time.perf_counter() - build_started
    previous_tel = None
    if tel.enabled:
        # Cached analyzers (including ones inherited by a forked
        # worker) keep their warmed state but record into this batch's
        # telemetry; restored afterwards so untraced callers of the
        # process-wide cache see no change.
        previous_tel = analyzer.telemetry
        analyzer.telemetry = tel
    analysis_cache: dict[tuple, tuple[float, float]] = {}
    results: list[ScenarioResult] = []
    analyze_s = 0.0
    fresh = 0
    try:
        with tel.span(
            "campaign.batch", circuit=group[0], items=len(items)
        ):
            for key, assignment, env in items:
                cache_key = _analysis_unit(key)
                cached = analysis_cache.get(cache_key)
                if cached is None:
                    analyze_started = time.perf_counter()
                    report = analyzer.analyze(
                        assignment,
                        charge_fc=key.charge_fc,
                        n_sample_widths=key.n_sample_widths,
                    )
                    analyze_s += time.perf_counter() - analyze_started
                    fresh += 1
                    total, runtime = report.total, report.runtime_s
                    analysis_cache[cache_key] = (total, 0.0)
                else:
                    total, runtime = cached
                rates = env.rates(total)
                results.append(
                    ScenarioResult(
                        key=key,
                        unreliability_total=total,
                        fit=rates.fit,
                        mission_upset_probability=rates.mission_upset_probability,
                        analyze_runtime_s=runtime,
                    )
                )
    finally:
        if previous_tel is not None:
            analyzer.telemetry = previous_tel
    if tel.enabled:
        for name, value in analyzer.engine.stats().items():
            if not isinstance(value, (int, float)):
                continue  # nested breakdowns (e.g. "by_kind") are not counters
            delta = value - engine_before.get(name, 0)
            if delta:
                tel.metrics.add(f"campaign.engine.{name}", delta)
        tel.metrics.add("campaign.batches")
        tel.metrics.add("campaign.scenarios.computed", len(results))
        tel.metrics.add("campaign.analyses.run", fresh)
        tel.metrics.add("campaign.analyses.shared", len(items) - fresh)
    batch_ended_ns = time.perf_counter_ns()
    stats = {
        "pid": os.getpid(),
        "group": group,
        "analyzer_builds": _WORKER_STATS["analyzer_builds"],
        "analyzer_reuses": _WORKER_STATS["analyzer_reuses"],
        # Process-cumulative fault simulations: 0 on a worker that
        # served every structural pass from the (disk) artifact cache —
        # the observable behind the warm-handoff benchmark gate.
        "structural_sim_runs": _engine_for(cache_dir).structural_sim_runs,
        "wall_s": (batch_ended_ns - batch_started_ns) / 1e9,
        "analyzer_build_s": build_s,
        "analyze_s": analyze_s,
        "started_at_ns": batch_started_ns,
        "ended_at_ns": batch_ended_ns,
    }
    if ship_telemetry:
        stats["telemetry"] = tel.ship()
    return results, stats


@dataclass(frozen=True)
class CampaignOutcome:
    """What one :meth:`CampaignRunner.run` produced."""

    #: Every scenario result, in the spec's deterministic grid order
    #: (freshly computed and store-served alike).
    results: tuple[ScenarioResult, ...]
    #: Scenarios evaluated by this run.
    computed: int
    #: Scenarios served from the store without any work.
    skipped: int
    #: Wall-clock time of the whole run, seconds.
    wall_s: float
    #: Sum of per-scenario analysis times (the serial-equivalent cost).
    analyze_s: float
    #: "serial" or "parallel".
    mode: str
    #: Worker processes used (1 for serial).
    workers: int
    #: Per-batch worker stats (pid plus stable ``worker`` label under
    #: parallel execution, cumulative analyzer build/reuse counters at
    #: batch completion, and the batch's phase timings —
    #: ``wall_s``/``analyzer_build_s``/``analyze_s`` plus raw
    #: ``started_at_ns``/``ended_at_ns`` timeline endpoints; parallel
    #: batches add the pool's measured ``steal_wait_ns`` and
    #: ``sent_at_ns``/``received_at_ns`` shipping endpoints).  Serial
    #: batches appear in dispatch order, parallel batches in completion
    #: (stream-arrival) order.  Empty when the run had no work.  This
    #: is the observable the parallel-reuse and phase-accounting tests
    #: assert on.
    batch_stats: tuple[dict, ...] = ()
    #: Parallel mode only: the pool's *measured* fork-to-ready spin-up
    #: (process start + engine handle + disk-cache preload in every
    #: worker), paid inside this run.  0.0 under serial execution and
    #: when the run reused an already-started resident pool — the
    #: amortization the pre-forked pool exists to provide.
    pool_spinup_s: float = 0.0
    #: Parallel mode only: total measured result-shipping time — the
    #: sum over batches of (parent receive - worker send).  Streaming
    #: overlaps shipping with computation, so this is overhead *volume*,
    #: not a wall-clock tail.  0.0 under serial.
    result_recv_s: float = 0.0

    @property
    def scenarios_per_second(self) -> float:
        total = self.computed + self.skipped
        return total / self.wall_s if self.wall_s > 0.0 else 0.0

    def analyzer_builds_by_worker(self) -> dict[str, int]:
        """Structural analyzer builds per worker (final counters).

        Keyed by the pool's stable worker labels (``w0``, ``w1``, …;
        ``main`` for serially executed batches), never raw pids —
        labels are comparable across runs and machines, which is what
        lets ``BENCH_campaign.json`` commit them without churning.
        """
        final: dict[str, int] = {}
        for stats in self.batch_stats:
            worker = stats.get("worker", "main")
            final[worker] = max(
                final.get(worker, 0), stats["analyzer_builds"]
            )
        return final


class CampaignRunner:
    """Evaluates a :class:`CampaignSpec`, reading/writing a store.

    Scenarios already present in the ``store`` (by digest) are skipped;
    the rest are analyzed serially or process-parallel.
    ``parallel=None`` (default) picks serial below
    ``parallel_min_units`` analysis units — pool spin-up dominates
    small grids — and parallel above it; an already-started resident
    pool waives the threshold (its spin-up is paid) but never the
    multi-CPU requirement.  ``max_workers`` sizes the pool.

    The parallel path runs on a pre-forked
    :class:`~repro.campaign.pool.WorkerPool`.  Pass one via ``pool`` to
    share a warm pool across runners and runs (the caller owns its
    lifetime); otherwise the runner forks its own on the first parallel
    run, keeps it resident for later runs, and tears it down in
    :meth:`close` (the runner is also a context manager).  Freshly
    computed results are appended to the store *as they stream in*, so
    an interrupted run resumes from the last completed batch, not the
    last completed run.

    :meth:`run` returns a :class:`CampaignOutcome` whose ``results``
    follow the spec's deterministic grid order regardless of execution
    mode.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore | None = None,
        max_workers: int | None = None,
        parallel_min_units: int = PARALLEL_MIN_UNITS,
        pool: WorkerPool | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise CampaignError(f"max_workers must be >= 1, got {max_workers}")
        if parallel_min_units < 0:
            raise CampaignError(
                f"parallel_min_units must be >= 0, got {parallel_min_units}"
            )
        self.spec = spec
        self.store = store if store is not None else ResultStore()
        self.max_workers = max_workers
        self.parallel_min_units = parallel_min_units
        self.pool = pool
        self._owns_pool = False

    def close(self) -> None:
        """Shut down the runner-owned worker pool, if one was forked.

        Pools handed in by the caller are left running — they may be
        shared with other runners (that is the point of passing one).
        """
        if self._owns_pool and self.pool is not None:
            self.pool.close()
            self.pool = None
            self._owns_pool = False

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _batches(
        self, pending: Sequence[ScenarioKey], workers: int
    ) -> list[tuple[tuple, AsertaConfig, list[WorkItem], str | None]]:
        """Group pending scenarios by structural group, then split the
        groups into at most ~``workers`` roughly even batches so a short
        group list still saturates the pool.

        Chunk boundaries fall only *between* analysis units — the items
        sharing one ``(charge, assignment, sample-width count)`` — never
        inside one, so the environment axis is always served from a
        single electrical analysis no matter how many chunks a group is
        split into or which execution mode runs them.

        The batch sequence interleaves groups round-robin (first chunk
        of every circuit, then second chunks, ...): a pool of W workers
        then starts on W *distinct* circuits, and a worker that finishes
        a chunk most likely picks up another chunk of a circuit it has
        already compiled — per-worker analyzer/engine reuse instead of
        every worker rebuilding every circuit's structural pass.
        """
        groups: dict[tuple, dict[tuple, list[WorkItem]]] = {}
        for key in pending:
            item: WorkItem = (
                key,
                self.spec.assignments[key.assignment],
                self.spec.environment_by_name(key.environment),
            )
            groups.setdefault(key.structural_group(), {}).setdefault(
                _analysis_unit(key), []
            ).append(item)
        per_group = max(1, workers // max(1, len(groups)))
        chunked: list[list[tuple[tuple, AsertaConfig, list[WorkItem], str | None]]] = []
        for group, units in groups.items():
            config = self.spec.aserta_config()
            unit_lists = list(units.values())
            n_chunks = min(per_group, len(unit_lists))
            size = math.ceil(len(unit_lists) / n_chunks)
            group_batches = []
            for start in range(0, len(unit_lists), size):
                chunk = [
                    item
                    for unit_items in unit_lists[start : start + size]
                    for item in unit_items
                ]
                group_batches.append(
                    (group, config, chunk, self.spec.cache_dir)
                )
            chunked.append(group_batches)
        batches: list[tuple[tuple, AsertaConfig, list[WorkItem], str | None]] = []
        for round_index in range(max((len(g) for g in chunked), default=0)):
            for group_batches in chunked:
                if round_index < len(group_batches):
                    batches.append(group_batches[round_index])
        return batches

    def _pending_units(self, pending: Sequence[ScenarioKey]) -> int:
        """Distinct electrical analyses the pending scenarios cost."""
        return len(
            {(key.structural_group(), _analysis_unit(key)) for key in pending}
        )

    def run(self, parallel: bool | None = None) -> CampaignOutcome:
        """Evaluate every scenario not already in the store.

        ``parallel=None`` auto-selects: parallel when there is more than
        one batch of work, more than one CPU, *and* either the pending
        grid is at least ``parallel_min_units`` analysis units or a
        resident pool is already started (its spin-up — the fixed cost
        that made small grids slower parallel than serial — is already
        paid).  ``parallel=True`` forces dispatch regardless of grid
        size and falls back to serial execution if a worker pool cannot
        be used.

        Freshly computed results are appended to the store as each
        batch completes — streamed from the workers under parallel
        execution — so a run interrupted mid-campaign has persisted
        everything it finished.

        With ``spec.telemetry`` set, the run records a ``campaign.run``
        span tree (plan / execute / finalize; parallel execution adds a
        measured ``campaign.pool_spinup`` span when the pool starts
        inside this run, plus per-batch measured ``campaign.steal`` and
        ``campaign.stream_recv`` spans) and merges every worker's
        shipped span buffer and metric snapshot into the one handle —
        the cross-process campaign timeline.
        """
        started = time.perf_counter()
        tel = resolve(self.spec.telemetry)
        ship = tel.enabled
        with tel.span("campaign.run", scenarios=self.spec.size()):
            with tel.span("campaign.plan"):
                keys = self.spec.scenarios()
                pending = [
                    key for key in keys if key.digest() not in self.store
                ]
                skipped = len(keys) - len(pending)

                cpus = os.cpu_count() or 1
                workers = (
                    self.max_workers if self.max_workers is not None else cpus
                )
                batches = self._batches(pending, workers)
                workers = max(1, min(workers, len(batches)))
                if parallel is None:
                    pool_ready = self.pool is not None and self.pool.started
                    parallel = (
                        workers > 1
                        and cpus > 1
                        and (
                            pool_ready
                            or self._pending_units(pending)
                            >= self.parallel_min_units
                        )
                    )

            mode = "serial"
            computed: list[ScenarioResult] = []
            batch_stats: list[dict] = []
            pool_spinup_s = 0.0
            result_recv_s = 0.0
            with tel.span("campaign.execute", batches=len(batches)):
                if parallel and workers > 1 and _dispatchable(batches):
                    dispatched = self._run_parallel(
                        batches, workers, ship, tel
                    )
                    if dispatched is not None:
                        computed, batch_stats, pool_spinup_s, result_recv_s = (
                            dispatched
                        )
                        mode = "parallel"
                        workers = self.pool.workers if self.pool else workers
                if mode == "serial":
                    workers = 1
                    for group, config, items, cache_dir in batches:
                        results, stats = _evaluate_batch(
                            group, config, items, cache_dir,
                            telemetry=self.spec.telemetry,
                        )
                        computed.extend(results)
                        batch_stats.append(stats)
                        for result in results:
                            self.store.add(result)

            # Workers record into fresh local handles (a Telemetry does
            # not pickle); their shipped payloads merge here, after which
            # the stats records carried home are payload-free.
            for stats in batch_stats:
                payload = stats.pop("telemetry", None)
                if payload is not None:
                    tel.merge(payload)

            with tel.span("campaign.finalize"):
                ordered: list[ScenarioResult] = []
                for key in keys:
                    digest = key.digest()
                    result = self.store.get(digest)
                    if result is None:  # pragma: no cover - defensive
                        raise CampaignError(
                            f"scenario {digest} was never evaluated"
                        )
                    ordered.append(result)

        wall = time.perf_counter() - started
        if ship:
            tel.metrics.add("campaign.runs")
            tel.metrics.add("campaign.scenarios.total", len(keys))
            tel.metrics.add("campaign.scenarios.skipped", skipped)
        return CampaignOutcome(
            results=tuple(ordered),
            computed=len(computed),
            skipped=skipped,
            wall_s=wall,
            analyze_s=sum(result.analyze_runtime_s for result in computed),
            mode=mode,
            workers=workers,
            batch_stats=tuple(batch_stats),
            pool_spinup_s=pool_spinup_s,
            result_recv_s=result_recv_s,
        )

    def _pool_for_run(self, workers: int) -> tuple[WorkerPool | None, float]:
        """The pool this run executes on, starting it if necessary.

        Returns ``(pool, spinup_s)`` where ``spinup_s`` is the measured
        fork-to-ready time when the pool was started *inside this call*
        and 0.0 when an already-resident pool was reused (its spin-up
        was paid earlier — the amortization).  Returns ``(None, 0.0)``
        when no pool can be brought up, which sends the caller to the
        serial path.
        """
        pool = self.pool
        created = False
        if pool is None:
            pool = WorkerPool(workers, cache_dir=self.spec.cache_dir)
            created = True
        started_here = not pool.started
        try:
            spinup_s = pool.start()
        except WorkerPoolError as exc:
            _LOG.warning(
                "worker pool unavailable (%s); falling back to serial "
                "execution", exc,
            )
            if created:
                pool.close()
            elif self._owns_pool:
                self.pool = None
                self._owns_pool = False
            return None, 0.0
        if created:
            self.pool = pool
            self._owns_pool = True
        return pool, spinup_s if started_here else 0.0

    def _run_parallel(
        self,
        batches: Sequence[tuple[tuple, AsertaConfig, list[WorkItem], str | None]],
        workers: int,
        ship: bool = False,
        tel=None,
    ) -> tuple[list[ScenarioResult], list[dict], float, float] | None:
        """Stream the batches through the resident worker pool.

        Returns ``None`` when no pool can be brought up at all (a
        sandbox that denies fork — the caller falls back to the serial
        path, logging a WARNING).  A worker *dying* mid-run demotes
        only the not-yet-completed batches to in-process execution, so
        the work already streamed back is never recomputed.  Exceptions
        raised by analysis code inside a worker re-raise here as
        themselves, exactly as on the serial path.

        Each completed batch is appended to the store the moment it
        arrives.  With ``ship=True``, per-batch measured
        ``campaign.steal`` (worker blocked on the shared queue) and
        ``campaign.stream_recv`` (worker send to parent receive) spans
        are recorded into ``tel`` from the workers' own
        ``perf_counter_ns`` endpoints (machine-wide comparable), and a
        measured ``campaign.pool_spinup`` span when the pool started
        inside this run.
        """
        tel = resolve(tel)
        spinup_started_ns = time.perf_counter_ns()
        pool, spinup_s = self._pool_for_run(workers)
        if pool is None:
            return None
        if ship and spinup_s > 0.0:
            tel.tracer.record(
                "campaign.pool_spinup",
                spinup_started_ns,
                time.perf_counter_ns(),
                workers=pool.workers,
            )
        results: list[ScenarioResult] = []
        batch_stats: list[dict] = []
        done: set[int] = set()
        recv_s = 0.0

        def _take(batch_index: int, batch_results, stats) -> None:
            nonlocal recv_s
            done.add(batch_index)
            results.extend(batch_results)
            batch_stats.append(stats)
            for result in batch_results:
                self.store.add(result)
            # Per-(worker, kind) synthetic trace lanes: these intervals
            # describe worker-side activity, so on the parent's own tid
            # they would interleave with the live span stack (and each
            # other) and break B/E nesting in the exported trace.
            worker = stats.get("worker", "?")
            lane_base = 2 * int(worker[1:]) if worker[1:].isdigit() else 0
            received_ns = stats.get("received_at_ns")
            sent_ns = stats.get("sent_at_ns")
            if received_ns is not None and sent_ns is not None:
                recv_s += max(0.0, (received_ns - sent_ns) / 1e9)
                if ship:
                    tel.tracer.record(
                        "campaign.stream_recv",
                        sent_ns,
                        max(sent_ns, received_ns),
                        lane=lane_base + 2,
                        worker=worker,
                        batch=batch_index,
                    )
            if ship and "steal_started_at_ns" in stats:
                tel.tracer.record(
                    "campaign.steal",
                    stats["steal_started_at_ns"],
                    stats["steal_started_at_ns"] + stats["steal_wait_ns"],
                    lane=lane_base + 1,
                    worker=worker,
                    batch=batch_index,
                )

        try:
            for batch_index, batch_results, stats in pool.run_batches(
                batches, ship_telemetry=ship
            ):
                _take(batch_index, batch_results, stats)
        except WorkerPoolBroken as exc:
            # The pool is gone; whatever already streamed back is safe
            # in the store.  Finish the remaining batches in-process
            # rather than failing (or recomputing) the campaign.
            _LOG.warning(
                "worker pool broke mid-run (%s); finishing %d remaining "
                "batch(es) serially", exc, len(batches) - len(done),
            )
            if self.pool is pool:
                self.pool = None
                self._owns_pool = False
            for batch_index, (group, config, items, cache_dir) in enumerate(
                batches
            ):
                if batch_index in done:
                    continue
                batch_results, stats = _evaluate_batch(
                    group, config, items, cache_dir,
                    telemetry=self.spec.telemetry,
                )
                _take(batch_index, batch_results, stats)
        return results, batch_stats, spinup_s, recv_s


def _dispatchable(batches: Sequence[tuple]) -> bool:
    """Whether the work can cross a process boundary.  Custom assignment
    or environment subclasses may not pickle; those campaigns run
    serially instead of failing."""
    import pickle

    try:
        pickle.dumps(batches)
    except Exception:
        return False
    return True
