"""Batch soft-error analysis campaigns.

Declarative scenario grids (:class:`CampaignSpec`), environment/mission
models (:class:`Environment` and the presets), process-parallel
execution with structural-pass reuse (:class:`CampaignRunner`), a
persistent content-addressed result store (:class:`ResultStore`) and
grid-level aggregation (:func:`summarize`).

Command line: ``python -m repro.campaign --help``.
"""

from repro.campaign.environments import (
    AVIONICS,
    ENVIRONMENTS,
    FIT_PER_MB_BY_NODE_NM,
    LEO_SPACE,
    SEA_LEVEL,
    Environment,
    EnvironmentRates,
    environment,
    fit_per_mb,
)
from repro.campaign.pool import (
    WorkerPool,
    WorkerPoolBroken,
    WorkerPoolError,
)
from repro.campaign.runner import (
    CampaignOutcome,
    CampaignRunner,
    clear_analyzer_cache,
)
from repro.campaign.spec import (
    CampaignSpec,
    ScenarioKey,
    assignment_fingerprint,
)
from repro.campaign.store import (
    JsonlBackend,
    ResultStore,
    ScenarioResult,
    SqliteBackend,
    StoreBackend,
    merge_stores,
)
from repro.campaign.summarize import (
    AssignmentRanking,
    CampaignSummary,
    format_observability_table,
    format_runtime_accounting,
    observability_rows,
    summarize,
)

__all__ = [
    "AVIONICS",
    "ENVIRONMENTS",
    "FIT_PER_MB_BY_NODE_NM",
    "LEO_SPACE",
    "SEA_LEVEL",
    "AssignmentRanking",
    "CampaignOutcome",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSummary",
    "Environment",
    "EnvironmentRates",
    "JsonlBackend",
    "ResultStore",
    "ScenarioKey",
    "ScenarioResult",
    "SqliteBackend",
    "StoreBackend",
    "WorkerPool",
    "WorkerPoolBroken",
    "WorkerPoolError",
    "assignment_fingerprint",
    "clear_analyzer_cache",
    "environment",
    "fit_per_mb",
    "format_observability_table",
    "format_runtime_accounting",
    "merge_stores",
    "observability_rows",
    "summarize",
]
