"""Persistent, content-addressed campaign results.

The store is a JSONL file: one self-describing record per completed
scenario, keyed by the scenario's SHA-256 content digest.  Append-only
writes make it crash-tolerant (a torn final line is ignored on load) and
trivially mergeable — concatenating two stores is a valid store.  The
:class:`~repro.campaign.runner.CampaignRunner` consults it before
dispatching work, which is what makes campaigns resumable: re-running a
finished campaign costs one file read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.campaign.spec import ScenarioKey
from repro.errors import CampaignError

#: Version of the result-record serialization.
RESULT_SCHEMA = 1


@dataclass(frozen=True)
class ScenarioResult:
    """One completed scenario: the key plus every derived metric."""

    key: ScenarioKey
    #: ASERTA circuit unreliability U (Equation 4), ps.
    unreliability_total: float
    #: Failures per 1e9 device-hours in the scenario's environment.
    fit: float
    #: Probability of >= 1 upset over the environment's mission.
    mission_upset_probability: float
    #: Wall time of the electrical analysis producing this result; 0.0
    #: when the result was derived from an analysis shared with another
    #: scenario of the same batch (environment axis reuse).
    analyze_runtime_s: float

    def digest(self) -> str:
        return self.key.digest()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": RESULT_SCHEMA,
            "digest": self.digest(),
            "key": self.key.to_json_dict(),
            "metrics": {
                "unreliability_total": self.unreliability_total,
                "fit": self.fit,
                "mission_upset_probability": self.mission_upset_probability,
                "analyze_runtime_s": self.analyze_runtime_s,
            },
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ScenarioResult":
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA:
            raise CampaignError(
                f"result schema {schema} not supported (expected {RESULT_SCHEMA})"
            )
        try:
            key = ScenarioKey.from_json_dict(payload["key"])
            metrics = payload["metrics"]
            result = cls(
                key=key,
                unreliability_total=float(metrics["unreliability_total"]),
                fit=float(metrics["fit"]),
                mission_upset_probability=float(
                    metrics["mission_upset_probability"]
                ),
                analyze_runtime_s=float(metrics["analyze_runtime_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"malformed result record: {exc}") from None
        recorded = payload.get("digest")
        if recorded is not None and recorded != result.digest():
            raise CampaignError(
                f"result digest mismatch: recorded {recorded!r}, "
                f"recomputed {result.digest()!r}"
            )
        return result


class ResultStore:
    """Digest-keyed scenario results, optionally backed by a JSONL file.

    ``path=None`` gives a purely in-memory store (useful for tests and
    one-shot campaigns); with a path, every :meth:`add` is appended and
    flushed immediately, and construction replays the existing file.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._results: dict[str, ScenarioResult] = {}
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # Torn final line from an interrupted run: the
                    # scenario simply gets recomputed.
                    continue
                raise CampaignError(
                    f"{self.path}:{index + 1}: not valid JSON"
                ) from None
            result = ScenarioResult.from_json_dict(payload)
            self._results[result.digest()] = result

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, digest: str) -> bool:
        return digest in self._results

    def get(self, digest: str) -> ScenarioResult | None:
        return self._results.get(digest)

    def add(self, result: ScenarioResult, overwrite: bool = False) -> bool:
        """Record ``result``; returns False if it was already present."""
        digest = result.digest()
        if digest in self._results and not overwrite:
            return False
        self._results[digest] = result
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(result.to_json_dict()) + "\n")
        return True

    def results(self) -> Iterator[ScenarioResult]:
        """All stored results, in insertion (file) order."""
        return iter(tuple(self._results.values()))
