"""Persistent, content-addressed campaign results.

A :class:`ResultStore` maps scenario content digests to
:class:`ScenarioResult` records behind one of two file backends:

* **JSONL** (the default): one self-describing record per line,
  append-only.  Crash-tolerant (a torn final line is ignored on load
  and guarded against on the next append), trivially mergeable, and
  greppable.  The whole file is replayed into memory on open.
* **SQLite** (``*.sqlite`` / ``*.sqlite3`` / ``*.db`` paths, or
  ``backend="sqlite"``): WAL-mode database with one row per digest.
  Digest lookups are index hits — no full replay on open — and many
  processes can append concurrently under SQLite's own locking, which
  is what a multi-writer campaign service needs.

Both backends share the same contract: **last write wins per digest,
insertion order is first-write order** — replaying a file produces
exactly the live store's ``results()`` sequence.  :meth:`ResultStore
.compact` rewrites redundant history in place (atomic for JSONL,
``VACUUM`` for SQLite) and :meth:`ResultStore.merge_from` folds any
other store (either backend) into this one.

The :class:`~repro.campaign.runner.CampaignRunner` consults the store
before dispatching work and streams freshly computed results into it as
they arrive, which is what makes campaigns resumable: re-running a
finished campaign costs one digest scan.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.campaign.spec import ScenarioKey
from repro.errors import CampaignError

#: Version of the result-record serialization.
RESULT_SCHEMA = 1

#: Path suffixes that auto-select the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Backend selector names accepted by :class:`ResultStore`.
STORE_BACKENDS = ("auto", "jsonl", "sqlite")


@dataclass(frozen=True)
class ScenarioResult:
    """One completed scenario: the key plus every derived metric."""

    key: ScenarioKey
    #: ASERTA circuit unreliability U (Equation 4), ps.
    unreliability_total: float
    #: Failures per 1e9 device-hours in the scenario's environment.
    fit: float
    #: Probability of >= 1 upset over the environment's mission.
    mission_upset_probability: float
    #: Wall time of the electrical analysis producing this result; 0.0
    #: when the result was derived from an analysis shared with another
    #: scenario of the same batch (environment axis reuse).
    analyze_runtime_s: float

    def digest(self) -> str:
        return self.key.digest()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": RESULT_SCHEMA,
            "digest": self.digest(),
            "key": self.key.to_json_dict(),
            "metrics": {
                "unreliability_total": self.unreliability_total,
                "fit": self.fit,
                "mission_upset_probability": self.mission_upset_probability,
                "analyze_runtime_s": self.analyze_runtime_s,
            },
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ScenarioResult":
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA:
            raise CampaignError(
                f"result schema {schema} not supported (expected {RESULT_SCHEMA})"
            )
        try:
            key = ScenarioKey.from_json_dict(payload["key"])
            metrics = payload["metrics"]
            result = cls(
                key=key,
                unreliability_total=float(metrics["unreliability_total"]),
                fit=float(metrics["fit"]),
                mission_upset_probability=float(
                    metrics["mission_upset_probability"]
                ),
                analyze_runtime_s=float(metrics["analyze_runtime_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"malformed result record: {exc}") from None
        recorded = payload.get("digest")
        if recorded is not None and recorded != result.digest():
            raise CampaignError(
                f"result digest mismatch: recorded {recorded!r}, "
                f"recomputed {result.digest()!r}"
            )
        return result


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class StoreBackend:
    """File format behind a :class:`ResultStore`.

    A backend persists raw records; the *semantics* — last-wins per
    digest, first-write ordering, overwrite handling — live in
    :class:`ResultStore`, so every backend honours the same contract.
    Implementations must tolerate concurrent appenders on the same
    path (two campaign runners, a runner plus a merge) without tearing
    records.
    """

    #: File path the backend persists to.
    path: Path

    def replay(self) -> Iterator[ScenarioResult]:
        """Every stored record in append order (duplicates included for
        formats that keep history)."""
        raise NotImplementedError

    def append(self, result: ScenarioResult) -> None:
        """Durably record one result (flushed before returning)."""
        raise NotImplementedError

    def rewrite(self, results: Sequence[ScenarioResult]) -> None:
        """Atomically replace the file contents with exactly ``results``
        in order — the compaction primitive."""
        raise NotImplementedError

    def lookup(self, digest: str) -> ScenarioResult | None:
        """Point lookup without a full replay, or ``None`` when the
        backend cannot do better than replay (JSONL)."""
        return None

    def close(self) -> None:
        """Release file handles; further use is undefined."""


class JsonlBackend(StoreBackend):
    """Append-only JSON-lines file, one record per line.

    Appends are single ``write()`` calls on an ``O_APPEND`` handle, so
    concurrent writers interleave whole lines rather than tearing them.
    A crash mid-append can still leave a torn *final* line; both
    :meth:`replay` (ignores it) and :meth:`append` (starts a fresh line
    when the file does not end in a newline) are guarded against it, so
    an interrupted run is always resumable and never corrupts the
    record appended after it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def replay(self) -> Iterator[ScenarioResult]:
        if not self.path.exists():
            return
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # Torn final line from an interrupted run: the
                    # scenario simply gets recomputed.
                    continue
                raise CampaignError(
                    f"{self.path}:{index + 1}: not valid JSON"
                ) from None
            yield ScenarioResult.from_json_dict(payload)

    def _trim_torn_tail(self) -> None:
        """Drop a torn final line (crash mid-write) before appending.

        Appending directly after a torn tail would concatenate two
        records into one invalid line — and once a *complete* record
        follows it, the fragment is no longer final, so ``replay()``
        would (correctly) refuse the file as interior corruption,
        turning a recoverable resume into a hard load error.  The
        fragment is unrecoverable either way (replay already ignores
        it; its scenario gets recomputed), so truncating it is the
        append-side half of the same contract.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with self.path.open("rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            last_newline = -1
            pos = size
            while pos > 0 and last_newline < 0:
                start = max(0, pos - 65536)
                handle.seek(start)
                data = handle.read(pos - start)
                index = data.rfind(b"\n")
                if index >= 0:
                    last_newline = start + index
                pos = start
            handle.truncate(last_newline + 1 if last_newline >= 0 else 0)

    def append(self, result: ScenarioResult) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._trim_torn_tail()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(result.to_json_dict()) + "\n")

    def rewrite(self, results: Sequence[ScenarioResult]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for result in results:
                    handle.write(json.dumps(result.to_json_dict()) + "\n")
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


class SqliteBackend(StoreBackend):
    """WAL-mode SQLite file: one row per digest, upsert on overwrite.

    * ``PRAGMA journal_mode=WAL`` lets readers and one writer proceed
      concurrently; a generous ``busy_timeout`` serializes concurrent
      appenders from several processes instead of failing them.
    * ``digest`` is the primary key, so resume checks are index hits —
      opening a million-result store costs nothing until it is read.
    * Overwrites are ``ON CONFLICT DO UPDATE``, which keeps the original
      ``rowid``: insertion order is first-write order by construction,
      matching the JSONL replay contract exactly.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(
                os.fspath(self.path), timeout=30.0, isolation_level=None
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " digest TEXT PRIMARY KEY,"
                " schema INTEGER NOT NULL,"
                " payload TEXT NOT NULL)"
            )
        except sqlite3.DatabaseError as exc:
            raise CampaignError(
                f"{self.path}: not a usable SQLite result store ({exc})"
            ) from None

    def _parse(self, payload: str) -> ScenarioResult:
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            raise CampaignError(
                f"{self.path}: corrupt record payload"
            ) from None
        return ScenarioResult.from_json_dict(record)

    def replay(self) -> Iterator[ScenarioResult]:
        try:
            rows = self._conn.execute(
                "SELECT payload FROM results ORDER BY rowid"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise CampaignError(f"{self.path}: {exc}") from None
        for (payload,) in rows:
            yield self._parse(payload)

    def append(self, result: ScenarioResult) -> None:
        self._conn.execute(
            "INSERT INTO results (digest, schema, payload) VALUES (?, ?, ?)"
            " ON CONFLICT(digest) DO UPDATE SET"
            " payload = excluded.payload, schema = excluded.schema",
            (
                result.digest(),
                RESULT_SCHEMA,
                json.dumps(result.to_json_dict()),
            ),
        )

    def rewrite(self, results: Sequence[ScenarioResult]) -> None:
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute("DELETE FROM results")
            self._conn.executemany(
                "INSERT INTO results (digest, schema, payload)"
                " VALUES (?, ?, ?)",
                [
                    (r.digest(), RESULT_SCHEMA, json.dumps(r.to_json_dict()))
                    for r in results
                ],
            )
            self._conn.execute("COMMIT")
        except sqlite3.DatabaseError:
            self._conn.execute("ROLLBACK")
            raise
        self.vacuum()

    def lookup(self, digest: str) -> ScenarioResult | None:
        row = self._conn.execute(
            "SELECT payload FROM results WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            return None
        return self._parse(row[0])

    def contains(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE digest = ?", (digest,)
        ).fetchone()
        return row is not None

    def count(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )

    def digests(self) -> set[str]:
        return {
            row[0]
            for row in self._conn.execute("SELECT digest FROM results")
        }

    def vacuum(self) -> None:
        """Fold the WAL back into the main file and reclaim free pages."""
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.execute("VACUUM")

    def close(self) -> None:
        self._conn.close()


def _backend_for(path: Path, backend: str) -> StoreBackend:
    if backend not in STORE_BACKENDS:
        raise CampaignError(
            f"store backend must be one of {STORE_BACKENDS}, got {backend!r}"
        )
    if backend == "sqlite" or (
        backend == "auto" and path.suffix.lower() in SQLITE_SUFFIXES
    ):
        return SqliteBackend(path)
    return JsonlBackend(path)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class ResultStore:
    """Digest-keyed scenario results, optionally backed by a file.

    ``path=None`` gives a purely in-memory store (useful for tests and
    one-shot campaigns).  With a path, every :meth:`add` is persisted
    immediately; the backend is chosen by suffix (``.sqlite`` /
    ``.sqlite3`` / ``.db`` select SQLite, anything else JSONL) or
    explicitly via ``backend="jsonl"`` / ``"sqlite"``.

    The JSONL backend replays the file into memory on construction; the
    SQLite backend is lazy — digest membership, point lookups and
    ``len()`` are index queries, and records are parsed (and memoized)
    only when read — so resuming a huge campaign never replays it.

    ``results()`` iterates in **insertion order with last-wins values**:
    the first write of a digest fixes its position, later overwrites
    update the value in place.  A replayed store reproduces the live
    store's sequence exactly, on both backends.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        backend: str = "auto",
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._results: dict[str, ScenarioResult] = {}
        self._backend: StoreBackend | None = None
        if self.path is not None:
            self._backend = _backend_for(self.path, backend)
            if not isinstance(self._backend, SqliteBackend):
                for result in self._backend.replay():
                    # Last-wins: later lines update the value but keep
                    # the first occurrence's position (dict semantics),
                    # matching the live store's ordering contract.
                    self._results[result.digest()] = result

    @property
    def backend_name(self) -> str:
        """``"memory"``, ``"jsonl"`` or ``"sqlite"``."""
        if self._backend is None:
            return "memory"
        return (
            "sqlite" if isinstance(self._backend, SqliteBackend) else "jsonl"
        )

    def _sqlite(self) -> SqliteBackend | None:
        backend = self._backend
        return backend if isinstance(backend, SqliteBackend) else None

    def __len__(self) -> int:
        sqlite = self._sqlite()
        if sqlite is not None:
            return sqlite.count()
        return len(self._results)

    def __contains__(self, digest: str) -> bool:
        if digest in self._results:
            return True
        sqlite = self._sqlite()
        return sqlite is not None and sqlite.contains(digest)

    def digests(self) -> set[str]:
        """Every stored digest — the bulk resume check.

        One indexed scan for SQLite (no payload parsing), a dict-key
        view for the replayed backends.
        """
        sqlite = self._sqlite()
        if sqlite is not None:
            return sqlite.digests()
        return set(self._results)

    def get(self, digest: str) -> ScenarioResult | None:
        cached = self._results.get(digest)
        if cached is not None:
            return cached
        sqlite = self._sqlite()
        if sqlite is None:
            return None
        result = sqlite.lookup(digest)
        if result is not None:
            self._results[digest] = result
        return result

    def add(self, result: ScenarioResult, overwrite: bool = False) -> bool:
        """Record ``result``; returns False if it was already present."""
        digest = result.digest()
        if digest in self and not overwrite:
            return False
        self._results[digest] = result
        if self._backend is not None:
            self._backend.append(result)
        return True

    def results(self) -> Iterator[ScenarioResult]:
        """All stored results, in insertion order (last-wins values)."""
        sqlite = self._sqlite()
        if sqlite is not None:
            return iter(tuple(sqlite.replay()))
        return iter(tuple(self._results.values()))

    def compact(self) -> int:
        """Rewrite the backing file without redundant history.

        JSONL stores accumulate one line per :meth:`add` — including
        overwrites — so a long-lived resumed campaign grows without
        bound; compaction rewrites the file (atomic rename) with exactly
        one line per digest in insertion order.  SQLite stores never
        hold duplicate rows; compaction checkpoints the WAL and
        ``VACUUM``\\ s.  Returns the number of redundant records
        dropped (0 for in-memory and SQLite stores).
        """
        if self._backend is None:
            return 0
        sqlite = self._sqlite()
        if sqlite is not None:
            sqlite.vacuum()
            return 0
        before = sum(1 for __ in self._backend.replay())
        ordered = tuple(self._results.values())
        self._backend.rewrite(ordered)
        return before - len(ordered)

    def merge_from(
        self,
        source: "ResultStore | str | Path",
        overwrite: bool = False,
    ) -> int:
        """Fold another store (either backend, or a path) into this one.

        Returns the number of records actually added.  With
        ``overwrite=False`` (default) existing digests win — merging is
        idempotent and order-independent for digest-disjoint stores;
        ``overwrite=True`` makes the source win.
        """
        if not isinstance(source, ResultStore):
            source = ResultStore(source)
        added = 0
        for result in source.results():
            if self.add(result, overwrite=overwrite):
                added += 1
        return added

    def close(self) -> None:
        """Release the backing file; the in-memory view stays readable."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_stores(
    destination: str | Path | ResultStore,
    sources: Iterable[str | Path | ResultStore],
    overwrite: bool = False,
) -> ResultStore:
    """Merge ``sources`` into ``destination`` (created if missing).

    Backends may be mixed freely — merging per-worker JSONL shards into
    one SQLite store is the intended aggregation path.  Returns the
    destination store, left open.
    """
    dest = (
        destination
        if isinstance(destination, ResultStore)
        else ResultStore(destination)
    )
    for source in sources:
        dest.merge_from(source, overwrite=overwrite)
    return dest
