"""Zero-dependency instrumentation: spans, metrics, exporters.

One :class:`Telemetry` handle bundles a :class:`~repro.telemetry.tracer.Tracer`
and a :class:`~repro.telemetry.metrics.MetricsRegistry`; pass it through
the optional ``telemetry=`` parameter on ``AsertaAnalyzer``,
``AnalysisEngine``, ``Sertopt`` or ``CampaignSpec`` and every phase of
the pipeline records nested spans and named counters into it (see
``docs/observability.md`` for the span taxonomy and metric registry).

>>> ticks = iter(range(0, 10_000, 1000))
>>> telemetry = Telemetry(tracer=Tracer(clock=lambda: next(ticks)))
>>> with telemetry.span("sertopt.optimize", circuit="c17"):
...     with telemetry.span("sertopt.search"):
...         telemetry.metrics.add("optimizer.evaluations", 150)
>>> [s.name for s in telemetry.tracer.spans()]
['sertopt.search', 'sertopt.optimize']
>>> telemetry.metrics.snapshot()["counters"]
{'optimizer.evaluations': 150}

Instrumentation defaults to :data:`NULL_TELEMETRY`, whose ``span()`` is
a shared no-op context manager — disabled tracing costs an attribute
lookup, which the ``benchmarks/test_bench_telemetry.py`` gate holds to
<= 3% of an uninstrumented ``analyze()``.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Mapping

from repro.telemetry.export import (
    aggregate_spans,
    chrome_trace,
    chrome_trace_events,
    format_report,
    json_summary,
    span_coverage,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.telemetry.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


class Telemetry:
    """One tracer + one metrics registry, passed around as a unit."""

    enabled = True
    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def span(self, name: str, **attrs: Any):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attrs)

    def merge(self, shipped: Mapping[str, Any]) -> None:
        """Fold a worker's shipped payload (``{"spans": [...],
        "metrics": {...}}``) into this handle — the campaign runner's
        cross-process aggregation step."""
        self.tracer.extend(shipped.get("spans", ()))
        self.metrics.merge(shipped.get("metrics", {}))

    def ship(self) -> dict[str, Any]:
        """The picklable counterpart of :meth:`merge` (everything
        recorded so far)."""
        return {
            "spans": [span.to_dict() for span in self.tracer.spans()],
            "metrics": self.metrics.snapshot(),
        }


class NullTelemetry:
    """Disabled telemetry: shared, stateless, no-op.

    >>> NULL_TELEMETRY.enabled
    False
    >>> with NULL_TELEMETRY.span("aserta.analyze"):
    ...     NULL_TELEMETRY.metrics.add("ignored")
    """

    enabled = False
    __slots__ = ()
    tracer = NULL_TRACER
    metrics = NULL_METRICS

    def span(self, name: str, **attrs: Any):
        return NULL_SPAN

    def merge(self, shipped: Mapping[str, Any]) -> None:
        return None

    def ship(self) -> dict[str, Any]:
        return {"spans": [], "metrics": NULL_METRICS.snapshot()}


NULL_TELEMETRY = NullTelemetry()


def resolve(telemetry: Telemetry | None) -> Telemetry | NullTelemetry:
    """``telemetry`` or the null handle — what instrumented ``__init__``
    methods call on their optional parameter."""
    return NULL_TELEMETRY if telemetry is None else telemetry


_CONSOLE_HANDLER: logging.Handler | None = None


def enable_console_logging(
    level: int = logging.DEBUG, stream=None
) -> logging.Handler:
    """Attach a console handler to the ``repro`` logger.

    The library itself only ever installs a ``NullHandler`` (library
    logging etiquette); call this to see the debug-level decision-point
    lines — cache misses, parallel->serial fallbacks — without
    configuring :mod:`logging` yourself.  Repeated calls replace the
    previous handler rather than stacking duplicates.  Returns the
    handler so callers can detach it (``logger.removeHandler``).
    """
    global _CONSOLE_HANDLER
    logger = logging.getLogger("repro")
    if _CONSOLE_HANDLER is not None:
        logger.removeHandler(_CONSOLE_HANDLER)
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    handler.setLevel(level)
    logger.addHandler(handler)
    logger.setLevel(min(level, logger.level or level))
    _CONSOLE_HANDLER = handler
    return handler


__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "Span",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "resolve",
    "enable_console_logging",
    "aggregate_spans",
    "chrome_trace",
    "chrome_trace_events",
    "format_report",
    "json_summary",
    "span_coverage",
    "validate_chrome_trace",
    "write_chrome_trace",
]
