"""Nested spans over the monotonic clock.

A :class:`Tracer` records *spans* — named, attributed intervals of
``time.perf_counter_ns()`` — nested per thread via a ``with`` API:

>>> ticks = iter(range(0, 1000, 100))
>>> tracer = Tracer(clock=lambda: next(ticks))
>>> with tracer.span("analyze", circuit="c17"):
...     with tracer.span("masking_sweep"):
...         pass
>>> [(s.name, s.start_ns, s.end_ns) for s in tracer.spans()]
[('masking_sweep', 100, 200), ('analyze', 0, 300)]
>>> child, parent = tracer.spans()
>>> child.parent_id == parent.span_id
True

``perf_counter_ns`` is ``CLOCK_MONOTONIC`` on Linux, so timestamps are
comparable *across processes on one machine*: worker spans shipped back
by a campaign merge into the parent's timeline without clock
translation.  Span identity is ``(pid, span_id)`` — ids are only unique
within one process, so cross-process consumers must key parents by pid
too (the exporters in :mod:`repro.telemetry.export` do).

Disabled tracing must cost nothing: :data:`NULL_TRACER` answers
``span()`` with one shared no-op context manager, so an uninstrumented
hot loop pays an attribute lookup and a dict build per call site.
"""

from __future__ import annotations

import os
import threading
import time
from itertools import count
from typing import Any, Callable, Iterable, Mapping


class Span:
    """One finished (or in-flight) traced interval.

    Timestamps are raw ``perf_counter_ns`` values (monotonic, ns);
    ``pid``/``tid`` identify where the span ran; ``parent_id`` is the
    ``span_id`` of the enclosing span in the same process (0 = root).
    """

    __slots__ = (
        "name", "attrs", "pid", "tid",
        "span_id", "parent_id", "start_ns", "end_ns",
    )

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any],
        pid: int,
        tid: int,
        span_id: int,
        parent_id: int,
        start_ns: int,
        end_ns: int = 0,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.pid = pid
        self.tid = tid
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = end_ns

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict[str, Any]:
        """JSON/pickle-friendly form (what campaign workers ship)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            attrs=dict(payload.get("attrs", {})),
            pid=int(payload["pid"]),
            tid=int(payload["tid"]),
            span_id=int(payload["span_id"]),
            parent_id=int(payload.get("parent_id", 0)),
            start_ns=int(payload["start_ns"]),
            end_ns=int(payload["end_ns"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ns / 1e6:.3f} ms, "
            f"pid={self.pid}, tid={self.tid})"
        )


class _SpanHandle:
    """The context manager one ``tracer.span(...)`` call returns."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        assert self._span is not None
        self._tracer._end(self._span)
        return False


class Tracer:
    """Thread-aware span recorder with a process-wide finished buffer.

    Each thread keeps its own span stack (nesting is per thread); the
    finished-span buffer is shared and lock-guarded.  ``clock`` is
    injectable for deterministic tests; the default is
    ``time.perf_counter_ns``.
    """

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._ids = count(1)

    # -------------------------------------------------------------- API

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A context manager recording one nested span named ``name``."""
        return _SpanHandle(self, name, attrs)

    def record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        lane: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured interval as a finished span.

        Used for retrospective phases measured outside a ``with`` block
        (e.g. the campaign runner's pool spin-up and per-batch stealing
        intervals, built from worker-reported timestamps).  The span
        parents under the current thread's innermost open span.

        ``lane`` substitutes a synthetic ``tid`` for the recording
        thread's.  Retrospective spans describing *another* process's
        activity can overlap each other and the recording thread's live
        stack; giving each (worker, kind) family its own lane keeps the
        exported Chrome trace stack-consistent per ``(pid, tid)``.
        """
        stack = self._stack()
        parent = stack[-1].span_id if stack else 0
        span = Span(
            name, attrs, os.getpid(),
            threading.get_ident() if lane is None else lane,
            next(self._ids), parent, int(start_ns), int(end_ns),
        )
        with self._lock:
            self._finished.append(span)
        return span

    def spans(self) -> tuple[Span, ...]:
        """Every finished span so far (recording order: children first)."""
        with self._lock:
            return tuple(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def extend(self, spans: Iterable[Span | Mapping[str, Any]]) -> None:
        """Merge foreign spans (objects or ``to_dict`` payloads) into the
        buffer — the cross-process aggregation entry point."""
        adopted = [
            span if isinstance(span, Span) else Span.from_dict(span)
            for span in spans
        ]
        with self._lock:
            self._finished.extend(adopted)

    # -------------------------------------------------------- internals

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _begin(self, name: str, attrs: dict) -> Span:
        stack = self._stack()
        parent = stack[-1].span_id if stack else 0
        span = Span(
            name, attrs, os.getpid(), threading.get_ident(),
            next(self._ids), parent, self._clock(),
        )
        stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        span.end_ns = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - mis-nested exit; keep the buffer sane
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)


class _NullSpanContext:
    """Shared no-op ``with`` target for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Tracer with the same surface and no effect.

    >>> with NULL_TRACER.span("anything", circuit="c17"):
    ...     pass
    >>> NULL_TRACER.spans()
    ()
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return NULL_SPAN

    def record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        lane: int | None = None,
        **attrs: Any,
    ) -> None:
        return None

    def spans(self) -> tuple[Span, ...]:
        return ()

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        return None

    def extend(self, spans: Iterable) -> None:
        return None


NULL_TRACER = NullTracer()
