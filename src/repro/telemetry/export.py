"""Exporters: Chrome trace events, JSON summaries, human tables.

The Chrome trace-event format (``B``/``E`` duration pairs with ``ts``
in microseconds plus ``pid``/``tid``) is what ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ open directly; a merged campaign
trace shows every worker process as its own track.  The other exporters
are self-contained: :func:`aggregate_spans` computes per-name totals and
self-times, :func:`json_summary` bundles spans + metrics for archiving,
and :func:`format_report` renders the terminal table behind the
campaign CLI's ``--metrics`` flag.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.tracer import Span


def _as_spans(spans: Iterable[Span | Mapping[str, Any]]) -> list[Span]:
    return [
        span if isinstance(span, Span) else Span.from_dict(span)
        for span in spans
    ]


def _depths(spans: Sequence[Span]) -> dict[tuple[int, int], int]:
    """Nesting depth per ``(pid, span_id)`` (orphans count as roots)."""
    by_id = {(span.pid, span.span_id): span for span in spans}
    depths: dict[tuple[int, int], int] = {}

    def depth_of(span: Span) -> int:
        key = (span.pid, span.span_id)
        known = depths.get(key)
        if known is not None:
            return known
        parent = by_id.get((span.pid, span.parent_id))
        value = 0 if parent is None or parent is span else depth_of(parent) + 1
        depths[key] = value
        return value

    for span in spans:
        depth_of(span)
    return depths


def chrome_trace_events(
    spans: Iterable[Span | Mapping[str, Any]]
) -> list[dict[str, Any]]:
    """Sorted ``B``/``E`` trace events for one span collection.

    Timestamps are ``perf_counter_ns`` converted to microseconds, so
    events from different processes of one machine land on one
    consistent timeline.  Ordering is globally monotone in ``ts`` with
    stack-consistent tie-breaking (ends before begins at equal ``ts``;
    parents open before and close after their children), and
    zero-length spans are widened to 1 ns so every ``B`` precedes its
    ``E`` strictly.
    """
    materialized = _as_spans(spans)
    depths = _depths(materialized)
    keyed: list[tuple[tuple, dict[str, Any]]] = []
    for span in materialized:
        depth = depths[(span.pid, span.span_id)]
        start_ns = span.start_ns
        end_ns = max(span.end_ns, start_ns + 1)
        begin = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "B",
            "ts": start_ns / 1e3,
            "pid": span.pid,
            "tid": span.tid,
        }
        if span.attrs:
            begin["args"] = dict(span.attrs)
        end = {
            "name": span.name,
            "ph": "E",
            "ts": end_ns / 1e3,
            "pid": span.pid,
            "tid": span.tid,
        }
        # Sort key: timestamp, then E-before-B on ties, then depth so
        # parents open first and close last within one instant.
        keyed.append(((start_ns, 1, depth), begin))
        keyed.append(((end_ns, 0, -depth), end))
    keyed.sort(key=lambda pair: pair[0])
    return [event for __, event in keyed]


def chrome_trace(
    spans: Iterable[Span | Mapping[str, Any]],
    metadata: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The full JSON-object trace (what Perfetto expects to open)."""
    trace: dict[str, Any] = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = dict(metadata)
    return trace


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span | Mapping[str, Any]],
    metadata: Mapping[str, Any] | None = None,
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(spans, metadata)) + "\n", encoding="utf-8"
    )
    return path


def validate_chrome_trace(trace: Mapping[str, Any] | Sequence) -> list[str]:
    """Schema problems of a trace (empty list = valid).

    Checks the properties the exporter guarantees: every event carries
    ``name``/``ph``/``ts``/``pid``/``tid``, timestamps are globally
    monotone, and per-``(pid, tid)`` the ``B``/``E`` events form
    balanced, name-matched stacks.
    """
    events = (
        trace.get("traceEvents", []) if isinstance(trace, Mapping) else trace
    )
    problems: list[str] = []
    last_ts = float("-inf")
    stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        missing = [
            field
            for field in ("name", "ph", "ts", "pid", "tid")
            if field not in event
        ]
        if missing:
            problems.append(f"event {index} missing fields {missing}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index} has non-numeric ts {ts!r}")
            continue
        if ts < last_ts:
            problems.append(
                f"event {index} ts {ts} < previous ts {last_ts} "
                "(timestamps must be monotone)"
            )
        last_ts = max(last_ts, ts)
        stack = stacks.setdefault((event["pid"], event["tid"]), [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            if not stack:
                problems.append(
                    f"event {index} ends {event['name']!r} on an empty stack"
                )
            elif stack[-1] != event["name"]:
                problems.append(
                    f"event {index} ends {event['name']!r} but "
                    f"{stack[-1]!r} is open"
                )
            else:
                stack.pop()
        else:
            problems.append(
                f"event {index} has unsupported phase {event['ph']!r}"
            )
    for (pid, tid), stack in stacks.items():
        if stack:
            problems.append(
                f"unbalanced stack on pid={pid} tid={tid}: {stack} never end"
            )
    return problems


def aggregate_spans(
    spans: Iterable[Span | Mapping[str, Any]]
) -> dict[str, dict[str, Any]]:
    """Per-name totals: count, total wall, self time (total minus direct
    children), min/max durations — the ``trace_summary`` data model."""
    materialized = _as_spans(spans)
    child_totals: dict[tuple[int, int], int] = {}
    for span in materialized:
        key = (span.pid, span.parent_id)
        child_totals[key] = child_totals.get(key, 0) + span.duration_ns
    totals: dict[str, dict[str, Any]] = {}
    for span in materialized:
        duration = span.duration_ns
        self_ns = max(
            0, duration - child_totals.get((span.pid, span.span_id), 0)
        )
        bucket = totals.get(span.name)
        if bucket is None:
            totals[span.name] = {
                "count": 1,
                "total_s": duration / 1e9,
                "self_s": self_ns / 1e9,
                "min_s": duration / 1e9,
                "max_s": duration / 1e9,
            }
        else:
            bucket["count"] += 1
            bucket["total_s"] += duration / 1e9
            bucket["self_s"] += self_ns / 1e9
            bucket["min_s"] = min(bucket["min_s"], duration / 1e9)
            bucket["max_s"] = max(bucket["max_s"], duration / 1e9)
    return totals


def span_coverage(
    spans: Iterable[Span | Mapping[str, Any]], root_name: str
) -> float:
    """Fraction of ``root_name``'s wall time its direct children cover.

    The acceptance observable for "per-phase totals account for >= 90%
    of wall time": for every span named ``root_name``, sum the durations
    of its direct children and divide by the summed root duration.
    Returns 0.0 when no such root exists.
    """
    materialized = _as_spans(spans)
    roots = {
        (span.pid, span.span_id): span
        for span in materialized
        if span.name == root_name
    }
    if not roots:
        return 0.0
    covered = sum(
        span.duration_ns
        for span in materialized
        if (span.pid, span.parent_id) in roots
    )
    total = sum(span.duration_ns for span in roots.values())
    return covered / total if total > 0 else 0.0


def json_summary(telemetry) -> dict[str, Any]:
    """Metrics snapshot + per-name span aggregates, JSON-ready."""
    return {
        "metrics": telemetry.metrics.snapshot(),
        "spans": aggregate_spans(telemetry.tracer.spans()),
    }


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    return f"{seconds * 1e3:.3f} ms"


def format_report(telemetry) -> str:
    """Human-readable table of spans (by total time) and metrics."""
    lines: list[str] = []
    aggregates = aggregate_spans(telemetry.tracer.spans())
    if aggregates:
        lines.append("spans (by total time):")
        header = f"  {'name':<36} {'count':>6} {'total':>12} {'self':>12}"
        lines.append(header)
        ordered = sorted(
            aggregates.items(), key=lambda item: (-item[1]["total_s"], item[0])
        )
        for name, bucket in ordered:
            lines.append(
                f"  {name:<36} {bucket['count']:>6} "
                f"{_format_seconds(bucket['total_s']):>12} "
                f"{_format_seconds(bucket['self_s']):>12}"
            )
    snapshot = telemetry.metrics.snapshot()
    if snapshot["counters"]:
        lines.append("counters:")
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<48} {snapshot['counters'][name]:>12}")
    if snapshot["gauges"]:
        lines.append("gauges:")
        for name in sorted(snapshot["gauges"]):
            lines.append(f"  {name:<48} {snapshot['gauges'][name]:>12g}")
    if snapshot["timers"]:
        lines.append("timers:")
        for name in sorted(snapshot["timers"]):
            bucket = snapshot["timers"][name]
            lines.append(
                f"  {name:<40} {bucket['count']:>6} x "
                f"{_format_seconds(bucket['total_s']):>12}"
            )
    if not lines:
        return "no telemetry recorded"
    return "\n".join(lines)
