"""Named counters, gauges and timers behind one snapshot/diff API.

The registry standardizes the counters that used to live as ad-hoc
attributes (``AnalysisEngine.structural_sim_runs``, ``CacheStats``,
campaign ``_WORKER_STATS``, matcher dirty-wave tallies, optimizer probe
accounting) under dotted names:

>>> metrics = MetricsRegistry()
>>> metrics.add("engine.cache.hits")
>>> metrics.add("engine.cache.hits", 2)
>>> metrics.gauge("campaign.workers", 4)
>>> metrics.add_time("aserta.analyze", 0.25)
>>> snap = metrics.snapshot()
>>> snap["counters"], snap["gauges"]
({'engine.cache.hits': 3}, {'campaign.workers': 4.0})
>>> snap["timers"]
{'aserta.analyze': {'total_s': 0.25, 'count': 1}}

Snapshots are plain dicts — picklable, JSON-ready — and compose:
``diff(before, after)`` is exact (integer counter arithmetic), and
``merge`` adds a shipped snapshot in, which is how campaign workers'
counters fold into the parent's registry.  Counters are preferred over
gauges for anything workers report, because merging counters is pure
addition regardless of how batches were scheduled.

>>> before = metrics.snapshot()
>>> metrics.add("engine.cache.hits", 4)
>>> MetricsRegistry.diff(before, metrics.snapshot())["counters"]
{'engine.cache.hits': 4}
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping


def _empty_snapshot() -> dict[str, Any]:
    return {"counters": {}, "gauges": {}, "timers": {}}


class _TimerContext:
    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_TimerContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._registry.add_time(
            self._name, time.perf_counter() - self._started
        )
        return False


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and timers."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list] = {}  # name -> [total_s, count]

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` (monotone; workers' merge by sum)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to the latest observed value."""
        with self._lock:
            self._gauges[name] = float(value)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` into timer ``name``."""
        with self._lock:
            bucket = self._timers.get(name)
            if bucket is None:
                self._timers[name] = [float(seconds), int(count)]
            else:
                bucket[0] += float(seconds)
                bucket[1] += int(count)

    def time(self, name: str) -> _TimerContext:
        """``with metrics.time("phase"):`` — a wall-clock timer."""
        return _TimerContext(self, name)

    def snapshot(self) -> dict[str, Any]:
        """Deep-copied, picklable view of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {"total_s": total, "count": count}
                    for name, (total, count) in self._timers.items()
                },
            }

    @staticmethod
    def diff(
        before: Mapping[str, Any], after: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Exact delta between two snapshots (counters/timers subtract;
        gauges keep the ``after`` values)."""
        counters = {}
        for name, value in after.get("counters", {}).items():
            delta = value - before.get("counters", {}).get(name, 0)
            if delta != 0:
                counters[name] = delta
        timers = {}
        for name, bucket in after.get("timers", {}).items():
            prior = before.get("timers", {}).get(
                name, {"total_s": 0.0, "count": 0}
            )
            total = bucket["total_s"] - prior["total_s"]
            count = bucket["count"] - prior["count"]
            if count != 0 or total != 0.0:
                timers[name] = {"total_s": total, "count": count}
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "timers": timers,
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a shipped snapshot (or diff) into this registry."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, bucket in snapshot.get("timers", {}).items():
                mine = self._timers.get(name)
                if mine is None:
                    self._timers[name] = [
                        float(bucket["total_s"]), int(bucket["count"])
                    ]
                else:
                    mine[0] += float(bucket["total_s"])
                    mine[1] += int(bucket["count"])


class _NullTimerContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_TIMER = _NullTimerContext()


class NullMetrics:
    """Same surface as :class:`MetricsRegistry`, no effect.

    >>> NULL_METRICS.add("anything")
    >>> NULL_METRICS.snapshot()
    {'counters': {}, 'gauges': {}, 'timers': {}}
    """

    enabled = False
    __slots__ = ()

    def add(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        return None

    def time(self, name: str) -> _NullTimerContext:
        return _NULL_TIMER

    def snapshot(self) -> dict[str, Any]:
        return _empty_snapshot()

    diff = staticmethod(MetricsRegistry.diff)

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        return None


NULL_METRICS = NullMetrics()
