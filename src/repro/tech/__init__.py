"""Technology substrate: the library's "SPICE substitute".

The paper characterizes gates with HSPICE and 70 nm Berkeley Predictive
Technology Models, stores the results in look-up tables, and has ASERTA
interpolate inside them.  Here the golden data source is an analytical
alpha-power-law / RC gate model (:mod:`repro.tech.mosfet`,
:mod:`repro.tech.gate_electrical`); everything downstream is structured
exactly as in the paper:

* :mod:`repro.tech.lut` — N-dimensional grid tables with multilinear
  interpolation;
* :mod:`repro.tech.table_builder` — samples the analytical model into
  tables for delay, generated glitch width, energies, output ramp and
  input capacitance;
* :mod:`repro.tech.library` — the discrete cell library (sizes, channel
  lengths, VDDs, Vths) SERTOPT assigns from;
* :mod:`repro.tech.glitch` — the paper's Equation 1 attenuation model;
* :mod:`repro.tech.electrical_view` — per-gate loads, delays, ramps and
  generated widths for one circuit + parameter assignment.
"""

from repro.tech.library import CellLibrary, CellParams, ParameterAssignment
from repro.tech.glitch import propagate_width
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.table_builder import TechnologyTables

__all__ = [
    "CellLibrary",
    "CellParams",
    "ParameterAssignment",
    "propagate_width",
    "CircuitElectrical",
    "TechnologyTables",
]
