"""Discrete cell library and per-gate parameter assignments.

SERTOPT optimizes over a *finite* library (paper Section 4): each gate is
assigned a size, a channel length, a VDD and a Vth drawn from small
discrete sets.  :class:`CellLibrary` enumerates the legal combinations;
:class:`ParameterAssignment` binds one choice to every gate of a circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import LibraryError
from repro.tech import constants as k
from repro.tech.mosfet import size_to_width_nm, validate_device


@dataclass(frozen=True, order=True)
class CellParams:
    """One gate's electrical operating point.

    ``size`` is the drive strength relative to the nominal cell
    (size 1 = 100 nm device width), ``length_nm`` the channel length in
    nanometres, ``vdd``/``vth`` the supply and threshold voltages in
    volts.  Values are validated against the device model on
    construction.  Frozen and orderable, so cells can key dicts and
    sort deterministically:

    >>> CellParams()  # the Table-1 nominal operating point
    CellParams(size=1.0, length_nm=70.0, vdd=1.0, vth=0.2)
    >>> CellParams(size=2.0).size
    2.0
    """

    size: float = 1.0
    length_nm: float = k.NOMINAL_LENGTH_NM
    vdd: float = k.NOMINAL_VDD_V
    vth: float = k.NOMINAL_VTH_V

    def __post_init__(self) -> None:
        validate_device(size_to_width_nm(self.size), self.length_nm, self.vdd, self.vth)


#: The Table-1 baseline operating point: size 1, L = 70 nm, 1 V, 0.2 V.
NOMINAL_CELL = CellParams()

#: Channel lengths SERTOPT was allowed to use in the paper's experiments.
PAPER_LENGTHS_NM: tuple[float, ...] = (70.0, 100.0, 150.0, 250.0, 300.0)

#: Supply / threshold voltage menus used across the paper's Table 1.
PAPER_VDDS: tuple[float, ...] = (0.8, 1.0, 1.2)
PAPER_VTHS: tuple[float, ...] = (0.1, 0.2, 0.3)

#: Default size menu (size 1 = 100 nm width; maximum matches baseline max).
DEFAULT_SIZES: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


class CellLibrary:
    """The discrete menu of cells SERTOPT may assign to a gate.

    The library is the cross product of its four axes (``sizes``,
    ``lengths_nm`` in nm, ``vdds``/``vths`` in volts) minus illegal
    combinations (VDD <= Vth).  :meth:`paper_library` reproduces the
    menus of the paper's Table-1 experiments.

    >>> lib = CellLibrary(sizes=(1.0, 2.0), lengths_nm=(70.0,),
    ...                   vdds=(0.8, 1.0), vths=(0.2,))
    >>> len(lib)
    4
    >>> lib.cells_with_vdd_at_least(1.0) == tuple(
    ...     c for c in lib.cells() if c.vdd >= 1.0)
    True
    """

    def __init__(
        self,
        sizes: Iterable[float] = DEFAULT_SIZES,
        lengths_nm: Iterable[float] = PAPER_LENGTHS_NM,
        vdds: Iterable[float] = (k.NOMINAL_VDD_V,),
        vths: Iterable[float] = (k.NOMINAL_VTH_V,),
    ) -> None:
        self.sizes = _sorted_unique("sizes", sizes)
        self.lengths_nm = _sorted_unique("lengths_nm", lengths_nm)
        self.vdds = _sorted_unique("vdds", vdds)
        self.vths = _sorted_unique("vths", vths)
        self._cells: tuple[CellParams, ...] | None = None

    @classmethod
    def paper_library(
        cls,
        vdds: Iterable[float] = PAPER_VDDS,
        vths: Iterable[float] = PAPER_VTHS,
        max_size: float = max(DEFAULT_SIZES),
    ) -> "CellLibrary":
        """The library of the paper's Table 1 experiments."""
        sizes = tuple(s for s in DEFAULT_SIZES if s <= max_size)
        return cls(sizes=sizes, lengths_nm=PAPER_LENGTHS_NM, vdds=vdds, vths=vths)

    @classmethod
    def sizing_only(cls, sizes: Iterable[float] = DEFAULT_SIZES) -> "CellLibrary":
        """Gate-sizing-only library (the paper's fallback when multi-VDD /
        multi-Vth design is infeasible)."""
        return cls(sizes=sizes, lengths_nm=(k.NOMINAL_LENGTH_NM,))

    def cells(self) -> tuple[CellParams, ...]:
        """All legal cells (combinations with VDD > Vth), cached."""
        if self._cells is None:
            combos = []
            for vdd in self.vdds:
                for vth in self.vths:
                    if vdd <= vth:
                        continue
                    for size in self.sizes:
                        for length in self.lengths_nm:
                            combos.append(
                                CellParams(
                                    size=size, length_nm=length, vdd=vdd, vth=vth
                                )
                            )
            if not combos:
                raise LibraryError("library has no legal cells (VDD <= Vth?)")
            self._cells = tuple(combos)
        return self._cells

    def cells_with_vdd_at_least(self, vdd_floor: float) -> tuple[CellParams, ...]:
        """Cells satisfying SERTOPT's no-level-shifter constraint:
        a gate's VDD must be >= every successor's VDD."""
        eligible = tuple(c for c in self.cells() if c.vdd >= vdd_floor - 1e-12)
        if not eligible:
            raise LibraryError(
                f"no library cell has VDD >= {vdd_floor}; add higher-VDD cells"
            )
        return eligible

    def __len__(self) -> int:
        return len(self.cells())

    def __iter__(self) -> Iterator[CellParams]:
        return iter(self.cells())

    def __repr__(self) -> str:
        return (
            f"CellLibrary(sizes={self.sizes}, lengths_nm={self.lengths_nm}, "
            f"vdds={self.vdds}, vths={self.vths})"
        )


def _sorted_unique(name: str, values: Iterable[float]) -> tuple[float, ...]:
    result = tuple(sorted(set(float(v) for v in values)))
    if not result:
        raise LibraryError(f"library axis {name!r} must not be empty")
    if any(v <= 0.0 for v in result):
        raise LibraryError(f"library axis {name!r} must be positive")
    return result


class ParameterAssignment:
    """Maps every gate of a circuit to its :class:`CellParams`.

    Gates without an explicit entry use the ``default`` cell, so a
    freshly-constructed assignment is the uniform nominal design.

    >>> asg = ParameterAssignment()
    >>> asg["any_gate"] == NOMINAL_CELL
    True
    >>> asg.set("g1", CellParams(vdd=1.2))
    >>> asg["g1"].vdd, asg.distinct_vdds()
    (1.2, (1.0, 1.2))
    """

    def __init__(
        self,
        default: CellParams = NOMINAL_CELL,
        overrides: Mapping[str, CellParams] | None = None,
    ) -> None:
        self.default = default
        self._overrides: dict[str, CellParams] = dict(overrides or {})
        #: Monotonic mutation counter; bumped by :meth:`set` so derived
        #: caches (e.g. the matching engine's anchor rows) can detect an
        #: in-place edit without hashing every entry.
        self.version = 0

    def __getitem__(self, gate_name: str) -> CellParams:
        return self._overrides.get(gate_name, self.default)

    def set(self, gate_name: str, params: CellParams) -> None:
        self._overrides[gate_name] = params
        self.version += 1

    def overrides(self) -> dict[str, CellParams]:
        return dict(self._overrides)

    def copy(self) -> "ParameterAssignment":
        return ParameterAssignment(self.default, self._overrides)

    def distinct_vdds(self) -> tuple[float, ...]:
        vdds = {self.default.vdd} | {p.vdd for p in self._overrides.values()}
        return tuple(sorted(vdds))

    def distinct_vths(self) -> tuple[float, ...]:
        vths = {self.default.vth} | {p.vth for p in self._overrides.values()}
        return tuple(sorted(vths))

    def __repr__(self) -> str:
        return (
            f"ParameterAssignment(default={self.default}, "
            f"overrides={len(self._overrides)})"
        )
