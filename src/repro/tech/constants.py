"""Calibration constants for the 70 nm analytical technology model.

These numbers are calibrated to reproduce the magnitudes and, above all,
the *directional* dependences of the paper's 70 nm SPICE data (Figs 1-2):
a minimum-size inverter (size 1 = 100 nm width, L = 70 nm, VDD = 1 V,
Vth = 0.2 V) drives roughly 50 uA, switches in a few tens of ps under
fan-out-of-4-like load, and a 16 fC strike on a lightly-loaded node
produces a glitch of a few hundred ps.
"""

from __future__ import annotations

#: Nominal channel length for the 70 nm node, in nm.
NOMINAL_LENGTH_NM = 70.0

#: Gate width corresponding to ``size = 1``, in nm (paper Section 2).
WIDTH_PER_SIZE_NM = 100.0

#: Nominal supply and threshold voltages used for the Table-1 baseline.
NOMINAL_VDD_V = 1.0
NOMINAL_VTH_V = 0.2

#: Alpha-power-law velocity-saturation exponent.
ALPHA = 1.3

#: Drive-current scale: uA for a device with W/L = 1 at 1 V of overdrive.
CURRENT_SCALE_UA = 35.0

#: Subthreshold slope factor n (I_leak ~ exp(-Vth / (n * v_T))).
SUBTHRESHOLD_N = 1.5

#: Leakage current scale in uA for W/L = 1 at Vth = 0.
LEAKAGE_SCALE_UA = 1.1

#: Gate (input) capacitance per nm of width at nominal length, in fF/nm.
GATE_CAP_PER_NM_FF = 0.0015

#: Drain/diffusion (self) capacitance per nm of width, in fF/nm.
DRAIN_CAP_PER_NM_FF = 0.0009

#: Interconnect capacitance per fan-out branch, in fF.
WIRE_CAP_PER_FANOUT_FF = 0.08

#: Latch input capacitance presented at each primary output, in fF.
LATCH_CAP_FF = 1.2

#: Particle-strike collection time constant added to generated widths, ps.
STRIKE_TAU_PS = 2.0

#: Saturation exponent of the single-event-transient width versus the
#: linear charge-removal time (Q - Qcrit)/I.  Physical SET widths grow
#: sublinearly in deposited charge: the voltage excursion clips at the
#: rails and the recovery tail is exponential, so doubling the charge
#: (or halving the drive) widens the pulse by much less than 2x.  This
#: is also the property that makes the paper's optimization possible at
#: all — a slowed gate's delay grows faster than its generated width,
#: so electrical masking becomes reachable.  Without it, w/d would be
#: drive-invariant and no assignment could ever mask a glitch.
SET_SATURATION_EXPONENT = 0.65

#: Width scale multiplying the saturated charge-removal time, in ps;
#: calibrated so a 16 fC strike on a minimum-size nominal inverter
#: produces a glitch of roughly 180 ps (70 nm scale).
SET_WIDTH_SCALE_PS = 3.55

#: Default injected charge per strike, fC (paper: fixed charge; 16 fC in Fig 1).
DEFAULT_CHARGE_FC = 16.0

#: Default clock period for static-energy accounting, ps.
CLOCK_PERIOD_PS = 1000.0

#: Fraction of the input ramp that adds to effective gate delay.
RAMP_DELAY_FRACTION = 0.2

#: Output ramp as a multiple of the gate's step-input delay.
RAMP_OF_DELAY = 1.6

#: Default input ramp assumed at primary inputs, ps.
PRIMARY_INPUT_RAMP_PS = 20.0
