"""Alpha-power-law MOSFET model: drive current, leakage, capacitances.

This is the device-level layer of the SPICE substitute.  The alpha-power
law (Sakurai-Newton) captures the velocity-saturated dependence of drive
current on gate overdrive that all four of the paper's knobs act
through:

* gate *size* scales width, hence current and capacitance linearly;
* channel *length* divides current and multiplies gate capacitance;
* *VDD* sets the overdrive ``VDD - Vth`` (and the swing to restore);
* *Vth* sets both the overdrive and the subthreshold leakage
  ``exp(-Vth / (n v_T))``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.units import THERMAL_VOLTAGE_V


def validate_device(width_nm: float, length_nm: float, vdd: float, vth: float) -> None:
    """Raise :class:`TechnologyError` on non-physical device parameters."""
    if width_nm <= 0.0:
        raise TechnologyError(f"gate width must be positive, got {width_nm} nm")
    if length_nm <= 0.0:
        raise TechnologyError(f"channel length must be positive, got {length_nm} nm")
    if vdd <= 0.0:
        raise TechnologyError(f"VDD must be positive, got {vdd} V")
    if vth < 0.0:
        raise TechnologyError(f"Vth must be non-negative, got {vth} V")
    if vdd <= vth:
        raise TechnologyError(
            f"VDD ({vdd} V) must exceed Vth ({vth} V) for the gate to switch"
        )


def on_current_ua(width_nm: float, length_nm: float, vdd: float, vth: float) -> float:
    """Saturation drive current in uA: ``K (W/L) (VDD - Vth)^alpha``.

    The power is evaluated through ``np.power`` so this scalar model
    and the batched array model (which applies the same ufunc to whole
    populations) produce *bit-identical* currents — libm's ``pow`` and
    NumPy's vectorized loop disagree by an ulp on some inputs, which
    would otherwise leak into SERTOPT's serial-vs-batched equivalence.
    """
    validate_device(width_nm, length_nm, vdd, vth)
    overdrive = vdd - vth
    return (
        k.CURRENT_SCALE_UA
        * (width_nm / length_nm)
        * float(np.power(overdrive, k.ALPHA))
    )


def leakage_current_ua(width_nm: float, length_nm: float, vth: float) -> float:
    """Subthreshold leakage in uA: ``K_leak (W/L) exp(-Vth / (n v_T))``."""
    if width_nm <= 0.0 or length_nm <= 0.0:
        raise TechnologyError("leakage needs positive width and length")
    if vth < 0.0:
        raise TechnologyError(f"Vth must be non-negative, got {vth} V")
    exponent = -vth / (k.SUBTHRESHOLD_N * THERMAL_VOLTAGE_V)
    return k.LEAKAGE_SCALE_UA * (width_nm / length_nm) * math.exp(exponent)


def gate_capacitance_ff(width_nm: float, length_nm: float) -> float:
    """Input (gate-oxide) capacitance in fF, linear in W and in L."""
    if width_nm <= 0.0 or length_nm <= 0.0:
        raise TechnologyError("capacitance needs positive width and length")
    return k.GATE_CAP_PER_NM_FF * width_nm * (length_nm / k.NOMINAL_LENGTH_NM)


def drain_capacitance_ff(width_nm: float) -> float:
    """Drain/diffusion self-capacitance in fF, linear in W."""
    if width_nm <= 0.0:
        raise TechnologyError("capacitance needs positive width")
    return k.DRAIN_CAP_PER_NM_FF * width_nm


def size_to_width_nm(size: float) -> float:
    """Convert the paper's unitless gate size (1 = 100 nm) to width in nm."""
    if size <= 0.0:
        raise TechnologyError(f"gate size must be positive, got {size}")
    return size * k.WIDTH_PER_SIZE_NM
