"""Gate-level electrical model: delay, ramps, capacitances, energies.

Single-stage CMOS gate model on top of :mod:`repro.tech.mosfet`, with
logical-effort-style corrections for gate type and fan-in (series device
stacks weaken drive; wider input structures add capacitance).  These are
the functions the table builder samples — the "SPICE runs" of this
reproduction — and the transient reference simulator calls directly.
"""

from __future__ import annotations

from repro.circuit.gate import GateType
from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.tech import mosfet
from repro.units import PS_PER_FF_V_PER_UA

#: Version of the continuous gate model (these functions plus the
#: underlying :mod:`repro.tech.mosfet` equations and constants).  The
#: characterization tables are a pure function of (model version,
#: sample grids), and the engine's content-addressed cache keys stacked
#: LUT tensors by both — bump this whenever a change to the electrical
#: equations alters any sampled value, or persistent cache directories
#: would keep serving tensors computed with the old model.
#: Version 2: drive currents evaluate the alpha-power term through
#: ``np.power`` (ulp-level shifts versus libm ``pow``) so the scalar
#: and batched continuous models agree bitwise.
GATE_MODEL_VERSION = 2


def drive_divisor(gtype: GateType, fanin: int) -> float:
    """How much the worst-case input weakens the gate's drive current.

    Series NMOS stacks (NAND-like) and the heavier series PMOS stacks
    (NOR-like) divide the available restoring current; XOR-class gates
    pay for their pass/complementary structure.
    """
    if fanin < 1:
        raise TechnologyError(f"fan-in must be >= 1, got {fanin}")
    if gtype in (GateType.BUF, GateType.NOT):
        return 1.0
    if gtype in (GateType.AND, GateType.NAND):
        return 1.0 + 0.45 * (fanin - 1)
    if gtype in (GateType.OR, GateType.NOR):
        return 1.0 + 0.60 * (fanin - 1)
    if gtype in (GateType.XOR, GateType.XNOR):
        return 1.6 + 0.40 * (fanin - 2)
    raise TechnologyError(f"primary inputs have no drive ({gtype})")


def input_cap_factor(gtype: GateType, fanin: int) -> float:
    """Logical-effort-like multiplier on per-input gate capacitance."""
    if fanin < 1:
        raise TechnologyError(f"fan-in must be >= 1, got {fanin}")
    if gtype in (GateType.BUF, GateType.NOT):
        return 1.0
    if gtype in (GateType.AND, GateType.NAND):
        return (fanin + 2.0) / 3.0
    if gtype in (GateType.OR, GateType.NOR):
        return (2.0 * fanin + 1.0) / 3.0
    if gtype in (GateType.XOR, GateType.XNOR):
        return 2.0
    raise TechnologyError(f"primary inputs have no input capacitance ({gtype})")


def self_cap_factor(gtype: GateType, fanin: int) -> float:
    """Parasitic (drain) capacitance multiplier for the output node."""
    if fanin < 1:
        raise TechnologyError(f"fan-in must be >= 1, got {fanin}")
    base = 1.0 + 0.30 * (fanin - 1)
    if gtype in (GateType.XOR, GateType.XNOR):
        return 1.5 * base
    return base


def transistor_count(gtype: GateType, fanin: int) -> int:
    """Transistors in the static-CMOS realization (for area and leakage)."""
    if gtype in (GateType.BUF, GateType.NOT):
        return 2 * (2 if gtype is GateType.BUF else 1)
    if gtype in (GateType.NAND, GateType.NOR):
        return 2 * fanin
    if gtype in (GateType.AND, GateType.OR):
        return 2 * fanin + 2
    if gtype in (GateType.XOR, GateType.XNOR):
        return 4 * fanin + 2
    raise TechnologyError(f"primary inputs have no transistors ({gtype})")


def drive_current_ua(
    gtype: GateType,
    fanin: int,
    size: float,
    length_nm: float,
    vdd: float,
    vth: float,
) -> float:
    """Restoring/output drive current through the worst-case stack, uA."""
    width = mosfet.size_to_width_nm(size)
    return mosfet.on_current_ua(width, length_nm, vdd, vth) / drive_divisor(
        gtype, fanin
    )


def input_capacitance_ff(
    gtype: GateType, fanin: int, size: float, length_nm: float
) -> float:
    """Capacitance presented by one input pin of the gate, fF."""
    width = mosfet.size_to_width_nm(size)
    return mosfet.gate_capacitance_ff(width, length_nm) * input_cap_factor(
        gtype, fanin
    )


def self_capacitance_ff(
    gtype: GateType, fanin: int, size: float
) -> float:
    """Parasitic capacitance the gate contributes to its own output, fF."""
    width = mosfet.size_to_width_nm(size)
    return mosfet.drain_capacitance_ff(width) * self_cap_factor(gtype, fanin)


def propagation_delay_ps(
    gtype: GateType,
    fanin: int,
    size: float,
    length_nm: float,
    vdd: float,
    vth: float,
    load_ff: float,
    input_ramp_ps: float = 0.0,
) -> float:
    """Gate propagation delay in ps, to the 50% crossing.

    Step-input delay is the time for the drive current to move the
    output node (self + external load) across half the supply, plus a
    fraction of the input ramp (a slow input turns the gate on late).
    """
    if load_ff < 0.0:
        raise TechnologyError(f"load must be >= 0, got {load_ff} fF")
    if input_ramp_ps < 0.0:
        raise TechnologyError(f"input ramp must be >= 0, got {input_ramp_ps} ps")
    current = drive_current_ua(gtype, fanin, size, length_nm, vdd, vth)
    total_cap = self_capacitance_ff(gtype, fanin, size) + load_ff
    step = PS_PER_FF_V_PER_UA * total_cap * vdd / (2.0 * current)
    return step + k.RAMP_DELAY_FRACTION * input_ramp_ps


def output_ramp_ps(
    gtype: GateType,
    fanin: int,
    size: float,
    length_nm: float,
    vdd: float,
    vth: float,
    load_ff: float,
) -> float:
    """Output transition time (ramp) in ps, proportional to step delay."""
    step = propagation_delay_ps(gtype, fanin, size, length_nm, vdd, vth, load_ff)
    return k.RAMP_OF_DELAY * step


def dynamic_energy_fj(
    gtype: GateType, fanin: int, size: float, load_ff: float, vdd: float
) -> float:
    """Energy of one full output transition, fJ (``C V^2``)."""
    if load_ff < 0.0:
        raise TechnologyError(f"load must be >= 0, got {load_ff} fF")
    total_cap = self_capacitance_ff(gtype, fanin, size) + load_ff
    return total_cap * vdd * vdd


def static_power_uw(
    gtype: GateType,
    fanin: int,
    size: float,
    length_nm: float,
    vdd: float,
    vth: float,
) -> float:
    """Leakage power in uW (= uA * V), scaled by the leaking stack count."""
    width = mosfet.size_to_width_nm(size)
    per_stack = mosfet.leakage_current_ua(width, length_nm, vth)
    stacks = max(1.0, transistor_count(gtype, fanin) / 4.0)
    return per_stack * stacks * vdd


def area_units(gtype: GateType, fanin: int, size: float, length_nm: float) -> float:
    """Relative layout area: transistor count x size x (L / L_nominal)."""
    return (
        transistor_count(gtype, fanin)
        * size
        * (length_nm / k.NOMINAL_LENGTH_NM)
    )
