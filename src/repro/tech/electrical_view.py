"""Per-gate electrical state for one circuit + parameter assignment.

:class:`CircuitElectrical` is the shared substrate under ASERTA, the
static timing analyzer, the power model and the transient reference
simulator.  Given a circuit and a :class:`ParameterAssignment` it
computes, in one forward topological pass:

* the capacitive load on every signal (successor input pins + wire,
  plus the latch capacitance at primary outputs),
* input ramps (worst predecessor output ramp) and propagation delays,
* output node capacitances and strike-generated glitch widths,
* per-gate leakage power, switching-energy weights and layout area.

``use_tables=True`` routes every electrical query through the
interpolated :class:`~repro.tech.table_builder.TechnologyTables` (the
paper's ASERTA architecture); ``use_tables=False`` evaluates the
continuous model directly (the "SPICE" reference path).
"""

from __future__ import annotations

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.glitch import generated_width_ps
from repro.tech.library import ParameterAssignment
from repro.tech.table_builder import TechnologyTables, default_tables


class CircuitElectrical:
    """Electrical annotation of a circuit under one parameter assignment."""

    def __init__(
        self,
        circuit: Circuit,
        assignment: ParameterAssignment,
        tables: TechnologyTables | None = None,
        use_tables: bool = True,
        charge_fc: float = k.DEFAULT_CHARGE_FC,
        clock_period_ps: float = k.CLOCK_PERIOD_PS,
    ) -> None:
        if charge_fc < 0.0:
            raise TechnologyError(f"charge must be >= 0, got {charge_fc}")
        if clock_period_ps <= 0.0:
            raise TechnologyError(f"clock period must be > 0, got {clock_period_ps}")
        self.circuit = circuit
        self.assignment = assignment
        self.use_tables = use_tables
        self.tables = tables if tables is not None else default_tables()
        self.charge_fc = charge_fc
        self.clock_period_ps = clock_period_ps

        self.load_ff: dict[str, float] = {}
        self.input_ramp_ps: dict[str, float] = {}
        self.output_ramp_ps: dict[str, float] = {}
        self.delay_ps: dict[str, float] = {}
        self.node_cap_ff: dict[str, float] = {}
        self.generated_width_ps: dict[str, float] = {}
        self.static_power_uw: dict[str, float] = {}
        self.area_units: dict[str, float] = {}
        self._annotate()

    # ------------------------------------------------------------------
    # Annotation passes
    # ------------------------------------------------------------------

    def _input_cap(self, name: str) -> float:
        gate = self.circuit.gate(name)
        params = self.assignment[name]
        if self.use_tables:
            return self.tables.input_cap_ff(gate.gtype, gate.fanin_count, params)
        return ge.input_capacitance_ff(
            gate.gtype, gate.fanin_count, params.size, params.length_nm
        )

    def _compute_load(self, name: str) -> float:
        fanouts = self.circuit.fanouts(name)
        load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
        for successor in fanouts:
            load += self._input_cap(successor)
        if self.circuit.is_output(name):
            load += k.LATCH_CAP_FF
        return load

    def _annotate(self) -> None:
        circuit = self.circuit
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            self.load_ff[name] = self._compute_load(name)
            if gate.is_input:
                self.output_ramp_ps[name] = k.PRIMARY_INPUT_RAMP_PS
                continue
            params = self.assignment[name]
            gtype, fanin = gate.gtype, gate.fanin_count
            load = self.load_ff[name]
            ramp_in = max(self.output_ramp_ps[f] for f in gate.fanins)
            self.input_ramp_ps[name] = ramp_in

            if self.use_tables:
                delay = self.tables.delay_ps(gtype, fanin, params, load, ramp_in)
                out_ramp = self.tables.output_ramp_ps(gtype, fanin, params, load)
                width = self.tables.generated_width_ps(
                    gtype, fanin, params, load, self.charge_fc
                )
                leak = self.tables.static_power_uw(gtype, fanin, params)
            else:
                delay = ge.propagation_delay_ps(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth, load, ramp_in,
                )
                out_ramp = ge.output_ramp_ps(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth, load,
                )
                current = ge.drive_current_ua(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth,
                )
                node_cap = ge.self_capacitance_ff(gtype, fanin, params.size) + load
                width = generated_width_ps(
                    self.charge_fc, node_cap, current, params.vdd
                )
                leak = ge.static_power_uw(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth,
                )
            self.delay_ps[name] = delay
            self.output_ramp_ps[name] = out_ramp
            self.node_cap_ff[name] = (
                ge.self_capacitance_ff(gtype, fanin, params.size) + load
            )
            self.generated_width_ps[name] = width
            self.static_power_uw[name] = leak
            self.area_units[name] = ge.area_units(
                gtype, fanin, params.size, params.length_nm
            )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def gate_size(self, name: str) -> float:
        """The size Z_i used as the strike-cross-section weight (Eq 3)."""
        return self.assignment[name].size

    def total_area(self) -> float:
        """Total layout area in relative units."""
        return sum(self.area_units.values())

    def total_static_power_uw(self) -> float:
        return sum(self.static_power_uw.values())

    def static_energy_fj(self) -> float:
        """Leakage energy over one clock period, fJ."""
        return self.total_static_power_uw() * self.clock_period_ps / 1000.0

    def dynamic_energy_weight_fj(self, name: str) -> float:
        """Energy of one output transition of gate ``name`` (C_node V^2)."""
        params = self.assignment[name]
        return self.node_cap_ff[name] * params.vdd * params.vdd
