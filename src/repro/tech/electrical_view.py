"""Per-gate electrical state for one circuit + parameter assignment.

:class:`CircuitElectrical` is the shared substrate under ASERTA, the
static timing analyzer, the power model and the transient reference
simulator.  Given a circuit and a :class:`ParameterAssignment` it
computes, in one forward topological pass:

* the capacitive load on every signal (successor input pins + wire,
  plus the latch capacitance at primary outputs),
* input ramps (worst predecessor output ramp) and propagation delays,
* output node capacitances and strike-generated glitch widths,
* per-gate leakage power, switching-energy weights and layout area.

``use_tables=True`` routes every electrical query through the
interpolated :class:`~repro.tech.table_builder.TechnologyTables` (the
paper's ASERTA architecture); ``use_tables=False`` evaluates the
continuous model directly (the "SPICE" reference path).

The table path runs *vectorized* by default: per-axis grid brackets are
computed once for the whole gate population
(:func:`repro.tech.lut.bracket_queries`), gates carry a table id from
the circuit's :class:`~repro.circuit.indexed.IndexedCircuit` grouping,
and each table *kind* resolves in a single gather through the stacked
value tensor (:meth:`TechnologyTables.stacked_values` +
:func:`repro.tech.lut.stacked_lookup`), with loads and ramps reduced
over the CSR adjacency arrays.  ``vectorized=False`` keeps the original
per-gate loop — the reference against which the array path is
differential-tested and benchmarked.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.glitch import generated_width_ps
from repro.tech.library import ParameterAssignment
from repro.tech.lut import bracket_queries, stacked_lookup
from repro.tech.table_builder import TechnologyTables, default_tables
from repro.units import PS_PER_FF_V_PER_UA


def cell_param_arrays(
    indexed, assignment: ParameterAssignment
) -> dict[str, np.ndarray]:
    """Dense per-row ``size`` / ``length_nm`` / ``vdd`` / ``vth`` arrays
    for one assignment over an :class:`IndexedCircuit`.

    The single place the default-fill-plus-override-scatter semantics
    live (overrides naming unknown signals are ignored; dtype is pinned
    to float64 so int-valued ``CellParams`` cannot truncate float
    overrides); both the electrical annotation and the analyzer's Eq-3
    size weights read it.
    """
    n = indexed.n_signals
    default = assignment.default
    arrays = {
        "size": np.full(n, default.size, dtype=np.float64),
        "length_nm": np.full(n, default.length_nm, dtype=np.float64),
        "vdd": np.full(n, default.vdd, dtype=np.float64),
        "vth": np.full(n, default.vth, dtype=np.float64),
    }
    for name, cell in assignment.overrides().items():
        row = indexed.index.get(name)
        if row is None:
            continue
        arrays["size"][row] = cell.size
        arrays["length_nm"][row] = cell.length_nm
        arrays["vdd"][row] = cell.vdd
        arrays["vth"][row] = cell.vth
    return arrays


def stack_cell_param_arrays(
    indexed, assignments
) -> dict[str, np.ndarray]:
    """``(B, V)`` parameter arrays for a sequence of assignments —
    :func:`cell_param_arrays` stacked along a leading candidate axis."""
    per = [cell_param_arrays(indexed, a) for a in assignments]
    if not per:
        raise TechnologyError("need at least one assignment to stack")
    return {
        field: np.stack([p[field] for p in per])
        for field in ("size", "length_nm", "vdd", "vth")
    }


def _population_loads(indexed, input_cap: np.ndarray) -> np.ndarray:
    """``(B, V)`` capacitive loads from per-row input-pin capacitances.

    The bit-identity-critical accumulation both batched annotations
    share: wire capacitance per fan-out branch, successor pins summed
    in CSR edge order (``np.add.at`` — the scalar walks' sequential
    order), then the latch capacitance at primary outputs.
    """
    fanout_counts = np.diff(indexed.fanout_ptr)
    base_load = k.WIRE_CAP_PER_FANOUT_FF * np.maximum(
        1, fanout_counts
    ).astype(np.float64)
    load = np.tile(base_load, (input_cap.shape[0], 1))
    # Unique-source slots replay np.add.at's per-source CSR accumulation
    # order (successor caps add in fan-out declaration order) with plain
    # fancy-index adds — same bits, far fewer scatter passes.
    for srcs, dsts in indexed.fanout_slot_plan():
        load[:, srcs] += input_cap[:, dsts]
    load[:, indexed.is_output] += k.LATCH_CAP_FF
    return load


def _population_input_ramps(indexed, out_ramp: np.ndarray) -> np.ndarray:
    """``(B, V)`` worst-predecessor input ramps (CSR max; exact)."""
    ramp_in = np.zeros(out_ramp.shape)
    has_fanins = np.diff(indexed.fanin_ptr) > 0
    if has_fanins.any():
        ramp_in[:, has_fanins] = np.maximum.reduceat(
            out_ramp[:, indexed.fanin_src],
            indexed.fanin_ptr[:-1][has_fanins],
            axis=1,
        )
    return ramp_in


def batched_electrical_arrays(
    circuit: Circuit,
    tables: TechnologyTables,
    params: dict[str, np.ndarray],
    charge_fc: float = k.DEFAULT_CHARGE_FC,
) -> dict[str, np.ndarray]:
    """The vectorized table-path annotation for a *population* of
    parameter assignments in one pass.

    ``params`` carries ``(B, V)`` ``size``/``length_nm``/``vdd``/``vth``
    arrays over ``circuit.indexed()`` rows (see
    :func:`stack_cell_param_arrays`); the result maps every field of
    :meth:`CircuitElectrical.arrays` to a ``(B, V)`` array.  Each lane
    runs exactly the operations of the single-assignment
    ``_annotate_arrays`` pass (same gathers, same CSR accumulation
    order), so lane ``b`` is bit-identical to annotating assignment
    ``b`` alone — the property the batched SERTOPT objective's
    equivalence contract rests on.
    """
    idx = circuit.indexed()
    if not idx.group_pairs:
        raise TechnologyError(
            "batched annotation needs at least one logic gate; use the "
            "scalar path for feed-through circuits"
        )
    size = np.asarray(params["size"], dtype=np.float64)
    length = np.asarray(params["length_nm"], dtype=np.float64)
    vdd = np.asarray(params["vdd"], dtype=np.float64)
    vth = np.asarray(params["vth"], dtype=np.float64)
    if size.ndim != 2 or size.shape[1] != idx.n_signals:
        raise TechnologyError(
            f"expected (B, {idx.n_signals}) parameter arrays, got {size.shape}"
        )
    n_lanes, n = size.shape
    rows = idx.gate_rows
    gid = np.broadcast_to(idx.group_id[rows], (n_lanes, rows.size))
    pairs = idx.group_pairs

    br_size = bracket_queries(tables.sizes, size[:, rows], "size")
    br_length = bracket_queries(tables.lengths_nm, length[:, rows], "length")
    br_vdd = bracket_queries(tables.vdds, vdd[:, rows], "vdd")
    br_vth = bracket_queries(tables.vths, vth[:, rows], "vth")
    cell_br = [br_size, br_length, br_vdd, br_vth]

    input_cap = np.zeros((n_lanes, n))
    input_cap[:, rows] = stacked_lookup(
        tables.stacked_values("input_cap", pairs), gid, [br_size, br_length]
    )
    load = _population_loads(idx, input_cap)
    br_load = bracket_queries(tables.loads_ff, load[:, rows], "load")

    out_ramp = np.full((n_lanes, n), k.PRIMARY_INPUT_RAMP_PS)
    out_ramp[:, rows] = stacked_lookup(
        tables.stacked_values("ramp", pairs), gid, cell_br + [br_load]
    )
    ramp_in = _population_input_ramps(idx, out_ramp)
    br_ramp = bracket_queries(tables.ramps_ps, ramp_in[:, rows], "ramp")
    br_charge = bracket_queries(
        tables.charges_fc, np.float64(charge_fc), "charge"
    )

    delay = np.zeros((n_lanes, n))
    delay[:, rows] = stacked_lookup(
        tables.stacked_values("delay", pairs), gid, cell_br + [br_load, br_ramp]
    )
    width = np.zeros((n_lanes, n))
    width[:, rows] = stacked_lookup(
        tables.stacked_values("glitch", pairs), gid,
        cell_br + [br_load, br_charge],
    )
    leak = np.zeros((n_lanes, n))
    leak[:, rows] = stacked_lookup(
        tables.stacked_values("static_power", pairs), gid, cell_br
    )

    node_cap = np.zeros((n_lanes, n))
    area = np.zeros((n_lanes, n))
    self_cap_factors = np.array(
        [ge.self_cap_factor(gtype, fanin) for gtype, fanin in pairs]
    )
    transistor_counts = np.array(
        [float(ge.transistor_count(gtype, fanin)) for gtype, fanin in pairs]
    )
    gid_rows = idx.group_id[rows]
    width_nm = size[:, rows] * k.WIDTH_PER_SIZE_NM
    node_cap[:, rows] = (
        k.DRAIN_CAP_PER_NM_FF * width_nm * self_cap_factors[gid_rows]
        + load[:, rows]
    )
    area[:, rows] = (
        transistor_counts[gid_rows]
        * size[:, rows]
        * (length[:, rows] / k.NOMINAL_LENGTH_NM)
    )

    return {
        "load_ff": load,
        "input_ramp_ps": ramp_in,
        "output_ramp_ps": out_ramp,
        "delay_ps": delay,
        "node_cap_ff": node_cap,
        "generated_width_ps": width,
        "static_power_uw": leak,
        "area_units": area,
        "size": size,
        "length_nm": length,
        "vdd": vdd,
        "vth": vth,
    }


def continuous_delay_arrays(
    circuit: Circuit, params: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Per-gate delays of the continuous ("SPICE") model for a
    population of assignments: ``(B, V)`` ``delay_ps`` (and the load /
    ramp intermediates) mirroring the ``use_tables=False`` scalar
    annotation operation for operation.

    This is the realized-delay view SERTOPT's timing repair consults;
    lane ``b`` reproduces
    ``CircuitElectrical(circuit, assignment_b, use_tables=False).delay_ps``
    bitwise (same formulas, same accumulation order), which keeps the
    batched repair decisions identical to the serial path's.
    """
    idx = circuit.indexed()
    size = np.asarray(params["size"], dtype=np.float64)
    length = np.asarray(params["length_nm"], dtype=np.float64)
    vdd = np.asarray(params["vdd"], dtype=np.float64)
    vth = np.asarray(params["vth"], dtype=np.float64)
    n_lanes, n = size.shape
    rows = idx.gate_rows
    pairs = idx.group_pairs
    gid_rows = idx.group_id[rows]
    icf = np.array([ge.input_cap_factor(g, f) for g, f in pairs])
    scf = np.array([ge.self_cap_factor(g, f) for g, f in pairs])
    div = np.array([ge.drive_divisor(g, f) for g, f in pairs])

    width_nm = size[:, rows] * k.WIDTH_PER_SIZE_NM
    input_cap = np.zeros((n_lanes, n))
    input_cap[:, rows] = (
        k.GATE_CAP_PER_NM_FF
        * width_nm
        * (length[:, rows] / k.NOMINAL_LENGTH_NM)
        * icf[gid_rows]
    )
    load = _population_loads(idx, input_cap)

    current = (
        k.CURRENT_SCALE_UA
        * (width_nm / length[:, rows])
        * (vdd[:, rows] - vth[:, rows]) ** k.ALPHA
        / div[gid_rows]
    )
    self_cap = k.DRAIN_CAP_PER_NM_FF * width_nm * scf[gid_rows]
    total_cap = self_cap + load[:, rows]
    step = (
        PS_PER_FF_V_PER_UA * total_cap * vdd[:, rows] / (2.0 * current)
    )
    out_ramp = np.full((n_lanes, n), k.PRIMARY_INPUT_RAMP_PS)
    out_ramp[:, rows] = k.RAMP_OF_DELAY * step
    ramp_in = _population_input_ramps(idx, out_ramp)
    delay = np.zeros((n_lanes, n))
    delay[:, rows] = step + k.RAMP_DELAY_FRACTION * ramp_in[:, rows]
    return {
        "delay_ps": delay,
        "load_ff": load,
        "input_ramp_ps": ramp_in,
        "output_ramp_ps": out_ramp,
    }


class CircuitElectrical:
    """Electrical annotation of a circuit under one parameter assignment."""

    def __init__(
        self,
        circuit: Circuit,
        assignment: ParameterAssignment,
        tables: TechnologyTables | None = None,
        use_tables: bool = True,
        charge_fc: float = k.DEFAULT_CHARGE_FC,
        clock_period_ps: float = k.CLOCK_PERIOD_PS,
        vectorized: bool | None = None,
    ) -> None:
        if charge_fc < 0.0:
            raise TechnologyError(f"charge must be >= 0, got {charge_fc}")
        if clock_period_ps <= 0.0:
            raise TechnologyError(f"clock period must be > 0, got {clock_period_ps}")
        self.circuit = circuit
        self.assignment = assignment
        self.use_tables = use_tables
        self.tables = tables if tables is not None else default_tables()
        self.charge_fc = charge_fc
        self.clock_period_ps = clock_period_ps
        # The continuous ("SPICE") model is scalar code; only the table
        # path has an array implementation.
        self.vectorized = use_tables if vectorized is None else (
            vectorized and use_tables
        )

        #: Name-keyed views, materialized lazily by the property
        #: accessors (the vectorized path never builds them unless a
        #: dict-reading caller asks; the scalar path fills them as it
        #: annotates).
        self._views: dict[str, dict[str, float]] = {}

        #: Dense per-row arrays over ``circuit.indexed()`` (the array
        #: analysis path); populated by the vectorized annotation, built
        #: on demand otherwise.
        self._arrays: dict[str, np.ndarray] | None = None

        if self.vectorized:
            self._annotate_arrays()
        else:
            self._annotate()

    # ------------------------------------------------------------------
    # Lazy name-keyed views
    # ------------------------------------------------------------------
    #
    # Eight dict views used to be materialized eagerly on every
    # construction — an ~8·V Python loop per analyze() call that the
    # array analysis path never reads.  They are now built on first
    # access from the dense arrays (the ElectricalMaskingResult
    # pattern); the scalar reference path obtains the same dicts empty
    # and fills them during annotation, so its attribute writes are
    # unchanged in behaviour.

    def _view(self, field: str, gates_only: bool) -> dict[str, float]:
        view = self._views.get(field)
        if view is None:
            if self._arrays is not None and field in self._arrays:
                idx = self.circuit.indexed()
                values = self._arrays[field]
                order = idx.order
                rows = idx.gate_rows if gates_only else range(idx.n_signals)
                view = {order[row]: float(values[row]) for row in rows}
            else:
                view = {}
            self._views[field] = view
        return view

    @property
    def load_ff(self) -> dict[str, float]:
        return self._view("load_ff", gates_only=False)

    @property
    def input_ramp_ps(self) -> dict[str, float]:
        return self._view("input_ramp_ps", gates_only=True)

    @property
    def output_ramp_ps(self) -> dict[str, float]:
        return self._view("output_ramp_ps", gates_only=False)

    @property
    def delay_ps(self) -> dict[str, float]:
        return self._view("delay_ps", gates_only=True)

    @property
    def node_cap_ff(self) -> dict[str, float]:
        return self._view("node_cap_ff", gates_only=True)

    @property
    def generated_width_ps(self) -> dict[str, float]:
        return self._view("generated_width_ps", gates_only=True)

    @property
    def static_power_uw(self) -> dict[str, float]:
        return self._view("static_power_uw", gates_only=True)

    @property
    def area_units(self) -> dict[str, float]:
        return self._view("area_units", gates_only=True)

    # ------------------------------------------------------------------
    # Scalar annotation (the reference path)
    # ------------------------------------------------------------------

    def _input_cap(self, name: str) -> float:
        gate = self.circuit.gate(name)
        params = self.assignment[name]
        if self.use_tables:
            return self.tables.input_cap_ff(gate.gtype, gate.fanin_count, params)
        return ge.input_capacitance_ff(
            gate.gtype, gate.fanin_count, params.size, params.length_nm
        )

    def _compute_load(self, name: str) -> float:
        fanouts = self.circuit.fanouts(name)
        load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
        for successor in fanouts:
            load += self._input_cap(successor)
        if self.circuit.is_output(name):
            load += k.LATCH_CAP_FF
        return load

    def _annotate(self) -> None:
        circuit = self.circuit
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            self.load_ff[name] = self._compute_load(name)
            if gate.is_input:
                self.output_ramp_ps[name] = k.PRIMARY_INPUT_RAMP_PS
                continue
            params = self.assignment[name]
            gtype, fanin = gate.gtype, gate.fanin_count
            load = self.load_ff[name]
            ramp_in = max(self.output_ramp_ps[f] for f in gate.fanins)
            self.input_ramp_ps[name] = ramp_in

            if self.use_tables:
                delay = self.tables.delay_ps(gtype, fanin, params, load, ramp_in)
                out_ramp = self.tables.output_ramp_ps(gtype, fanin, params, load)
                width = self.tables.generated_width_ps(
                    gtype, fanin, params, load, self.charge_fc
                )
                leak = self.tables.static_power_uw(gtype, fanin, params)
            else:
                delay = ge.propagation_delay_ps(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth, load, ramp_in,
                )
                out_ramp = ge.output_ramp_ps(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth, load,
                )
                current = ge.drive_current_ua(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth,
                )
                node_cap = ge.self_capacitance_ff(gtype, fanin, params.size) + load
                width = generated_width_ps(
                    self.charge_fc, node_cap, current, params.vdd
                )
                leak = ge.static_power_uw(
                    gtype, fanin, params.size, params.length_nm,
                    params.vdd, params.vth,
                )
            self.delay_ps[name] = delay
            self.output_ramp_ps[name] = out_ramp
            self.node_cap_ff[name] = (
                ge.self_capacitance_ff(gtype, fanin, params.size) + load
            )
            self.generated_width_ps[name] = width
            self.static_power_uw[name] = leak
            self.area_units[name] = ge.area_units(
                gtype, fanin, params.size, params.length_nm
            )

    # ------------------------------------------------------------------
    # Array annotation (the vectorized table path)
    # ------------------------------------------------------------------

    def _annotate_arrays(self) -> None:
        idx = self.circuit.indexed()
        if not idx.group_pairs:
            # Gate-less (pure feed-through) circuit: nothing to batch,
            # and np.stack of zero tables is an error — the scalar loop
            # handles it directly.
            self._annotate()
            return
        n = idx.n_signals
        assignment = self.assignment
        tables = self.tables
        rows = idx.gate_rows
        gid = idx.group_id[rows]
        pairs = idx.group_pairs

        # Per-row cell parameters (defaults on input rows are unused).
        params = cell_param_arrays(idx, assignment)
        size = params["size"]
        length = params["length_nm"]
        vdd = params["vdd"]
        vth = params["vth"]

        # Axis brackets are shared by every table kind (all kinds sample
        # the same grids), so each is computed once for the whole gate
        # population; each kind is then a single stacked gather.
        br_size = bracket_queries(tables.sizes, size[rows], "size")
        br_length = bracket_queries(tables.lengths_nm, length[rows], "length")
        br_vdd = bracket_queries(tables.vdds, vdd[rows], "vdd")
        br_vth = bracket_queries(tables.vths, vth[rows], "vth")
        cell_br = [br_size, br_length, br_vdd, br_vth]

        # Input-pin capacitance, then load: wire + successor pins (CSR
        # sum, same edge order as the scalar loop) + latch capacitance.
        input_cap = np.zeros(n)
        input_cap[rows] = stacked_lookup(
            tables.stacked_values("input_cap", pairs), gid, [br_size, br_length]
        )
        fanout_counts = np.diff(idx.fanout_ptr)
        load = k.WIRE_CAP_PER_FANOUT_FF * np.maximum(1, fanout_counts).astype(
            np.float64
        )
        for srcs, dsts in idx.fanout_slot_plan():
            load[srcs] += input_cap[dsts]
        load[idx.is_output] += k.LATCH_CAP_FF
        br_load = bracket_queries(tables.loads_ff, load[rows], "load")

        # Output ramps depend only on the cell and its load, so the whole
        # circuit resolves in one pass; input ramps are then a CSR max.
        out_ramp = np.full(n, k.PRIMARY_INPUT_RAMP_PS)
        out_ramp[rows] = stacked_lookup(
            tables.stacked_values("ramp", pairs), gid, cell_br + [br_load]
        )
        # CSR max over fan-ins: reduceat runs only at the starts of
        # non-empty segments (consecutive starts are then strictly
        # increasing and in range), so zero-fanin rows anywhere in the
        # order neither crash nor truncate a neighbouring segment.
        ramp_in = np.zeros(n)
        has_fanins = np.diff(idx.fanin_ptr) > 0
        if has_fanins.any():
            ramp_in[has_fanins] = np.maximum.reduceat(
                out_ramp[idx.fanin_src], idx.fanin_ptr[:-1][has_fanins]
            )
        br_ramp = bracket_queries(tables.ramps_ps, ramp_in[rows], "ramp")
        br_charge = bracket_queries(
            tables.charges_fc, np.float64(self.charge_fc), "charge"
        )

        delay = np.zeros(n)
        delay[rows] = stacked_lookup(
            tables.stacked_values("delay", pairs), gid,
            cell_br + [br_load, br_ramp],
        )
        width = np.zeros(n)
        width[rows] = stacked_lookup(
            tables.stacked_values("glitch", pairs), gid,
            cell_br + [br_load, br_charge],
        )
        leak = np.zeros(n)
        leak[rows] = stacked_lookup(
            tables.stacked_values("static_power", pairs), gid, cell_br
        )

        # Node capacitance and area follow the same arithmetic sequence
        # as ge.self_capacitance_ff / ge.area_units, per population.
        node_cap = np.zeros(n)
        area = np.zeros(n)
        self_cap_factors = np.array(
            [ge.self_cap_factor(gtype, fanin) for gtype, fanin in pairs]
        )
        transistor_counts = np.array(
            [float(ge.transistor_count(gtype, fanin)) for gtype, fanin in pairs]
        )
        width_nm = size[rows] * k.WIDTH_PER_SIZE_NM
        node_cap[rows] = (
            k.DRAIN_CAP_PER_NM_FF * width_nm * self_cap_factors[gid]
            + load[rows]
        )
        area[rows] = (
            transistor_counts[gid]
            * size[rows]
            * (length[rows] / k.NOMINAL_LENGTH_NM)
        )

        self._arrays = {
            "load_ff": load,
            "input_ramp_ps": ramp_in,
            "output_ramp_ps": out_ramp,
            "delay_ps": delay,
            "node_cap_ff": node_cap,
            "generated_width_ps": width,
            "static_power_uw": leak,
            "area_units": area,
            # The scattered cell parameters, so array consumers (the
            # analyzer's Eq-3 size weights) don't rebuild them.
            "size": size,
            "length_nm": length,
            "vdd": vdd,
            "vth": vth,
        }

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------

    def native_arrays(self) -> dict[str, np.ndarray] | None:
        """The dense arrays if already available, without building them.

        Non-``None`` whenever the vectorized annotation ran (or a
        caller already paid for :meth:`arrays`); consumers like
        ``default_sample_widths`` use it to stay on the array path
        without forcing a gather on the scalar reference path.
        """
        return self._arrays

    def arrays(self) -> dict[str, np.ndarray]:
        """Dense per-row views over ``circuit.indexed()``.

        Populated natively by the vectorized annotation; gathered from
        the dicts (and cached) when the scalar reference or continuous
        model produced them.
        """
        if self._arrays is None:
            idx = self.circuit.indexed()
            self._arrays = {
                "load_ff": idx.gather(self.load_ff),
                "input_ramp_ps": idx.gather(self.input_ramp_ps),
                "output_ramp_ps": idx.gather(self.output_ramp_ps),
                "delay_ps": idx.gather(self.delay_ps),
                "node_cap_ff": idx.gather(self.node_cap_ff),
                "generated_width_ps": idx.gather(self.generated_width_ps),
                "static_power_uw": idx.gather(self.static_power_uw),
                "area_units": idx.gather(self.area_units),
            }
        return self._arrays

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def gate_size(self, name: str) -> float:
        """The size Z_i used as the strike-cross-section weight (Eq 3)."""
        return self.assignment[name].size

    def total_area(self) -> float:
        """Total layout area in relative units."""
        if self._arrays is not None and "area_units" in self._arrays:
            return float(self._arrays["area_units"].sum())
        return sum(self.area_units.values())

    def total_static_power_uw(self) -> float:
        if self._arrays is not None and "static_power_uw" in self._arrays:
            return float(self._arrays["static_power_uw"].sum())
        return sum(self.static_power_uw.values())

    def static_energy_fj(self) -> float:
        """Leakage energy over one clock period, fJ."""
        return self.total_static_power_uw() * self.clock_period_ps / 1000.0

    def dynamic_energy_weight_fj(self, name: str) -> float:
        """Energy of one output transition of gate ``name`` (C_node V^2)."""
        params = self.assignment[name]
        return self.node_cap_ff[name] * params.vdd * params.vdd
