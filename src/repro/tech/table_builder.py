"""Builds the paper's SPICE look-up tables from the analytical gate model.

ASERTA's inputs are tables "for delays, static energies, dynamic
energies, output ramp and gate input capacitances for different types of
gates, fan-ins, sizes, channel lengths, VDDs, Vths, input ramps and load
capacitances", plus a generated-glitch-width table (Section 3).  The
paper fixes one injected charge and defers a charge axis to future work;
this implementation includes the charge axis (exercised by the ABL-Q
extension experiment) while defaulting to the fixed 16 fC the paper uses.

Tables are built lazily per ``(gate type, fan-in)`` and cached.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.circuit.gate import GateType
from repro.errors import TableError
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.glitch import generated_width_ps
from repro.tech.library import CellParams
from repro.tech.lut import GridTable

DEFAULT_SIZE_GRID: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0)
DEFAULT_LENGTH_GRID: tuple[float, ...] = (70.0, 100.0, 150.0, 250.0, 300.0)
DEFAULT_VDD_GRID: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2)
DEFAULT_VTH_GRID: tuple[float, ...] = (0.1, 0.2, 0.3, 0.35)
DEFAULT_LOAD_GRID: tuple[float, ...] = (0.1, 0.3, 0.8, 2.0, 5.0, 12.0, 30.0, 80.0)
DEFAULT_RAMP_GRID: tuple[float, ...] = (5.0, 20.0, 60.0)
DEFAULT_CHARGE_GRID: tuple[float, ...] = (0.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class TechnologyTables:
    """Lazy cache of interpolated characterization tables.

    ``use_tables=False`` callers (the transient reference simulator)
    bypass this class and evaluate :mod:`repro.tech.gate_electrical`
    directly; the difference between the two paths is precisely the
    interpolation error that the Fig-3 correlation experiment measures.
    """

    def __init__(
        self,
        sizes: Iterable[float] = DEFAULT_SIZE_GRID,
        lengths_nm: Iterable[float] = DEFAULT_LENGTH_GRID,
        vdds: Iterable[float] = DEFAULT_VDD_GRID,
        vths: Iterable[float] = DEFAULT_VTH_GRID,
        loads_ff: Iterable[float] = DEFAULT_LOAD_GRID,
        ramps_ps: Iterable[float] = DEFAULT_RAMP_GRID,
        charges_fc: Iterable[float] = DEFAULT_CHARGE_GRID,
    ) -> None:
        self.sizes = tuple(sizes)
        self.lengths_nm = tuple(lengths_nm)
        self.vdds = tuple(vdds)
        self.vths = tuple(vths)
        self.loads_ff = tuple(loads_ff)
        self.ramps_ps = tuple(ramps_ps)
        self.charges_fc = tuple(charges_fc)
        for axis_name, axis in (
            ("sizes", self.sizes),
            ("lengths_nm", self.lengths_nm),
            ("vdds", self.vdds),
            ("vths", self.vths),
            ("loads_ff", self.loads_ff),
            ("ramps_ps", self.ramps_ps),
            ("charges_fc", self.charges_fc),
        ):
            if len(axis) == 0 or any(b <= a for a, b in zip(axis, axis[1:])):
                raise TableError(f"grid {axis_name!r} must be strictly increasing")
        self._cache: dict[tuple[str, GateType, int], GridTable] = {}
        self._stack_cache: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------

    def _cell_axes(self) -> list[tuple[str, tuple[float, ...]]]:
        return [
            ("size", self.sizes),
            ("length", self.lengths_nm),
            ("vdd", self.vdds),
            ("vth", self.vths),
        ]

    def _get(self, kind: str, gtype: GateType, fanin: int) -> GridTable:
        key = (kind, gtype, fanin)
        table = self._cache.get(key)
        if table is None:
            builder = getattr(self, f"_build_{kind}")
            table = builder(gtype, fanin)
            self._cache[key] = table
        return table

    def stacked_values(
        self, kind: str, pairs: tuple[tuple[GateType, int], ...]
    ) -> np.ndarray:
        """``(len(pairs), *grid_shape)`` value tensor for one table kind.

        Every ``(gate type, fan-in)`` table of a kind samples the same
        grids, so their value arrays stack into one tensor indexable by
        a per-gate table id — the shape
        :func:`~repro.tech.lut.stacked_lookup` consumes.  Cached per
        ``(kind, pairs)``; circuits sharing gate populations share the
        stack.
        """
        key = (kind, pairs)
        stack = self._stack_cache.get(key)
        if stack is None:
            stack = np.stack(
                [self._get(kind, gtype, fanin).values for gtype, fanin in pairs]
            )
            self._stack_cache[key] = stack
        return stack

    def axes_digest(self) -> str:
        """Stable content hash of the seven sample grids plus the gate
        model version.

        The table *values* are a pure function of
        :data:`repro.tech.gate_electrical.GATE_MODEL_VERSION` and the
        grids, so together they identify a tensor completely — this is
        the fingerprint the engine's content-addressed artifact cache
        keys stacked tensors by (an edited electrical model bumps the
        version, so a persistent cache can never serve stale tensors).
        """
        import hashlib
        import json

        payload = json.dumps(
            [
                ge.GATE_MODEL_VERSION,
                list(self.sizes),
                list(self.lengths_nm),
                list(self.vdds),
                list(self.vths),
                list(self.loads_ff),
                list(self.ramps_ps),
                list(self.charges_fc),
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def adopt_stack(
        self,
        kind: str,
        pairs: tuple[tuple[GateType, int], ...],
        values: np.ndarray,
    ) -> None:
        """Install a precomputed stacked tensor (cache warm-up).

        Used by :meth:`repro.engine.engine.AnalysisEngine.warm_stacked_tables`
        to seed the per-instance stack cache from the artifact store so
        a warm process never evaluates the characterization grids.  An
        already-present stack is left untouched.
        """
        self._stack_cache.setdefault((kind, pairs), np.asarray(values))

    def _build_delay(self, gtype: GateType, fanin: int) -> GridTable:
        axes = self._cell_axes() + [("load", self.loads_ff), ("ramp", self.ramps_ps)]
        shape = tuple(len(grid) for __, grid in axes)
        values = np.empty(shape)
        for index, point in _grid_points(axes):
            size, length, vdd, vth, load, ramp = point
            if vdd <= vth:
                values[index] = np.inf
                continue
            values[index] = ge.propagation_delay_ps(
                gtype, fanin, size, length, vdd, vth, load, ramp
            )
        return GridTable(axes, values)

    def _build_ramp(self, gtype: GateType, fanin: int) -> GridTable:
        axes = self._cell_axes() + [("load", self.loads_ff)]
        shape = tuple(len(grid) for __, grid in axes)
        values = np.empty(shape)
        for index, point in _grid_points(axes):
            size, length, vdd, vth, load = point
            if vdd <= vth:
                values[index] = np.inf
                continue
            values[index] = ge.output_ramp_ps(gtype, fanin, size, length, vdd, vth, load)
        return GridTable(axes, values)

    def _build_glitch(self, gtype: GateType, fanin: int) -> GridTable:
        axes = self._cell_axes() + [
            ("load", self.loads_ff),
            ("charge", self.charges_fc),
        ]
        shape = tuple(len(grid) for __, grid in axes)
        values = np.empty(shape)
        for index, point in _grid_points(axes):
            size, length, vdd, vth, load, charge = point
            if vdd <= vth:
                values[index] = np.inf
                continue
            node_cap = ge.self_capacitance_ff(gtype, fanin, size) + load
            current = ge.drive_current_ua(gtype, fanin, size, length, vdd, vth)
            values[index] = generated_width_ps(charge, node_cap, current, vdd)
        return GridTable(axes, values)

    def _build_input_cap(self, gtype: GateType, fanin: int) -> GridTable:
        axes = [("size", self.sizes), ("length", self.lengths_nm)]
        values = np.empty((len(self.sizes), len(self.lengths_nm)))
        for i, size in enumerate(self.sizes):
            for j, length in enumerate(self.lengths_nm):
                values[i, j] = ge.input_capacitance_ff(gtype, fanin, size, length)
        return GridTable(axes, values)

    def _build_static_power(self, gtype: GateType, fanin: int) -> GridTable:
        axes = self._cell_axes()
        shape = tuple(len(grid) for __, grid in axes)
        values = np.empty(shape)
        for index, point in _grid_points(axes):
            size, length, vdd, vth = point
            if vdd <= vth:
                values[index] = np.inf
                continue
            values[index] = ge.static_power_uw(gtype, fanin, size, length, vdd, vth)
        return GridTable(axes, values)

    def _build_dynamic_energy(self, gtype: GateType, fanin: int) -> GridTable:
        axes = [("size", self.sizes), ("load", self.loads_ff), ("vdd", self.vdds)]
        values = np.empty((len(self.sizes), len(self.loads_ff), len(self.vdds)))
        for i, size in enumerate(self.sizes):
            for j, load in enumerate(self.loads_ff):
                for m, vdd in enumerate(self.vdds):
                    values[i, j, m] = ge.dynamic_energy_fj(gtype, fanin, size, load, vdd)
        return GridTable(axes, values)

    # ------------------------------------------------------------------
    # Interpolated queries (the ASERTA-facing API)
    # ------------------------------------------------------------------

    def delay_ps(
        self,
        gtype: GateType,
        fanin: int,
        params: CellParams,
        load_ff: float,
        ramp_ps: float,
    ) -> float:
        return self._get("delay", gtype, fanin).lookup(
            size=params.size,
            length=params.length_nm,
            vdd=params.vdd,
            vth=params.vth,
            load=load_ff,
            ramp=ramp_ps,
        )

    def output_ramp_ps(
        self, gtype: GateType, fanin: int, params: CellParams, load_ff: float
    ) -> float:
        return self._get("ramp", gtype, fanin).lookup(
            size=params.size,
            length=params.length_nm,
            vdd=params.vdd,
            vth=params.vth,
            load=load_ff,
        )

    def generated_width_ps(
        self,
        gtype: GateType,
        fanin: int,
        params: CellParams,
        load_ff: float,
        charge_fc: float = k.DEFAULT_CHARGE_FC,
    ) -> float:
        return self._get("glitch", gtype, fanin).lookup(
            size=params.size,
            length=params.length_nm,
            vdd=params.vdd,
            vth=params.vth,
            load=load_ff,
            charge=charge_fc,
        )

    def input_cap_ff(self, gtype: GateType, fanin: int, params: CellParams) -> float:
        return self._get("input_cap", gtype, fanin).lookup(
            size=params.size, length=params.length_nm
        )

    def static_power_uw(
        self, gtype: GateType, fanin: int, params: CellParams
    ) -> float:
        return self._get("static_power", gtype, fanin).lookup(
            size=params.size,
            length=params.length_nm,
            vdd=params.vdd,
            vth=params.vth,
        )

    def dynamic_energy_fj(
        self, gtype: GateType, fanin: int, params: CellParams, load_ff: float
    ) -> float:
        return self._get("dynamic_energy", gtype, fanin).lookup(
            size=params.size, load=load_ff, vdd=params.vdd
        )

    def cached_table_count(self) -> int:
        return len(self._cache)


def _grid_points(axes):
    """Iterate ``(multi_index, coordinate_tuple)`` over a grid."""
    grids = [grid for __, grid in axes]
    shape = tuple(len(grid) for grid in grids)
    indices = (range(n) for n in shape)
    from itertools import product as _product

    for index in _product(*indices):
        yield index, tuple(grids[d][index[d]] for d in range(len(grids)))


_DEFAULT_TABLES: TechnologyTables | None = None


def default_tables() -> TechnologyTables:
    """Process-wide shared table cache (building tables is the expensive
    step; every analysis in one process should reuse one instance)."""
    global _DEFAULT_TABLES
    if _DEFAULT_TABLES is None:
        _DEFAULT_TABLES = TechnologyTables()
    return _DEFAULT_TABLES


def reset_default_tables() -> TechnologyTables | None:
    """Drop the shared table singleton; returns the previous instance.

    The singleton accumulates lazily built :class:`GridTable` objects
    and adopted LUT stacks for the life of the process, so anything
    measuring a *cold* analysis (the campaign throughput benchmark, a
    profiling session) must reset it or the measurement silently rides
    whatever earlier analyses in the same process already paid for.
    Live analyzers holding a reference keep their (warm) instance; only
    the next :func:`default_tables` call builds a fresh one.
    """
    global _DEFAULT_TABLES
    previous = _DEFAULT_TABLES
    _DEFAULT_TABLES = None
    return previous
