"""N-dimensional grid look-up tables with multilinear interpolation.

ASERTA's accuracy argument (paper Section 3) rests on replacing
analytical models with SPICE-characterized look-up tables plus linear
interpolation.  :class:`GridTable` is that structure: rectangular grids
over named axes, values sampled at every grid point, and clamped
multilinear interpolation for arbitrary queries.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

import numpy as np

from repro.errors import TableError


class GridTable:
    """A rectangular interpolated look-up table.

    Parameters
    ----------
    axes:
        Sequence of ``(name, grid_points)`` pairs.  Grid points must be
        strictly increasing 1-D arrays with at least one entry.
    values:
        Array of sampled values whose shape matches the grid sizes in
        axis order.
    """

    def __init__(
        self,
        axes: Sequence[tuple[str, Sequence[float]]],
        values: np.ndarray,
    ) -> None:
        if not axes:
            raise TableError("GridTable needs at least one axis")
        self._names: list[str] = []
        self._grids: list[np.ndarray] = []
        for name, points in axes:
            grid = np.asarray(points, dtype=np.float64)
            if grid.ndim != 1 or grid.size == 0:
                raise TableError(f"axis {name!r} must be a non-empty 1-D grid")
            if np.any(np.diff(grid) <= 0.0):
                raise TableError(f"axis {name!r} must be strictly increasing")
            if name in self._names:
                raise TableError(f"duplicate axis name {name!r}")
            self._names.append(name)
            self._grids.append(grid)
        self._values = np.asarray(values, dtype=np.float64)
        expected = tuple(grid.size for grid in self._grids)
        if self._values.shape != expected:
            raise TableError(
                f"values shape {self._values.shape} does not match grid "
                f"shape {expected}"
            )

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    def axis_grid(self, name: str) -> np.ndarray:
        try:
            return self._grids[self._names.index(name)].copy()
        except ValueError:
            raise TableError(f"no axis named {name!r}") from None

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    def lookup(self, **coords: float) -> float:
        """Clamped multilinear interpolation at the named coordinates.

        Every axis must be given exactly once; coordinates outside the
        grid are clamped to the boundary (the paper's tables are built to
        cover the library's full parameter range, so clamping only
        handles numerical fuzz at the edges).
        """
        missing = [name for name in self._names if name not in coords]
        if missing:
            raise TableError(f"missing coordinates for axes {missing}")
        extra = [name for name in coords if name not in self._names]
        if extra:
            raise TableError(f"unknown axes {extra}; table has {self._names}")

        brackets: list[tuple[int, int, float]] = []
        for name, grid in zip(self._names, self._grids):
            brackets.append(_bracket(grid, float(coords[name]), name))

        total = 0.0
        for corner in product((0, 1), repeat=len(brackets)):
            weight = 1.0
            index: list[int] = []
            for pick, (low, high, fraction) in zip(corner, brackets):
                if pick == 0:
                    weight *= 1.0 - fraction
                    index.append(low)
                else:
                    weight *= fraction
                    index.append(high)
            if weight != 0.0:
                total += weight * float(self._values[tuple(index)])
        return total

    def lookup_many(self, **coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup`: one query per element of the
        coordinate arrays (all broadcast to a common shape).

        A thin convenience wrapper over :func:`stacked_lookup` with a
        single-table stack — the one home of the vectorized
        interpolation (corner gather + axis reduction; fractions of
        exactly 0 or 1 select their corner outright, shielding
        non-finite cells they do not touch).  Hot paths that share
        brackets across several tables compose
        :func:`bracket_queries` + :func:`stacked_lookup` directly; the
        scalar :meth:`lookup` keeps its own independent loop on purpose
        (it is the seed reference the vectorized path is
        differential-tested against), and the test suite pins all of
        them together.
        """
        missing = [name for name in self._names if name not in coords]
        if missing:
            raise TableError(f"missing coordinates for axes {missing}")
        extra = [name for name in coords if name not in self._names]
        if extra:
            raise TableError(f"unknown axes {extra}; table has {self._names}")

        queries = [
            np.asarray(coords[name], dtype=np.float64) for name in self._names
        ]
        shape = np.broadcast_shapes(*(q.shape for q in queries))
        brackets = []
        for name, grid, query in zip(self._names, self._grids, queries):
            low, high, frac = _bracket_array(grid, query, name)
            brackets.append(
                (
                    np.broadcast_to(low, shape),
                    np.broadcast_to(high, shape),
                    np.broadcast_to(frac, shape),
                )
            )
        return stacked_lookup(
            self._values[np.newaxis],
            np.zeros(shape, dtype=np.int64),
            brackets,
        )

    def __repr__(self) -> str:
        shape = "x".join(str(g.size) for g in self._grids)
        return f"GridTable(axes={self._names}, shape={shape})"


def _bracket(grid: np.ndarray, value: float, name: str) -> tuple[int, int, float]:
    """Indices of the two grid points around ``value`` plus the fraction."""
    if np.isnan(value):
        raise TableError(f"coordinate for axis {name!r} is NaN")
    if grid.size == 1:
        return 0, 0, 0.0
    if value <= grid[0]:
        return 0, 0, 0.0
    if value >= grid[-1]:
        last = grid.size - 1
        return last, last, 0.0
    high = int(np.searchsorted(grid, value, side="right"))
    low = high - 1
    span = grid[high] - grid[low]
    return low, high, float((value - grid[low]) / span)


def _bracket_array(
    grid: np.ndarray, values: np.ndarray, name: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_bracket`: per-query bracket indices + fractions,
    clamped to the grid ends exactly like the scalar path."""
    values = np.asarray(values, dtype=np.float64)
    if np.isnan(values).any():
        raise TableError(f"coordinate for axis {name!r} is NaN")
    if grid.size == 1:
        zero_i = np.zeros(values.shape, dtype=np.int64)
        return zero_i, zero_i, np.zeros(values.shape)
    high = np.searchsorted(grid, values, side="right")
    high = np.minimum(np.maximum(high, 1), grid.size - 1)
    low = high - 1
    frac = (values - grid[low]) / (grid[high] - grid[low])
    frac = np.minimum(np.maximum(frac, 0.0), 1.0)
    # Clamped queries collapse to a single grid point (fraction 0), as in
    # the scalar bracket, so out-of-range queries never read a second cell.
    at_top = values >= grid[-1]
    low = np.where(at_top, grid.size - 1, low)
    high = np.where(at_top, grid.size - 1, high)
    frac = np.where(at_top | (values <= grid[0]), 0.0, frac)
    return low, high, frac


def bracket_queries(
    grid: np.ndarray | Sequence[float], values: np.ndarray, name: str = "axis"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Public form of :func:`_bracket_array`, for callers that prepare
    brackets once and reuse them across several stacked lookups."""
    return _bracket_array(np.asarray(grid, dtype=np.float64), values, name)


def bracket_queries_rows(
    grids: np.ndarray, values: np.ndarray, name: str = "axis"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row :func:`bracket_queries`: row ``b`` of ``values`` is
    bracketed against row ``b`` of ``grids``.

    This is the batched form the candidate-population analysis uses —
    every candidate carries its own sample-width grid — and it is
    implemented as one :func:`_bracket_array` call per row, so each row
    is *bit-identical* to the single-grid path by construction.
    """
    grids = np.asarray(grids, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if grids.ndim != 2 or values.shape[0] != grids.shape[0]:
        raise TableError(
            f"bracket_queries_rows needs (B, M) grids and (B, ...) values; "
            f"got {grids.shape} and {values.shape}"
        )
    if np.isnan(values).any():
        raise TableError(f"coordinate for axis {name!r} is NaN")
    if grids.shape[1] == 1:
        zero_i = np.zeros(values.shape, dtype=np.int64)
        return zero_i, zero_i, np.zeros(values.shape)
    # One binary search per row: np.searchsorted(..., side="right")
    # yields the same counts as comparing every value against every
    # grid point, and the clamp/fraction expressions below are those of
    # _bracket_array verbatim — so every row is bit-identical to the
    # single-grid path.  The per-row loop costs B tiny calls, which
    # profiles well under the O(B * N * M) broadcast comparison it
    # replaces (this runs twice per population masking sweep).
    flat = values.reshape(values.shape[0], -1)
    high = np.empty(flat.shape, dtype=np.int64)
    for row in range(grids.shape[0]):
        high[row] = np.searchsorted(grids[row], flat[row], side="right")
    high = np.minimum(np.maximum(high, 1), grids.shape[1] - 1)
    low = high - 1
    row_ar = np.arange(grids.shape[0])[:, np.newaxis]
    grid_low = grids[row_ar, low]
    grid_high = grids[row_ar, high]
    frac = (flat - grid_low) / (grid_high - grid_low)
    frac = np.minimum(np.maximum(frac, 0.0), 1.0)
    at_top = flat >= grids[:, -1:]
    top = grids.shape[1] - 1
    low = np.where(at_top, top, low)
    high = np.where(at_top, top, high)
    frac = np.where(at_top | (flat <= grids[:, :1]), 0.0, frac)
    return (
        low.reshape(values.shape),
        high.reshape(values.shape),
        frac.reshape(values.shape),
    )


def stacked_lookup(
    stack: np.ndarray,
    table_ids: np.ndarray,
    brackets: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Multilinear interpolation through a *stack* of same-shaped tables.

    ``stack`` has shape ``(T, *grid_shape)`` — one table per leading
    index; query ``q`` reads table ``table_ids[q]`` at the per-axis
    ``(low, high, fraction)`` brackets.  The whole corner hypercube is
    gathered with a single fancy index and reduced one axis at a time,
    so a circuit-wide population (one query per gate, each possibly
    hitting a different table) costs a fixed, small number of NumPy
    kernels.  Fractions of exactly 0 or 1 select their corner outright,
    keeping boundary queries immune to non-finite cells they don't touch.
    """
    d = len(brackets)
    n = table_ids.shape
    index: list[np.ndarray] = [table_ids.reshape((1,) * d + n)]
    for axis, (low, high, __) in enumerate(brackets):
        pair = np.stack([low, high])
        # Scalar brackets (one query shared by the population) broadcast
        # across the trailing query dimensions.
        tail = pair.shape[1:] if pair.ndim > 1 else (1,) * len(n)
        shape = (1,) * axis + (2,) + (1,) * (d - axis - 1) + tail
        index.append(pair.reshape(shape))
    corners = stack[tuple(index)]
    with np.errstate(invalid="ignore"):
        for axis in range(d):
            frac = brackets[axis][2]
            low_val, high_val = corners[0], corners[1]
            blend = low_val * (1.0 - frac) + high_val * frac
            corners = np.where(
                frac == 0.0, low_val, np.where(frac == 1.0, high_val, blend)
            )
    return corners


def interp_monotone(
    sample_x: np.ndarray, sample_y: np.ndarray, x: float
) -> float:
    """1-D linear interpolation with boundary clamping.

    Used by ASERTA's electrical-masking pass to interpolate expected
    output widths between the 10 sample glitch widths (Section 3.2).
    """
    xs = np.asarray(sample_x, dtype=np.float64)
    ys = np.asarray(sample_y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size == 0:
        raise TableError("interp_monotone needs matching non-empty 1-D arrays")
    if np.any(np.diff(xs) <= 0.0):
        raise TableError("sample x values must be strictly increasing")
    return float(np.interp(x, xs, ys))
