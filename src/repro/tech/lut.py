"""N-dimensional grid look-up tables with multilinear interpolation.

ASERTA's accuracy argument (paper Section 3) rests on replacing
analytical models with SPICE-characterized look-up tables plus linear
interpolation.  :class:`GridTable` is that structure: rectangular grids
over named axes, values sampled at every grid point, and clamped
multilinear interpolation for arbitrary queries.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

import numpy as np

from repro.errors import TableError


class GridTable:
    """A rectangular interpolated look-up table.

    Parameters
    ----------
    axes:
        Sequence of ``(name, grid_points)`` pairs.  Grid points must be
        strictly increasing 1-D arrays with at least one entry.
    values:
        Array of sampled values whose shape matches the grid sizes in
        axis order.
    """

    def __init__(
        self,
        axes: Sequence[tuple[str, Sequence[float]]],
        values: np.ndarray,
    ) -> None:
        if not axes:
            raise TableError("GridTable needs at least one axis")
        self._names: list[str] = []
        self._grids: list[np.ndarray] = []
        for name, points in axes:
            grid = np.asarray(points, dtype=np.float64)
            if grid.ndim != 1 or grid.size == 0:
                raise TableError(f"axis {name!r} must be a non-empty 1-D grid")
            if np.any(np.diff(grid) <= 0.0):
                raise TableError(f"axis {name!r} must be strictly increasing")
            if name in self._names:
                raise TableError(f"duplicate axis name {name!r}")
            self._names.append(name)
            self._grids.append(grid)
        self._values = np.asarray(values, dtype=np.float64)
        expected = tuple(grid.size for grid in self._grids)
        if self._values.shape != expected:
            raise TableError(
                f"values shape {self._values.shape} does not match grid "
                f"shape {expected}"
            )

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    def axis_grid(self, name: str) -> np.ndarray:
        try:
            return self._grids[self._names.index(name)].copy()
        except ValueError:
            raise TableError(f"no axis named {name!r}") from None

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    def lookup(self, **coords: float) -> float:
        """Clamped multilinear interpolation at the named coordinates.

        Every axis must be given exactly once; coordinates outside the
        grid are clamped to the boundary (the paper's tables are built to
        cover the library's full parameter range, so clamping only
        handles numerical fuzz at the edges).
        """
        missing = [name for name in self._names if name not in coords]
        if missing:
            raise TableError(f"missing coordinates for axes {missing}")
        extra = [name for name in coords if name not in self._names]
        if extra:
            raise TableError(f"unknown axes {extra}; table has {self._names}")

        brackets: list[tuple[int, int, float]] = []
        for name, grid in zip(self._names, self._grids):
            brackets.append(_bracket(grid, float(coords[name]), name))

        total = 0.0
        for corner in product((0, 1), repeat=len(brackets)):
            weight = 1.0
            index: list[int] = []
            for pick, (low, high, fraction) in zip(corner, brackets):
                if pick == 0:
                    weight *= 1.0 - fraction
                    index.append(low)
                else:
                    weight *= fraction
                    index.append(high)
            if weight != 0.0:
                total += weight * float(self._values[tuple(index)])
        return total

    def __repr__(self) -> str:
        shape = "x".join(str(g.size) for g in self._grids)
        return f"GridTable(axes={self._names}, shape={shape})"


def _bracket(grid: np.ndarray, value: float, name: str) -> tuple[int, int, float]:
    """Indices of the two grid points around ``value`` plus the fraction."""
    if np.isnan(value):
        raise TableError(f"coordinate for axis {name!r} is NaN")
    if grid.size == 1:
        return 0, 0, 0.0
    if value <= grid[0]:
        return 0, 0, 0.0
    if value >= grid[-1]:
        last = grid.size - 1
        return last, last, 0.0
    high = int(np.searchsorted(grid, value, side="right"))
    low = high - 1
    span = grid[high] - grid[low]
    return low, high, float((value - grid[low]) / span)


def interp_monotone(
    sample_x: np.ndarray, sample_y: np.ndarray, x: float
) -> float:
    """1-D linear interpolation with boundary clamping.

    Used by ASERTA's electrical-masking pass to interpolate expected
    output widths between the 10 sample glitch widths (Section 3.2).
    """
    xs = np.asarray(sample_x, dtype=np.float64)
    ys = np.asarray(sample_y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size == 0:
        raise TableError("interp_monotone needs matching non-empty 1-D arrays")
    if np.any(np.diff(xs) <= 0.0):
        raise TableError("sample x values must be strictly increasing")
    return float(np.interp(x, xs, ys))
