"""repro — reproduction of "Soft-Error Tolerance Analysis and
Optimization of Nanometer Circuits" (Dhillon, Diril, Chatterjee,
DATE 2005).

Public API
----------
Circuits:
    :class:`~repro.circuit.netlist.Circuit`,
    :func:`~repro.circuit.iscas85.iscas85_circuit`,
    :func:`~repro.circuit.bench_io.parse_bench_file`
Technology:
    :class:`~repro.tech.library.CellLibrary`,
    :class:`~repro.tech.library.CellParams`,
    :class:`~repro.tech.library.ParameterAssignment`,
    :class:`~repro.tech.table_builder.TechnologyTables`
Analysis (ASERTA):
    :class:`~repro.core.aserta.AsertaAnalyzer`,
    :class:`~repro.core.aserta.AsertaConfig`
Optimization (SERTOPT):
    :class:`~repro.core.sertopt.Sertopt`,
    :class:`~repro.core.sertopt.SertoptConfig`,
    :class:`~repro.core.cost.CostWeights`
Campaigns:
    :class:`~repro.campaign.spec.CampaignSpec`,
    :class:`~repro.campaign.runner.CampaignRunner`,
    :class:`~repro.campaign.store.ResultStore`,
    :class:`~repro.campaign.environments.Environment`
    (presets ``SEA_LEVEL``, ``AVIONICS``, ``LEO_SPACE``)
Engine:
    :class:`~repro.engine.engine.AnalysisEngine`,
    :class:`~repro.engine.cache.ArtifactCache`
    (batched structural simulation + content-addressed artifact cache)
Telemetry:
    :class:`~repro.telemetry.Telemetry`,
    :func:`~repro.telemetry.enable_console_logging`
    (spans, metrics, Chrome-trace export — see ``docs/observability.md``)
Reference simulation:
    :class:`~repro.spice.transient.TransientSimulator`

Quickstart
----------
One ASERTA analysis — Equation-4 circuit unreliability plus per-gate
Equation-3 contributions (see ``docs/architecture.md`` for the full
paper-to-module map):

>>> from repro import AsertaAnalyzer, AsertaConfig, iscas85_circuit
>>> analyzer = AsertaAnalyzer(
...     iscas85_circuit("c17"), AsertaConfig(n_vectors=256, seed=1)
... )
>>> report = analyzer.analyze()
>>> report.total > 0.0  # circuit unreliability U, ps
True
>>> [entry.gate for entry in report.unreliability.softest_gates(2)]
['16', '11']
"""

from repro.campaign import (
    AVIONICS,
    ENVIRONMENTS,
    LEO_SPACE,
    SEA_LEVEL,
    CampaignOutcome,
    CampaignRunner,
    CampaignSpec,
    CampaignSummary,
    Environment,
    ResultStore,
    ScenarioKey,
    ScenarioResult,
    environment,
    summarize,
)
from repro.circuit import (
    Circuit,
    Gate,
    GateType,
    IndexedCircuit,
    iscas85_circuit,
    iscas85_names,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.core import (
    AsertaAnalyzer,
    AsertaConfig,
    AsertaReport,
    Sertopt,
    SertoptConfig,
    SertoptResult,
    size_for_speed,
)
from repro.core.cost import CostWeights
from repro.engine import (
    AnalysisEngine,
    ArtifactCache,
    get_default_engine,
    set_default_engine,
)
from repro.tech import (
    CellLibrary,
    CellParams,
    CircuitElectrical,
    ParameterAssignment,
    TechnologyTables,
)
from repro.telemetry import Telemetry, enable_console_logging

# Library logging etiquette: the "repro" logger gets a NullHandler so
# importing the package never configures (or complains about) logging;
# enable_console_logging() attaches a real handler on request.
import logging as _logging

_logging.getLogger("repro").addHandler(_logging.NullHandler())
del _logging

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "IndexedCircuit",
    "iscas85_circuit",
    "iscas85_names",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "AsertaAnalyzer",
    "AsertaConfig",
    "AsertaReport",
    "Sertopt",
    "SertoptConfig",
    "SertoptResult",
    "size_for_speed",
    "CostWeights",
    "CellLibrary",
    "CellParams",
    "CircuitElectrical",
    "ParameterAssignment",
    "TechnologyTables",
    "AnalysisEngine",
    "ArtifactCache",
    "get_default_engine",
    "set_default_engine",
    "AVIONICS",
    "ENVIRONMENTS",
    "LEO_SPACE",
    "SEA_LEVEL",
    "CampaignOutcome",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSummary",
    "Environment",
    "ResultStore",
    "ScenarioKey",
    "ScenarioResult",
    "environment",
    "summarize",
    "Telemetry",
    "enable_console_logging",
    "__version__",
]
