"""Reference-simulation harnesses mirroring the paper's SPICE protocols.

Fig 3 protocol: "In SPICE, the unreliability was computed by applying 50
random input vectors, injecting charge at every gate output i and using
the width of the glitch at primary output j as W_ij in Equation 3."

Table 1 validation protocol: apply the same 50 random vectors to the
baseline and the optimized circuit and compare the average glitch width
at the outputs, once with ASERTA's tables and once with the reference
model.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.circuit.netlist import Circuit
from repro.core.unreliability import (
    GateUnreliability,
    UnreliabilityReport,
)
from repro.errors import SimulationError
from repro.spice.transient import TransientSimulator
from repro.tech import constants as k
from repro.tech.library import ParameterAssignment
from repro.tech.table_builder import TechnologyTables


def random_vectors(
    circuit: Circuit, n_vectors: int, seed: int = 0
) -> list[dict[str, bool]]:
    """Uniform random input assignments (deterministic per seed)."""
    if n_vectors < 1:
        raise SimulationError(f"need at least one vector, got {n_vectors}")
    rng = random.Random(seed)
    return [
        {name: rng.random() < 0.5 for name in circuit.inputs}
        for __ in range(n_vectors)
    ]


def transient_unreliability(
    circuit: Circuit,
    assignment: ParameterAssignment | None = None,
    n_vectors: int = 50,
    seed: int = 0,
    charge_fc: float = k.DEFAULT_CHARGE_FC,
    use_tables: bool = False,
    tables: TechnologyTables | None = None,
    gates: Iterable[str] | None = None,
) -> UnreliabilityReport:
    """Vector-averaged unreliability, Equation 3 with measured widths.

    For every gate ``i`` (or the ``gates`` subset) and every vector, the
    strike is injected and the output glitch widths measured; ``W_ij``
    is the vector average, and ``U_i = Z_i * sum_j W_ij`` as in ASERTA.
    """
    sim = TransientSimulator(
        circuit,
        assignment,
        tables=tables,
        use_tables=use_tables,
        charge_fc=charge_fc,
    )
    vectors = random_vectors(circuit, n_vectors, seed)
    value_sets = [sim.logic_values(vector) for vector in vectors]

    target_gates = (
        [circuit.gate(name).name for name in gates]
        if gates is not None
        else [g.name for g in circuit.gates()]
    )
    per_gate: dict[str, GateUnreliability] = {}
    for name in target_gates:
        totals: dict[str, float] = {}
        for values in value_sets:
            for out, width in sim.inject(name, values=values).items():
                totals[out] = totals.get(out, 0.0) + width
        averaged = {out: total / n_vectors for out, total in totals.items()}
        size = sim.assignment[name].size
        per_gate[name] = GateUnreliability(
            gate=name,
            generated_width_ps=sim.electrical.generated_width_ps[name],
            size=size,
            widths_by_output=averaged,
        )
    return UnreliabilityReport(circuit_name=circuit.name, per_gate=per_gate)


def vector_average_output_widths(
    circuit: Circuit,
    assignment: ParameterAssignment | None = None,
    n_vectors: int = 50,
    seed: int = 0,
    charge_fc: float = k.DEFAULT_CHARGE_FC,
    use_tables: bool = False,
    tables: TechnologyTables | None = None,
) -> float:
    """The Table-1 validation scalar: total size-weighted average output
    glitch width over ``n_vectors`` random vectors (equals the report's
    total unreliability under this protocol)."""
    report = transient_unreliability(
        circuit,
        assignment,
        n_vectors=n_vectors,
        seed=seed,
        charge_fc=charge_fc,
        use_tables=use_tables,
        tables=tables,
    )
    return report.total
