"""Per-vector glitch injection and propagation.

For one input vector and one struck gate, the simulator:

1. computes every signal's logic value (zero-delay simulation);
2. generates a glitch at the struck gate's output, of the width the
   electrical model predicts for the configured charge (the strike
   polarity always opposes the node's current value, as in ASERTA's
   model — charge is injected into low nodes and removed from high
   nodes, the other cases cause no glitch);
3. propagates widths through the fanout cone in topological order:
   a gate passes a glitch arriving on input ``i`` exactly when its
   other inputs hold non-controlling values for this vector (XOR-class
   and single-input gates always pass), attenuating it with Equation 1
   and the gate's actual delay; reconvergent glitches combine by width
   maximum (a single-strike, first-order pessimism shared with the
   paper's single-error injection model);
4. reports the width arriving at each primary output.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.circuit.gate import CONTROLLING_VALUE, GateType
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.logicsim.bitsim import BitParallelSimulator
from repro.tech import constants as k
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.glitch import propagate_width
from repro.tech.library import ParameterAssignment
from repro.tech.table_builder import TechnologyTables


class TransientSimulator:
    """Vector-accurate glitch simulator for one circuit + assignment.

    ``use_tables=False`` (default) evaluates the continuous electrical
    model — the "SPICE" reference.  ``use_tables=True`` runs the same
    per-vector propagation but with ASERTA's interpolated tables, which
    is the "ASERTA on 50 random vectors" mode of the paper's Table 1
    validation columns.
    """

    def __init__(
        self,
        circuit: Circuit,
        assignment: ParameterAssignment | None = None,
        tables: TechnologyTables | None = None,
        use_tables: bool = False,
        charge_fc: float = k.DEFAULT_CHARGE_FC,
    ) -> None:
        self.circuit = circuit
        self.assignment = (
            assignment if assignment is not None else ParameterAssignment()
        )
        self.electrical = CircuitElectrical(
            circuit,
            self.assignment,
            tables=tables,
            use_tables=use_tables,
            charge_fc=charge_fc,
        )
        self.simulator = BitParallelSimulator(circuit)
        self._topo = circuit.topological_order()
        self._topo_index = {name: i for i, name in enumerate(self._topo)}

    def logic_values(self, input_vector: Mapping[str, bool]) -> dict[str, bool]:
        """Zero-delay logic values for one input assignment."""
        return self.simulator.simulate_one(dict(input_vector))

    def inject(
        self,
        struck_gate: str,
        input_vector: Mapping[str, bool] | None = None,
        values: Mapping[str, bool] | None = None,
    ) -> dict[str, float]:
        """Strike ``struck_gate`` under one vector; returns the glitch
        width (ps) arriving at each primary output (absent = masked).

        Either ``input_vector`` or precomputed ``values`` (from
        :meth:`logic_values`, reusable across strikes) must be given.
        """
        gate = self.circuit.gate(struck_gate)
        if gate.is_input:
            raise SimulationError(
                f"{struck_gate!r} is a primary input; ASERTA strikes gate outputs"
            )
        if values is None:
            if input_vector is None:
                raise SimulationError("provide input_vector or values")
            values = self.logic_values(input_vector)

        generated = self.electrical.generated_width_ps[struck_gate]
        if generated <= 0.0:
            return {}

        widths: dict[str, float] = {struck_gate: generated}
        start = self._topo_index[struck_gate]
        for name in self._topo[start + 1 :]:
            gate = self.circuit.gate(name)
            if gate.is_input:
                continue
            arriving = 0.0
            for fanin in gate.fanins:
                width_in = widths.get(fanin, 0.0)
                if width_in <= 0.0:
                    continue
                if not self._passes(gate, fanin, values):
                    continue
                arriving = max(arriving, width_in)
            if arriving <= 0.0:
                continue
            width_out = propagate_width(arriving, self.electrical.delay_ps[name])
            if width_out > 0.0:
                widths[name] = width_out

        return {
            out: widths[out]
            for out in self.circuit.outputs
            if widths.get(out, 0.0) > 0.0
        }

    def _passes(
        self, gate, glitched_input: str, values: Mapping[str, bool]
    ) -> bool:
        """Is ``gate`` sensitized to ``glitched_input`` under ``values``?"""
        controlling = CONTROLLING_VALUE.get(gate.gtype)
        if controlling is None:
            # NOT/BUF/XOR/XNOR always propagate a single glitched input.
            return True
        for other in gate.fanins:
            if other == glitched_input:
                continue
            if values[other] == controlling:
                return False
        return True
