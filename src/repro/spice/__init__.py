"""Transient reference simulation (the repository's "SPICE").

The paper validates ASERTA against HSPICE transient runs: apply a
concrete input vector, inject the strike charge at one gate output, and
watch the glitch propagate to the latches.  This package plays that
role with the same *continuous* electrical model that the look-up
tables are sampled from, and with exact per-vector logical masking —
so the correlation numbers (Fig 3) measure exactly what the paper's
do: the error of ASERTA's probabilistic masking + interpolation against
a vector-accurate reference.
"""

from repro.spice.transient import TransientSimulator
from repro.spice.harness import (
    transient_unreliability,
    vector_average_output_widths,
)

__all__ = [
    "TransientSimulator",
    "transient_unreliability",
    "vector_average_output_widths",
]
