"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Structural problem with a circuit (bad wiring, cycles, duplicates)."""


class CircuitCycleError(CircuitError):
    """The netlist graph contains a combinational cycle."""


class UnknownGateError(CircuitError):
    """A referenced gate name does not exist in the circuit."""


class BenchFormatError(ReproError):
    """A ``.bench`` file could not be parsed."""


class TechnologyError(ReproError):
    """Invalid electrical/technology parameter (negative size, VDD <= Vth...)."""


class TableError(ReproError):
    """Lookup-table construction or query problem (bad axes, out of range)."""


class LibraryError(ReproError):
    """Cell-library construction or lookup problem."""


class SimulationError(ReproError):
    """Logic or transient simulation failed (shape mismatch, no vectors)."""


class AnalysisError(ReproError):
    """ASERTA analysis could not be completed."""


class OptimizationError(ReproError):
    """SERTOPT optimization could not be completed."""


class CampaignError(ReproError):
    """Campaign specification, store or execution problem."""
