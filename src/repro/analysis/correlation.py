"""Per-node correlation between two unreliability estimators.

The paper's Fig 3 plots ASERTA's per-gate unreliability ``U_i`` against
SPICE's for c432 nodes at most five levels from the primary outputs and
reports a correlation of 0.96 (0.9 averaged over the ISCAS'85 suite).
This module computes the same comparison between any two
:class:`~repro.core.unreliability.UnreliabilityReport` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.core.unreliability import UnreliabilityReport
from repro.errors import AnalysisError


def pearson(xs: np.ndarray, ys: np.ndarray) -> float:
    """Pearson correlation coefficient (0 for degenerate inputs)."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise AnalysisError("correlation needs two equal-length 1-D arrays")
    if xs.size < 2 or float(np.std(xs)) == 0.0 or float(np.std(ys)) == 0.0:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])


@dataclass(frozen=True)
class CorrelationResult:
    """Paired per-gate series plus their correlation."""

    circuit_name: str
    gate_names: tuple[str, ...]
    first: np.ndarray
    second: np.ndarray
    correlation: float

    @property
    def n_gates(self) -> int:
        return len(self.gate_names)


def correlate_reports(
    circuit: Circuit,
    first: UnreliabilityReport,
    second: UnreliabilityReport,
    max_levels_from_output: int | None = None,
) -> CorrelationResult:
    """Correlate two estimators' per-gate ``U_i`` series.

    ``max_levels_from_output`` restricts the comparison to gates within
    that many levels of a primary output (the paper plots <= 5); ``None``
    compares every gate.
    """
    if max_levels_from_output is None:
        names = [g.name for g in circuit.gates()]
    else:
        levels = circuit.levels_from_outputs()
        names = [
            g.name
            for g in circuit.gates()
            if 0 <= levels[g.name] <= max_levels_from_output
        ]
    if not names:
        raise AnalysisError("no gates selected for correlation")
    xs = np.array([first.contribution(name) for name in names])
    ys = np.array([second.contribution(name) for name in names])
    return CorrelationResult(
        circuit_name=circuit.name,
        gate_names=tuple(names),
        first=xs,
        second=ys,
        correlation=pearson(xs, ys),
    )
