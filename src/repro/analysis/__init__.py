"""Comparison and reporting utilities (Fig-3-style correlations, tables)."""

from repro.analysis.correlation import (
    CorrelationResult,
    correlate_reports,
    pearson,
)
from repro.analysis.reports import format_table

__all__ = ["CorrelationResult", "correlate_reports", "pearson", "format_table"]
