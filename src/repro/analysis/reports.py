"""Plain-text table rendering for experiment outputs.

Every experiment prints through this module, so benchmark logs, example
scripts and EXPERIMENTS.md all share one format.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, GitHub-markdown flavoured."""
    if not headers:
        raise AnalysisError("table needs at least one column")
    cells = [[_render(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[col]) for row in cells)) if cells
        else len(str(header))
        for col, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "| " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)) + " |"
    )
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in cells:
        lines.append(
            "| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000.0:
            return f"{value:.0f}"
        if abs(value) >= 10.0:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_percent(fraction: float) -> str:
    """Render a fraction as a percentage with the paper's precision."""
    return f"{100.0 * fraction:.0f}%"


def format_ratio(ratio: float) -> str:
    """Render a ratio in the paper's '1.23X' style."""
    return f"{ratio:.2f}X"
