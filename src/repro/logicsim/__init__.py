"""Zero-delay logic simulation: values, probabilities, observability.

ASERTA's logical-masking model needs two ingredients (paper Section 3.1):

* static probabilities ``p_i`` of each node being 1
  (:func:`repro.logicsim.probability.static_probabilities` — the role
  Synopsys Design Compiler plays in the paper), and
* sensitized-path probabilities ``P_ij`` from 10 000-vector random
  simulation (:func:`repro.logicsim.sensitization.sensitization_probabilities`,
  the estimator of the paper's reference [5]).

The engine underneath is a 64-way bit-parallel simulator
(:class:`repro.logicsim.bitsim.BitParallelSimulator`).
"""

from repro.logicsim.bitsim import BitParallelSimulator
from repro.logicsim.probability import (
    simulated_probabilities,
    static_probabilities,
)
from repro.logicsim.sensitization import sensitization_probabilities
from repro.logicsim.vectors import pack_vectors, random_input_words, unpack_words

__all__ = [
    "BitParallelSimulator",
    "static_probabilities",
    "simulated_probabilities",
    "sensitization_probabilities",
    "random_input_words",
    "pack_vectors",
    "unpack_words",
]
