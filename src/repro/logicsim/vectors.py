"""Packed random-vector generation for the bit-parallel simulator.

Vectors are stored 64 per machine word: an input set of ``n`` signals
simulated over ``v`` vectors is an ``(n, ceil(v / 64))`` array of
``uint64``.  The final word's unused high lanes are always zero, and
:func:`lane_mask` exposes the mask needed when counting bits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

WORD_BITS = 64
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def word_count(n_vectors: int) -> int:
    """Number of 64-bit words needed for ``n_vectors`` lanes."""
    if n_vectors < 1:
        raise SimulationError(f"need at least one vector, got {n_vectors}")
    return (n_vectors + WORD_BITS - 1) // WORD_BITS


def lane_mask(n_vectors: int) -> np.ndarray:
    """Per-word mask with exactly ``n_vectors`` low lanes set overall."""
    words = word_count(n_vectors)
    mask = np.full(words, _FULL, dtype=np.uint64)
    tail = n_vectors % WORD_BITS
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def random_input_words(n_inputs: int, n_vectors: int, seed: int = 0) -> np.ndarray:
    """Uniform random packed input values, shape ``(n_inputs, words)``.

    Tail lanes beyond ``n_vectors`` are forced to zero so bit-counting
    needs no further masking on inputs (derived signals still need
    :func:`lane_mask` after inverting gates set tail lanes).
    """
    if n_inputs < 1:
        raise SimulationError(f"need at least one input, got {n_inputs}")
    rng = np.random.default_rng(seed)
    words = word_count(n_vectors)
    raw = rng.integers(0, np.iinfo(np.uint64).max, size=(n_inputs, words),
                       dtype=np.uint64, endpoint=True)
    return raw & lane_mask(n_vectors)


def pack_vectors(vectors: np.ndarray) -> np.ndarray:
    """Pack a boolean array of shape ``(n_vectors, n_inputs)`` into words.

    Vector ``v``'s value for input ``i`` lands in word ``v // 64`` bit
    ``v % 64`` of row ``i``.
    """
    array = np.asarray(vectors, dtype=bool)
    if array.ndim != 2:
        raise SimulationError("pack_vectors expects a 2-D (vectors, inputs) array")
    n_vectors, n_inputs = array.shape
    if n_vectors == 0 or n_inputs == 0:
        raise SimulationError("pack_vectors needs at least one vector and input")
    words = word_count(n_vectors)
    packed = np.zeros((n_inputs, words), dtype=np.uint64)
    for v in range(n_vectors):
        word, bit = divmod(v, WORD_BITS)
        lane = np.uint64(1) << np.uint64(bit)
        packed[array[v], word] |= lane
    return packed


def unpack_words(words: np.ndarray, n_vectors: int) -> np.ndarray:
    """Inverse of :func:`pack_vectors`: returns ``(n_vectors, n_rows)`` bools."""
    packed = np.asarray(words, dtype=np.uint64)
    if packed.ndim == 1:
        packed = packed[np.newaxis, :]
    n_rows = packed.shape[0]
    result = np.zeros((n_vectors, n_rows), dtype=bool)
    for v in range(n_vectors):
        word, bit = divmod(v, WORD_BITS)
        lane = np.uint64(1) << np.uint64(bit)
        result[v] = (packed[:, word] & lane) != 0
    return result


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across ``words``."""
    return int(np.bitwise_count(np.asarray(words, dtype=np.uint64)).sum())
