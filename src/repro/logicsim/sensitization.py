"""Sensitized-path probabilities P_ij by fault-injection simulation.

``P_ij`` is the probability that at least one path from the output of
gate ``i`` to primary output ``j`` is sensitized (paper Section 3.1).
Exact computation is NP-complete for reconvergent circuits [Najm-Hajj],
so ASERTA estimates it with zero-delay simulation of random vectors (the
paper uses 10 000, following Mohanram-Touba [5]): for each vector,
``i``'s value is complemented and the change propagated; output ``j``
flips exactly when some path is sensitized.

The propagation is event-driven over packed 64-vector words: a gate is
re-evaluated only if one of its fan-ins actually changed in some lane,
so the touched region usually collapses to a narrow cone.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import numpy as np

from repro.circuit.gate import evaluate_words
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.logicsim.bitsim import BitParallelSimulator
from repro.logicsim.vectors import lane_mask, random_input_words

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def sensitization_probabilities(
    circuit: Circuit,
    n_vectors: int = 10000,
    seed: int = 0,
    simulator: BitParallelSimulator | None = None,
) -> dict[str, dict[str, float]]:
    """Estimate ``P_ij`` for every gate ``i`` and primary output ``j``.

    Returns a sparse mapping ``{gate: {output: probability}}`` holding
    only structurally-reachable, non-zero-support pairs, with the
    guaranteed diagonal ``P_jj = 1`` for primary outputs (a strike on a
    PO gate is latched regardless of vectors, per the paper).

    Primary-input signals are included as well (strikes on input pads
    are not analyzed by ASERTA, but the transient reference simulator
    shares this code path).
    """
    if n_vectors < 1:
        raise SimulationError(f"need at least one vector, got {n_vectors}")
    sim = simulator if simulator is not None else BitParallelSimulator(circuit)
    if sim.circuit is not circuit:
        raise SimulationError("simulator was compiled for a different circuit")
    inputs = random_input_words(len(circuit.inputs), n_vectors, seed)
    base = sim.simulate(inputs)
    mask = lane_mask(n_vectors)

    result: dict[str, dict[str, float]] = {}
    for name in sim.order:
        diffs = _flip_and_observe(circuit, sim, base, name, mask)
        row: dict[str, float] = {}
        for out_name, diff_words in diffs.items():
            count = int(np.bitwise_count(diff_words).sum())
            if count:
                row[out_name] = count / n_vectors
        if circuit.is_output(name):
            row[name] = 1.0
        result[name] = row
    return result


def _flip_and_observe(
    circuit: Circuit,
    sim: BitParallelSimulator,
    base: np.ndarray,
    source: str,
    mask: np.ndarray,
) -> dict[str, np.ndarray]:
    """Propagate a complement of ``source`` and return PO difference words.

    Event-driven: maintains an overlay of changed values, visiting gates
    in topological-index order so every gate is evaluated at most once.
    """
    index = sim.index
    overlay: dict[int, np.ndarray] = {}
    source_row = index[source]
    overlay[source_row] = (base[source_row] ^ _FULL) & mask

    heap: list[int] = []
    queued: set[int] = set()

    def enqueue(row: int) -> None:
        if row not in queued:
            queued.add(row)
            heapq.heappush(heap, row)

    for successor in circuit.fanouts(source):
        enqueue(index[successor])

    while heap:
        row = heapq.heappop(heap)
        name = sim.order[row]
        gate = circuit.gate(name)
        fanin_words = [
            overlay.get(index[f], base[index[f]]) for f in gate.fanins
        ]
        new_value = evaluate_words(gate.gtype, fanin_words) & mask
        if np.array_equal(new_value, base[row] & mask):
            overlay.pop(row, None)
            continue
        overlay[row] = new_value
        for successor in circuit.fanouts(name):
            enqueue(index[successor])

    diffs: dict[str, np.ndarray] = {}
    for out_name in circuit.outputs:
        row = index[out_name]
        new_value = overlay.get(row)
        if new_value is not None:
            delta = (new_value ^ base[row]) & mask
            if delta.any():
                diffs[out_name] = delta
    return diffs


def sensitization_matrix(
    circuit: Circuit,
    n_vectors: int = 10000,
    seed: int = 0,
    simulator: BitParallelSimulator | None = None,
    sensitized_paths: Mapping[str, Mapping[str, float]] | None = None,
    engine: str = "batched",
) -> np.ndarray:
    """Dense ``(V, O)`` form of ``P_ij`` over ``circuit.indexed()``.

    Row order is the indexed circuit's topological order; columns are
    primary outputs in declaration order.  Pass ``sensitized_paths`` to
    densify an existing estimate instead of re-simulating; otherwise the
    estimate is produced by the named structural engine — ``"batched"``
    (:func:`repro.engine.structural.structural_matrix_batched`, the
    fast default) or ``"event"`` (the per-site walk in this module) —
    which are bit-identical by contract.  This is the thin compatibility
    wrapper for callers that want the matrix without an analyzer.
    """
    if sensitized_paths is not None:
        return circuit.indexed().output_matrix(sensitized_paths)
    from repro.engine.structural import structural_matrix

    return structural_matrix(
        circuit, n_vectors=n_vectors, seed=seed, engine=engine,
        simulator=simulator,
    )


def union_observability(row_sums: np.ndarray) -> np.ndarray:
    """``min(1, sum_j P_ij)`` from per-gate row sums.

    *The* single definition of the upper-bounded union summary — the
    dense matrix view (:func:`observability_matrix`), the sparse-dict
    view (:func:`observability`), analyzer reports and campaign
    summaries all reduce through it, so they cannot drift.
    """
    return np.minimum(1.0, np.asarray(row_sums, dtype=np.float64))


def observability_matrix(p_matrix: np.ndarray) -> np.ndarray:
    """Per-row union observability over a dense ``(V, O)`` matrix."""
    return union_observability(
        np.asarray(p_matrix, dtype=np.float64).sum(axis=1)
    )


def observability(
    sensitization: Mapping[str, Mapping[str, float]],
) -> dict[str, float]:
    """Name-keyed union observability of a sparse estimate.

    A convenience summary used in reports, not by the ASERTA algorithm
    itself.  O(nnz): the sparse rows are summed directly and clamped by
    the shared reduction.
    """
    totals = union_observability(
        np.fromiter(
            (sum(row.values()) for row in sensitization.values()),
            dtype=np.float64,
            count=len(sensitization),
        )
    )
    return {
        gate: float(totals[i]) for i, gate in enumerate(sensitization)
    }
