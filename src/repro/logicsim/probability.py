"""Static signal probabilities.

The paper obtains the probability ``p_i`` of each node being 1 from
Synopsys Design Compiler with 0.5 at every primary input.  DC's engine
is, to first order, topological propagation under an input-independence
assumption; :func:`static_probabilities` implements that propagation
exactly (and exactly matches the true probability on fan-out-free
circuits).  :func:`simulated_probabilities` is the Monte-Carlo
alternative used for validation and for activity factors.
"""

from __future__ import annotations

from functools import reduce
from typing import Mapping

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.logicsim.bitsim import BitParallelSimulator


def static_probabilities(
    circuit: Circuit,
    input_probabilities: Mapping[str, float] | float = 0.5,
) -> dict[str, float]:
    """Probability of each signal being logic 1, assuming independence."""
    probs: dict[str, float] = {}
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            if isinstance(input_probabilities, Mapping):
                p = float(input_probabilities.get(name, 0.5))
            else:
                p = float(input_probabilities)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(
                    f"input probability for {name!r} must be in [0, 1], got {p}"
                )
            probs[name] = p
            continue
        fanin_probs = [probs[f] for f in gate.fanins]
        probs[name] = _gate_probability(gate.gtype, fanin_probs)
    return probs


def _gate_probability(gtype: GateType, fanin_probs: list[float]) -> float:
    if gtype is GateType.BUF:
        return fanin_probs[0]
    if gtype is GateType.NOT:
        return 1.0 - fanin_probs[0]
    if gtype in (GateType.AND, GateType.NAND):
        p_and = float(np.prod(fanin_probs))
        return p_and if gtype is GateType.AND else 1.0 - p_and
    if gtype in (GateType.OR, GateType.NOR):
        p_nor = float(np.prod([1.0 - p for p in fanin_probs]))
        return 1.0 - p_nor if gtype is GateType.OR else p_nor
    p_xor = reduce(lambda a, b: a * (1.0 - b) + b * (1.0 - a), fanin_probs)
    return p_xor if gtype is GateType.XOR else 1.0 - p_xor


def simulated_probabilities(
    circuit: Circuit, n_vectors: int = 10000, seed: int = 0
) -> dict[str, float]:
    """Monte-Carlo estimate of each signal's probability of being 1."""
    simulator = BitParallelSimulator(circuit)
    values, mask = simulator.simulate_random(n_vectors, seed)
    counts = np.bitwise_count(values & mask).sum(axis=1)
    return {
        name: float(counts[simulator.index[name]]) / n_vectors
        for name in simulator.order
    }


def switching_activities(
    probabilities: Mapping[str, float],
) -> dict[str, float]:
    """Per-cycle switching probability ``2 p (1 - p)`` for each signal.

    Used by the power model: under temporal independence a node toggles
    when consecutive cycles differ.
    """
    return {
        name: 2.0 * p * (1.0 - p) for name, p in probabilities.items()
    }
