"""64-way bit-parallel zero-delay logic simulator.

One :class:`BitParallelSimulator` instance precompiles a circuit's
topological structure into index arrays; each :meth:`simulate` call then
evaluates every gate once per 64-vector word.  This is the engine behind
static-probability estimation, the P_ij observability analysis (paper
Section 3.1) and the per-vector logical masking of the transient
reference simulator.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import GateType, evaluate_words
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.logicsim.vectors import lane_mask, random_input_words


class BitParallelSimulator:
    """Compiled zero-delay simulator for one circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.order = circuit.topological_order()
        self.index = {name: i for i, name in enumerate(self.order)}
        self.input_rows = np.array(
            [self.index[name] for name in circuit.inputs], dtype=np.int64
        )
        self.output_rows = np.array(
            [self.index[name] for name in circuit.outputs], dtype=np.int64
        )
        # Precompiled evaluation plan: (row, gtype, fanin row indices).
        self._plan: list[tuple[int, GateType, np.ndarray]] = []
        for name in self.order:
            gate = circuit.gate(name)
            if gate.is_input:
                continue
            rows = np.array([self.index[f] for f in gate.fanins], dtype=np.int64)
            self._plan.append((self.index[name], gate.gtype, rows))

    @property
    def n_signals(self) -> int:
        return len(self.order)

    def simulate(self, input_words: np.ndarray) -> np.ndarray:
        """Simulate packed inputs; returns all signal values.

        ``input_words`` has shape ``(n_inputs, n_words)`` in the
        circuit's input declaration order; the result has shape
        ``(n_signals, n_words)`` indexed by :attr:`index`.
        """
        words = np.asarray(input_words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[0] != len(self.input_rows):
            raise SimulationError(
                f"expected input shape ({len(self.input_rows)}, n_words), "
                f"got {words.shape}"
            )
        values = np.zeros((self.n_signals, words.shape[1]), dtype=np.uint64)
        values[self.input_rows] = words
        for row, gtype, fanin_rows in self._plan:
            values[row] = evaluate_words(gtype, [values[r] for r in fanin_rows])
        return values

    def simulate_random(
        self, n_vectors: int, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate ``n_vectors`` uniform random vectors.

        Returns ``(values, mask)`` where ``mask`` is the lane mask to
        apply before counting bits of any derived word.
        """
        inputs = random_input_words(len(self.input_rows), n_vectors, seed)
        return self.simulate(inputs), lane_mask(n_vectors)

    def simulate_one(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Convenience scalar simulation of a single input assignment."""
        missing = [name for name in self.circuit.inputs if name not in assignment]
        if missing:
            raise SimulationError(f"missing values for inputs {missing[:5]}")
        column = np.array(
            [[np.uint64(1) if assignment[name] else np.uint64(0)]
             for name in self.circuit.inputs],
            dtype=np.uint64,
        )
        values = self.simulate(column)
        one = np.uint64(1)
        return {
            name: bool(values[self.index[name], 0] & one) for name in self.order
        }

    def output_values(self, values: np.ndarray) -> np.ndarray:
        """Rows of ``values`` for the primary outputs, in output order."""
        return values[self.output_rows]
