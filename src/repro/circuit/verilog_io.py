"""Structural Verilog export for interoperability with external flows.

Only the writer is provided: this library's native interchange format is
``.bench`` (:mod:`repro.circuit.bench_io`); the Verilog writer exists so
optimized netlists can be handed to external EDA tools.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit

_PRIMITIVE = {
    GateType.BUF: "buf",
    GateType.NOT: "not",
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-legal identifier (escaped identifier when necessary)."""
    if _IDENT_RE.match(name):
        return name
    return f"\\{name} "


def write_verilog(circuit: Circuit) -> str:
    """Render ``circuit`` as a structural Verilog module."""
    ports = [_escape(n) for n in circuit.inputs] + [
        _escape(n) for n in circuit.outputs
    ]
    lines = [f"module {_escape(circuit.name)} ({', '.join(ports)});"]
    lines.extend(f"  input {_escape(name)};" for name in circuit.inputs)
    lines.extend(f"  output {_escape(name)};" for name in circuit.outputs)
    wires = [
        name
        for name in circuit.topological_order()
        if not circuit.gate(name).is_input and not circuit.is_output(name)
    ]
    lines.extend(f"  wire {_escape(name)};" for name in wires)
    for index, name in enumerate(circuit.topological_order()):
        gate = circuit.gate(name)
        if gate.is_input:
            continue
        primitive = _PRIMITIVE[gate.gtype]
        terminals = ", ".join([_escape(name)] + [_escape(f) for f in gate.fanins])
        lines.append(f"  {primitive} u{index} ({terminals});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: Circuit, path: str | Path) -> None:
    """Write ``circuit`` to ``path`` as structural Verilog."""
    Path(path).write_text(write_verilog(circuit))
