"""Seeded generator for ISCAS'85-scale synthetic benchmark circuits.

The original ISCAS'85 netlists cannot be shipped with this repository, so
:mod:`repro.circuit.iscas85` composes *stand-ins*: functionally real
blocks where the paper's narrative depends on function (the SEC decoder
for c499, the array multiplier for c6288) and, for the rest, circuits
from this generator matched to the published primary-input / primary-
output / gate counts and logic depth.

The generator builds a layered random DAG with locality-biased fan-in
selection (which produces the reconvergent fan-out that makes exact
sensitization analysis NP-complete, per the paper's Section 3.1), then
guarantees global well-formedness:

* every primary input feeds at least one gate,
* every gate lies on some path to a primary output,
* the primary output count is met exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.builders import NameScope, reduce_tree
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError

#: Gate-type mixes loosely modelled on the ISCAS'85 family characters.
FLAVORS: dict[str, dict[GateType, float]] = {
    "control": {
        GateType.NAND: 0.34,
        GateType.NOR: 0.18,
        GateType.AND: 0.12,
        GateType.OR: 0.10,
        GateType.NOT: 0.16,
        GateType.BUF: 0.04,
        GateType.XOR: 0.04,
        GateType.XNOR: 0.02,
    },
    "alu": {
        GateType.NAND: 0.28,
        GateType.NOR: 0.10,
        GateType.AND: 0.16,
        GateType.OR: 0.10,
        GateType.NOT: 0.12,
        GateType.BUF: 0.04,
        GateType.XOR: 0.14,
        GateType.XNOR: 0.06,
    },
    "parity": {
        GateType.NAND: 0.22,
        GateType.NOR: 0.08,
        GateType.AND: 0.10,
        GateType.OR: 0.08,
        GateType.NOT: 0.10,
        GateType.BUF: 0.02,
        GateType.XOR: 0.28,
        GateType.XNOR: 0.12,
    },
}


@dataclass(frozen=True)
class GeneratorSpec:
    """Target shape for one generated circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    depth: int
    seed: int
    flavor: str = "control"

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise CircuitError("generator needs at least one input and output")
        if self.n_gates < self.n_outputs:
            raise CircuitError("gate budget smaller than output count")
        if self.depth < 2:
            raise CircuitError("depth must be at least 2")
        if self.flavor not in FLAVORS:
            raise CircuitError(f"unknown flavor {self.flavor!r}")


def generate_circuit(spec: GeneratorSpec) -> Circuit:
    """Generate a deterministic synthetic circuit for ``spec``."""
    rng = random.Random(spec.seed)
    circuit = Circuit(spec.name)
    weights = FLAVORS[spec.flavor]
    gtypes = list(weights)
    gweights = [weights[t] for t in gtypes]

    inputs = [circuit.add_input(f"i{k}") for k in range(spec.n_inputs)]
    unused_inputs = list(inputs)
    rng.shuffle(unused_inputs)

    # Reserve part of the budget for the well-formedness fix-up stage.
    reserve = max(4, spec.n_gates // 12)
    main_budget = max(spec.n_outputs, spec.n_gates - reserve)
    per_level = _spread(main_budget, spec.depth)

    levels: list[list[str]] = [list(inputs)]
    fanout_seen: set[str] = set()
    for level_index in range(1, spec.depth + 1):
        level: list[str] = []
        for position in range(per_level[level_index - 1]):
            gtype = rng.choices(gtypes, gweights)[0]
            target_count = _pick_fanin_count(rng, gtype)
            fanins = _pick_fanins(rng, levels, level_index, target_count, unused_inputs)
            if len(fanins) == 1 and gtype.min_fanin > 1:
                gtype = rng.choice((GateType.NOT, GateType.BUF))
            name = f"g{level_index}_{position}"
            circuit.add_gate(name, gtype, fanins)
            fanout_seen.update(fanins)
            level.append(name)
        levels.append(level)

    _finalize_outputs(circuit, rng, spec, levels, fanout_seen, unused_inputs)
    circuit.validate()
    return circuit


def _spread(total: int, buckets: int) -> list[int]:
    """Distribute ``total`` gates over ``buckets`` levels, none left empty."""
    base = total // buckets
    counts = [base] * buckets
    for index in range(total - base * buckets):
        counts[index % buckets] += 1
    for index, count in enumerate(counts):
        if count == 0:
            counts[index] = 1
    return counts


def _pick_fanin_count(rng: random.Random, gtype: GateType) -> int:
    if gtype in (GateType.NOT, GateType.BUF):
        return 1
    return rng.choices([2, 3, 4], [0.62, 0.28, 0.10])[0]


def _pick_fanins(
    rng: random.Random,
    levels: list[list[str]],
    level_index: int,
    target_count: int,
    unused_inputs: list[str],
) -> list[str]:
    """Choose distinct fan-ins from strictly earlier levels.

    The first fan-in always comes from the immediately preceding level,
    which pins the gate at exactly ``level_index`` so the depth target is
    met.  Remaining slots use a locality-biased draw, preferring unused
    primary inputs until all are consumed.  If the prefix of the circuit
    is too small to supply ``target_count`` distinct signals, a shorter
    (possibly single-element) list is returned and the caller downgrades
    the gate type.
    """
    chosen: list[str] = [rng.choice(levels[level_index - 1])]
    attempts = 0
    while len(chosen) < target_count and attempts < 60:
        attempts += 1
        candidate = _draw_candidate(rng, levels, level_index, unused_inputs)
        if candidate not in chosen:
            chosen.append(candidate)
    if len(chosen) < target_count:
        for level in reversed(levels[:level_index]):
            for name in level:
                if name not in chosen:
                    chosen.append(name)
                    if len(chosen) == target_count:
                        return chosen
    return chosen


def _draw_candidate(
    rng: random.Random,
    levels: list[list[str]],
    level_index: int,
    unused_inputs: list[str],
) -> str:
    if unused_inputs and rng.random() < 0.35:
        return unused_inputs.pop()
    if rng.random() < 0.60:
        return rng.choice(levels[level_index - 1])
    donor_level = rng.randrange(0, level_index)
    return rng.choice(levels[donor_level])


def _finalize_outputs(
    circuit: Circuit,
    rng: random.Random,
    spec: GeneratorSpec,
    levels: list[list[str]],
    fanout_seen: set[str],
    unused_inputs: list[str],
) -> None:
    """Pick primary outputs and absorb every dangling signal.

    Dangling signals (gates nobody reads, leftover primary inputs) either
    become primary outputs directly or are folded into an XOR "absorber"
    tree whose root becomes the final primary output, so that nothing in
    the circuit is unobservable.
    """
    sinks = [
        name
        for name in circuit.signal_names()
        if name not in fanout_seen and not circuit.gate(name).is_input
    ]
    leftover_pis = list(unused_inputs)

    if len(sinks) >= spec.n_outputs:
        direct = sinks[: spec.n_outputs - 1]
        surplus = sinks[spec.n_outputs - 1 :] + leftover_pis
    else:
        direct = list(sinks)
        depth_pool = [
            name
            for level in reversed(levels[max(1, len(levels) // 2) :])
            for name in level
            if name not in direct
        ]
        while len(direct) < spec.n_outputs - 1 and depth_pool:
            candidate = depth_pool.pop(rng.randrange(len(depth_pool)))
            direct.append(candidate)
        surplus = leftover_pis

    scope = NameScope("fix")
    if surplus:
        if len(surplus) == 1:
            final = circuit.add_gate(scope.fresh("abs"), GateType.BUF, surplus)
        else:
            final = reduce_tree(circuit, scope, GateType.XOR, surplus)
    else:
        final = levels[-1][0] if levels[-1] else direct[-1]
        if final in direct:
            direct.remove(final)
    for name in direct:
        circuit.mark_output(name)
    if final not in circuit.outputs:
        circuit.mark_output(final)
    while len(circuit.outputs) < spec.n_outputs:
        # Extremely small specs can still be short; buffer random signals.
        donor = rng.choice(levels[-1] or levels[-2])
        extra = circuit.add_gate(scope.fresh("po"), GateType.BUF, [donor])
        circuit.mark_output(extra)
