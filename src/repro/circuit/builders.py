"""Programmatic construction of common combinational blocks.

These builders produce functionally real circuits (parity trees, adders,
muxes, decoders, comparators) that the synthetic ISCAS-like generator
composes into benchmark-scale netlists, and that tests use as known-good
functional references.

All builders share one convention: they append gates into a caller
provided :class:`Circuit` using a :class:`NameScope` for unique names and
return the names of the produced output signals.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


class NameScope:
    """Generates unique, readable signal names within one circuit."""

    def __init__(self, prefix: str = "n") -> None:
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "") -> str:
        self._counter += 1
        if hint:
            return f"{self._prefix}_{hint}_{self._counter}"
        return f"{self._prefix}_{self._counter}"


def reduce_tree(
    circuit: Circuit,
    scope: NameScope,
    gtype: GateType,
    signals: Sequence[str],
    arity: int = 2,
) -> str:
    """Balanced reduction tree of ``gtype`` gates over ``signals``.

    Returns the root signal name.  A single signal is returned as-is.
    """
    if not signals:
        raise CircuitError("reduce_tree needs at least one signal")
    if arity < 2:
        raise CircuitError("reduce_tree arity must be at least 2")
    level = list(signals)
    while len(level) > 1:
        nxt: list[str] = []
        for start in range(0, len(level), arity):
            group = level[start : start + arity]
            if len(group) == 1:
                nxt.append(group[0])
            else:
                nxt.append(
                    circuit.add_gate(scope.fresh(gtype.value), gtype, group)
                )
        level = nxt
    return level[0]


def xor_tree(circuit: Circuit, scope: NameScope, signals: Sequence[str]) -> str:
    """Balanced XOR (parity) tree; returns the parity signal."""
    return reduce_tree(circuit, scope, GateType.XOR, signals)


def inverter(circuit: Circuit, scope: NameScope, signal: str) -> str:
    return circuit.add_gate(scope.fresh("inv"), GateType.NOT, [signal])


def mux2(circuit: Circuit, scope: NameScope, select: str, low: str, high: str) -> str:
    """2:1 multiplexer: output = high if select else low."""
    select_n = inverter(circuit, scope, select)
    term_low = circuit.add_gate(scope.fresh("muxa"), GateType.AND, [select_n, low])
    term_high = circuit.add_gate(scope.fresh("muxb"), GateType.AND, [select, high])
    return circuit.add_gate(scope.fresh("muxo"), GateType.OR, [term_low, term_high])


def mux_tree(
    circuit: Circuit, scope: NameScope, selects: Sequence[str], data: Sequence[str]
) -> str:
    """2^k : 1 multiplexer tree over ``data`` controlled by ``selects``."""
    if len(data) != 1 << len(selects):
        raise CircuitError(
            f"mux_tree needs {1 << len(selects)} data inputs for "
            f"{len(selects)} selects, got {len(data)}"
        )
    level = list(data)
    for select in selects:
        level = [
            mux2(circuit, scope, select, level[i], level[i + 1])
            for i in range(0, len(level), 2)
        ]
    return level[0]


def half_adder(
    circuit: Circuit, scope: NameScope, a: str, b: str
) -> tuple[str, str]:
    """Half adder; returns ``(sum, carry)``."""
    total = circuit.add_gate(scope.fresh("hs"), GateType.XOR, [a, b])
    carry = circuit.add_gate(scope.fresh("hc"), GateType.AND, [a, b])
    return total, carry


def full_adder(
    circuit: Circuit, scope: NameScope, a: str, b: str, carry_in: str
) -> tuple[str, str]:
    """Full adder from two half adders; returns ``(sum, carry_out)``."""
    partial, carry_a = half_adder(circuit, scope, a, b)
    total, carry_b = half_adder(circuit, scope, partial, carry_in)
    carry_out = circuit.add_gate(scope.fresh("fc"), GateType.OR, [carry_a, carry_b])
    return total, carry_out


def ripple_adder(
    circuit: Circuit,
    scope: NameScope,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    carry_in: str | None = None,
) -> tuple[list[str], str]:
    """Ripple-carry adder (LSB first); returns ``(sum_bits, carry_out)``."""
    if len(a_bits) != len(b_bits):
        raise CircuitError("ripple_adder operands must have equal width")
    if not a_bits:
        raise CircuitError("ripple_adder needs at least one bit")
    sums: list[str] = []
    if carry_in is None:
        total, carry = half_adder(circuit, scope, a_bits[0], b_bits[0])
        sums.append(total)
        start = 1
    else:
        carry = carry_in
        start = 0
    for index in range(start, len(a_bits)):
        total, carry = full_adder(circuit, scope, a_bits[index], b_bits[index], carry)
        sums.append(total)
    return sums, carry


def decoder(
    circuit: Circuit, scope: NameScope, selects: Sequence[str]
) -> list[str]:
    """k-to-2^k one-hot decoder; returns the 2^k minterm signals."""
    if not selects:
        raise CircuitError("decoder needs at least one select line")
    complements = [inverter(circuit, scope, s) for s in selects]
    outputs: list[str] = []
    for code in range(1 << len(selects)):
        literals = [
            selects[bit] if (code >> bit) & 1 else complements[bit]
            for bit in range(len(selects))
        ]
        if len(literals) == 1:
            outputs.append(
                circuit.add_gate(scope.fresh("dec"), GateType.BUF, literals)
            )
        else:
            outputs.append(
                circuit.add_gate(scope.fresh("dec"), GateType.AND, literals)
            )
    return outputs


def equality_comparator(
    circuit: Circuit,
    scope: NameScope,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
) -> str:
    """Outputs 1 iff the two equal-width vectors match bit-for-bit."""
    if len(a_bits) != len(b_bits) or not a_bits:
        raise CircuitError("equality_comparator needs equal, non-zero widths")
    matches = [
        circuit.add_gate(scope.fresh("eq"), GateType.XNOR, [a, b])
        for a, b in zip(a_bits, b_bits)
    ]
    return reduce_tree(circuit, scope, GateType.AND, matches)


def expand_xor_to_nand(circuit: Circuit) -> Circuit:
    """Rewrite every XOR/XNOR into a 4/5-gate NAND network.

    This is the structural relationship between the real ISCAS circuits
    c499 (XOR form) and c1355 (NAND-expanded form); the synthetic suite
    uses it the same way.  Returns a new circuit named ``<name>_nand``.
    """
    expanded = Circuit(f"{circuit.name}_nand")
    for name in circuit.inputs:
        expanded.add_input(name)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            continue
        if gate.gtype not in (GateType.XOR, GateType.XNOR):
            expanded.add_gate(name, gate.gtype, gate.fanins)
            continue
        # Left-fold multi-input XOR into two-input stages.
        acc = gate.fanins[0]
        for stage, operand in enumerate(gate.fanins[1:]):
            last = stage == len(gate.fanins) - 2
            target = name if (last and gate.gtype is GateType.XOR) else f"{name}__x{stage}"
            acc = _xor2_nand(expanded, acc, operand, target)
        if gate.gtype is GateType.XNOR:
            expanded.add_gate(name, GateType.NOT, [acc])
    for name in circuit.outputs:
        expanded.mark_output(name)
    expanded.validate()
    return expanded


def _xor2_nand(circuit: Circuit, a: str, b: str, out_name: str) -> str:
    """Two-input XOR as the classic 4-NAND network, output named ``out_name``."""
    shared = circuit.add_gate(f"{out_name}__s", GateType.NAND, [a, b])
    left = circuit.add_gate(f"{out_name}__l", GateType.NAND, [a, shared])
    right = circuit.add_gate(f"{out_name}__r", GateType.NAND, [b, shared])
    return circuit.add_gate(out_name, GateType.NAND, [left, right])
