"""A true single-error-correcting (SEC) decoder circuit.

The real ISCAS'85 c499 is a 32-bit single-error-correction circuit
(41 inputs, 32 outputs, 202 gates).  Since the original netlist cannot be
shipped, this module builds a *functionally genuine* SEC decoder of the
same shape, so the paper's key observation about c499 — an
error-correcting, XOR-dominated circuit whose unreliability SERTOPT
cannot reduce — reproduces for the same structural reason.

Code construction
-----------------
Each data bit ``i`` is assigned a distinct non-zero *tag* of Hamming
weight >= 2 over the ``n_check`` syndrome bits.  Check bit ``j`` is the
parity of all data bits whose tag has bit ``j`` set.  The decoder:

* recomputes each check bit from the received data and XORs it with the
  received check bit, producing the syndrome;
* matches the syndrome against each data tag (an AND over syndrome
  literals);
* flips data bit ``i`` when its tag matches and the ``enable`` input is
  high.

A single data-bit error produces exactly its tag as syndrome and is
corrected; a single check-bit error produces a weight-1 syndrome that
matches no tag (all tags have weight >= 2), so data passes unchanged.
"""

from __future__ import annotations

from itertools import combinations

from repro.circuit.builders import NameScope, xor_tree
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def data_bit_tags(n_data: int, n_check: int) -> list[int]:
    """Distinct weight->=2 syndrome tags for each data bit.

    Tags are enumerated in increasing Hamming weight, then numeric order,
    which keeps the circuit deterministic.
    """
    tags: list[int] = []
    for weight in range(2, n_check + 1):
        for bits in combinations(range(n_check), weight):
            tag = 0
            for bit in bits:
                tag |= 1 << bit
            tags.append(tag)
            if len(tags) == n_data:
                return tags
    raise CircuitError(
        f"{n_check} check bits support at most {len(tags)} data bits "
        f"with weight>=2 tags; {n_data} requested"
    )


def sec_decoder(
    n_data: int = 32, n_check: int = 8, name: str = "sec_decoder"
) -> Circuit:
    """Build the SEC decoder circuit.

    Inputs: ``d0..d{n_data-1}``, ``c0..c{n_check-1}``, ``en`` (so the
    default configuration has 41 primary inputs, like c499).  Outputs:
    ``q0..q{n_data-1}`` corrected data.
    """
    if n_data < 1 or n_check < 2:
        raise CircuitError("sec_decoder needs n_data >= 1 and n_check >= 2")
    tags = data_bit_tags(n_data, n_check)
    circuit = Circuit(name)
    scope = NameScope("u")

    data = [circuit.add_input(f"d{i}") for i in range(n_data)]
    check = [circuit.add_input(f"c{j}") for j in range(n_check)]
    enable = circuit.add_input("en")

    # Syndrome: recomputed parity XOR received check bit.
    syndrome: list[str] = []
    for j in range(n_check):
        covered = [data[i] for i in range(n_data) if tags[i] >> j & 1]
        terms = covered + [check[j]]
        syndrome.append(
            circuit.add_gate(f"s{j}", GateType.XOR, terms)
            if len(terms) <= 9
            else circuit.add_gate(
                f"s{j}", GateType.XOR, [xor_tree(circuit, scope, covered), check[j]]
            )
        )
    syndrome_n = [
        circuit.add_gate(f"sn{j}", GateType.NOT, [syndrome[j]]) for j in range(n_check)
    ]

    # Per-data-bit tag match, gated by the enable input, then correction.
    for i in range(n_data):
        literals = [
            syndrome[j] if tags[i] >> j & 1 else syndrome_n[j]
            for j in range(n_check)
        ]
        match = circuit.add_gate(f"m{i}", GateType.AND, literals)
        flip = circuit.add_gate(f"f{i}", GateType.AND, [match, enable])
        out = circuit.add_gate(f"q{i}", GateType.XOR, [data[i], flip])
        circuit.mark_output(out)

    circuit.validate()
    return circuit


def encode_word(data_bits: list[bool], n_check: int = 8) -> list[bool]:
    """Reference encoder: check bits for ``data_bits`` (for tests)."""
    tags = data_bit_tags(len(data_bits), n_check)
    check = []
    for j in range(n_check):
        parity = False
        for i, bit in enumerate(data_bits):
            if tags[i] >> j & 1:
                parity ^= bool(bit)
        check.append(parity)
    return check
