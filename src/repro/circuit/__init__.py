"""Circuit substrate: gates, netlists, benchmark I/O, generators, paths.

The structural model is deliberately separate from the electrical model:
a :class:`~repro.circuit.netlist.Circuit` knows only names, gate types and
wiring.  Electrical parameters (size, channel length, VDD, Vth) are bound
to a circuit by :class:`repro.tech.library.ParameterAssignment`.
"""

from repro.circuit.gate import Gate, GateType
from repro.circuit.indexed import IndexedCircuit
from repro.circuit.netlist import Circuit
from repro.circuit.bench_io import parse_bench, parse_bench_file, write_bench
from repro.circuit.iscas85 import iscas85_circuit, iscas85_names, iscas85_stats

__all__ = [
    "Gate",
    "GateType",
    "Circuit",
    "IndexedCircuit",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "iscas85_circuit",
    "iscas85_names",
    "iscas85_stats",
]
