"""Gate types and single-gate boolean semantics.

A :class:`Gate` is purely structural: a name, a type and the names of its
fan-in signals.  Boolean evaluation lives here as well, in both scalar
form (:func:`evaluate`) and 64-way bit-parallel word form
(:func:`evaluate_words`), so the logic simulator, the transient simulator
and the test suite all share one definition of each gate's function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from functools import reduce
from typing import Sequence

import numpy as np

from repro.errors import CircuitError


@unique
class GateType(Enum):
    """Supported gate types (the ISCAS'85 ``.bench`` vocabulary)."""

    INPUT = "input"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"

    @property
    def is_inverting(self) -> bool:
        """True for gates whose output inverts the ANDed/ORed term."""
        return self in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR)

    @property
    def min_fanin(self) -> int:
        if self is GateType.INPUT:
            return 0
        if self in (GateType.BUF, GateType.NOT):
            return 1
        return 2

    @property
    def max_fanin(self) -> int | None:
        """Maximum fan-in, or ``None`` if unbounded."""
        if self is GateType.INPUT:
            return 0
        if self in (GateType.BUF, GateType.NOT):
            return 1
        return None


#: Gate types for which one input at the controlling value fixes the output.
CONTROLLING_VALUE: dict[GateType, bool] = {
    GateType.AND: False,
    GateType.NAND: False,
    GateType.OR: True,
    GateType.NOR: True,
}

#: The complement of the controlling value: the value the *other* inputs
#: must hold for a glitch on one input to pass through (sensitization).
NON_CONTROLLING_VALUE: dict[GateType, bool] = {
    gtype: not value for gtype, value in CONTROLLING_VALUE.items()
}


@dataclass(frozen=True)
class Gate:
    """One named gate instance: type plus fan-in signal names."""

    name: str
    gtype: GateType
    fanins: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise CircuitError("gate name must be a non-empty string")
        n = len(self.fanins)
        if n < self.gtype.min_fanin:
            raise CircuitError(
                f"gate {self.name!r} of type {self.gtype.value} needs at least "
                f"{self.gtype.min_fanin} fan-ins, got {n}"
            )
        maximum = self.gtype.max_fanin
        if maximum is not None and n > maximum:
            raise CircuitError(
                f"gate {self.name!r} of type {self.gtype.value} allows at most "
                f"{maximum} fan-ins, got {n}"
            )
        if len(set(self.fanins)) != n:
            raise CircuitError(f"gate {self.name!r} has duplicate fan-ins: {self.fanins}")

    @property
    def fanin_count(self) -> int:
        return len(self.fanins)

    @property
    def is_input(self) -> bool:
        return self.gtype is GateType.INPUT


def evaluate(gtype: GateType, values: Sequence[bool]) -> bool:
    """Evaluate one gate on scalar boolean input values."""
    if gtype is GateType.INPUT:
        raise CircuitError("primary inputs have no boolean function to evaluate")
    if gtype is GateType.BUF:
        return bool(values[0])
    if gtype is GateType.NOT:
        return not values[0]
    if gtype is GateType.AND:
        return all(values)
    if gtype is GateType.NAND:
        return not all(values)
    if gtype is GateType.OR:
        return any(values)
    if gtype is GateType.NOR:
        return not any(values)
    parity = reduce(lambda a, b: a ^ b, (bool(v) for v in values), False)
    if gtype is GateType.XOR:
        return parity
    return not parity  # XNOR


def evaluate_words(gtype: GateType, words: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate one gate on stacked uint64 words (64 vectors per bit-lane).

    Each entry of ``words`` is an equally-shaped ``uint64`` array carrying
    one fan-in's packed values; the result has the same shape.
    """
    if gtype is GateType.INPUT:
        raise CircuitError("primary inputs have no boolean function to evaluate")
    if gtype is GateType.BUF:
        return words[0].copy()
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    if gtype is GateType.NOT:
        return words[0] ^ full
    if gtype in (GateType.AND, GateType.NAND):
        acc = reduce(np.bitwise_and, words)
        return acc if gtype is GateType.AND else acc ^ full
    if gtype in (GateType.OR, GateType.NOR):
        acc = reduce(np.bitwise_or, words)
        return acc if gtype is GateType.OR else acc ^ full
    acc = reduce(np.bitwise_xor, words)
    return acc if gtype is GateType.XOR else acc ^ full
