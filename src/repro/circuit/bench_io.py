"""Reader and writer for the ISCAS'85 ``.bench`` netlist format.

The format, as used by the ISCAS'85/89 benchmark distributions::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

If the user has the original ISCAS'85 netlists, :func:`parse_bench_file`
loads them verbatim; the synthetic suite in
:mod:`repro.circuit.iscas85` is only a stand-in for the distribution
files, which cannot be shipped here.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import BenchFormatError

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)$")

_TYPE_BY_KEYWORD = {
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
}

_KEYWORD_BY_TYPE = {
    GateType.BUF: "BUFF",
    GateType.NOT: "NOT",
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a validated :class:`Circuit`.

    ``text`` is the ISCAS'85 netlist format — ``INPUT(x)`` /
    ``OUTPUT(y)`` declarations plus ``y = NAND(a, b)`` gate lines,
    ``#`` comments allowed; ``name`` becomes :attr:`Circuit.name`.
    Round-trips with :func:`write_bench`:

    >>> c = parse_bench('''
    ... INPUT(a)
    ... INPUT(b)
    ... OUTPUT(y)
    ... y = NAND(a, b)
    ... ''', name="tiny")
    >>> (c.gate_count, c.inputs, c.outputs)
    (1, ('a', 'b'), ('y',))
    >>> parse_bench(write_bench(c), name="tiny").gate("y").fanins
    ('a', 'b')
    """
    circuit = Circuit(name)
    pending_outputs: list[str] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        declaration = _DECL_RE.match(line)
        if declaration:
            keyword, signal = declaration.group(1).upper(), declaration.group(2)
            if keyword == "INPUT":
                _checked(circuit.add_input, signal, line_number)
            else:
                pending_outputs.append(signal)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            target, keyword, arg_text = gate.groups()
            gtype = _TYPE_BY_KEYWORD.get(keyword.upper())
            if gtype is None:
                raise BenchFormatError(
                    f"line {line_number}: unknown gate keyword {keyword!r}"
                )
            fanins = [arg.strip() for arg in arg_text.split(",") if arg.strip()]
            _checked(circuit.add_gate, target, line_number, gtype, fanins)
            continue
        raise BenchFormatError(f"line {line_number}: cannot parse {raw_line.strip()!r}")
    for signal in pending_outputs:
        circuit.mark_output(signal)
    circuit.validate()
    return circuit


def _checked(method, signal: str, line_number: int, *args) -> None:
    try:
        if args:
            gtype, fanins = args
            method(signal, gtype, fanins)
        else:
            method(signal)
    except Exception as exc:  # re-raise with position information
        raise BenchFormatError(f"line {line_number}: {exc}") from exc


def parse_bench_file(path: str | Path) -> Circuit:
    """Load a ``.bench`` file; the circuit is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Render a circuit back to ``.bench`` text (round-trips with parse)."""
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({name})" for name in circuit.inputs)
    lines.extend(f"OUTPUT({name})" for name in circuit.outputs)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            continue
        keyword = _KEYWORD_BY_TYPE[gate.gtype]
        lines.append(f"{name} = {keyword}({', '.join(gate.fanins)})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path) -> None:
    """Write ``circuit`` to ``path`` in ``.bench`` format."""
    Path(path).write_text(write_bench(circuit))


def known_keywords() -> Iterable[str]:
    """The gate keywords this parser accepts (for documentation/tests)."""
    return tuple(sorted(_TYPE_BY_KEYWORD))
