"""Path machinery: counting, enumeration, uniform sampling, topology matrix.

SERTOPT (paper Section 4) represents circuit timing with a binary
topology matrix ``T`` — ``T[j, i] = 1`` when gate ``i`` lies on path
``j`` — and restricts delay perturbations to the nullspace of ``T``.
Real circuits have astronomically many paths, so this module provides,
besides exact counting and bounded enumeration:

* *uniform* path sampling, using downstream path counts as walk weights
  (each PI-to-PO path is drawn with equal probability, using exact
  integer arithmetic so the weights stay valid for path counts far
  beyond float range);
* construction of ``T`` from any collection of paths.

A *path* is the tuple of logic-gate names from a gate fed by a primary
input through to a primary-output gate; primary inputs carry no delay
and are excluded.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.circuit.netlist import Circuit
from repro.errors import CircuitError

Path = tuple[str, ...]


def downstream_path_counts(circuit: Circuit) -> dict[str, int]:
    """For each signal, the number of distinct paths to any primary output.

    A primary output contributes one terminating path at itself and may
    continue through its fanouts to other outputs (exactly how timing
    paths to latches are counted).
    """
    counts: dict[str, int] = {}
    for name in circuit.reverse_topological_order():
        total = 1 if circuit.is_output(name) else 0
        for successor in circuit.fanouts(name):
            total += counts[successor]
        counts[name] = total
    return counts


def count_paths(circuit: Circuit) -> int:
    """Exact number of PI-to-PO paths (may be astronomically large)."""
    counts = downstream_path_counts(circuit)
    return sum(counts[name] for name in circuit.inputs)


def enumerate_paths(circuit: Circuit, limit: int | None = None) -> Iterator[Path]:
    """Yield paths (gate-name tuples) in DFS order, up to ``limit``."""
    produced = 0
    for start in circuit.inputs:
        stack: list[tuple[str, tuple[str, ...]]] = [(start, ())]
        while stack:
            name, prefix = stack.pop()
            gate_path = prefix if circuit.gate(name).is_input else prefix + (name,)
            if circuit.is_output(name) and gate_path:
                yield gate_path
                produced += 1
                if limit is not None and produced >= limit:
                    return
            for successor in reversed(circuit.fanouts(name)):
                stack.append((successor, gate_path))


def sample_paths(circuit: Circuit, count: int, seed: int = 0) -> list[Path]:
    """Draw ``count`` paths uniformly at random (with replacement, then
    de-duplicated, so the result may be shorter than ``count``)."""
    if count < 1:
        raise CircuitError("sample_paths needs count >= 1")
    counts = downstream_path_counts(circuit)
    inputs = [name for name in circuit.inputs if counts[name] > 0]
    if not inputs:
        raise CircuitError(f"circuit {circuit.name!r} has no PI-to-PO paths")
    input_weights = [counts[name] for name in inputs]
    total = sum(input_weights)
    rng = random.Random(seed)

    seen: set[Path] = set()
    ordered: list[Path] = []
    for __ in range(count):
        path = _walk_one(circuit, counts, inputs, input_weights, total, rng)
        if path not in seen:
            seen.add(path)
            ordered.append(path)
    return ordered


def _walk_one(
    circuit: Circuit,
    counts: dict[str, int],
    inputs: list[str],
    input_weights: list[int],
    total: int,
    rng: random.Random,
) -> Path:
    """One weighted random walk producing a uniformly-distributed path."""
    pick = rng.randrange(total)
    current = inputs[-1]
    for name, weight in zip(inputs, input_weights):
        if pick < weight:
            current = name
            break
        pick -= weight

    gates: list[str] = []
    while True:
        if not circuit.gate(current).is_input:
            gates.append(current)
        terminate_weight = 1 if circuit.is_output(current) else 0
        draw = rng.randrange(counts[current])
        if draw < terminate_weight:
            return tuple(gates)
        draw -= terminate_weight
        for successor in circuit.fanouts(current):
            weight = counts[successor]
            if draw < weight:
                current = successor
                break
            draw -= weight


def collect_paths(
    circuit: Circuit,
    max_paths: int = 2000,
    seed: int = 0,
    extra: Iterable[Path] = (),
) -> list[Path]:
    """Paths for the topology matrix: exhaustive when small, sampled otherwise.

    ``extra`` paths (e.g. the critical path from STA) are always included
    and de-duplicated against the rest.

    The result is cached on the circuit (like every other derived
    structure, invalidated on mutation) keyed by the full argument
    tuple: path collection is deterministic given ``(max_paths, seed,
    extra)``, and SERTOPT rebuilds the same delay space every
    ``optimize()`` call on a circuit.
    """
    if max_paths < 1:
        raise CircuitError("collect_paths needs max_paths >= 1")
    key = ("collect_paths", max_paths, seed, tuple(extra))
    cached = circuit._cache.get(key)
    if cached is None:
        total = count_paths(circuit)
        if total <= max_paths:
            paths = list(enumerate_paths(circuit))
        else:
            paths = sample_paths(circuit, max_paths, seed=seed)
        seen = set(paths)
        for path in key[3]:
            if path not in seen:
                seen.add(path)
                paths.append(path)
        cached = tuple(paths)
        circuit._cache[key] = cached
    return list(cached)


def topology_matrix(
    paths: Sequence[Path], gate_order: Sequence[str]
) -> np.ndarray:
    """Binary matrix T with ``T[j, i] = 1`` iff gate ``gate_order[i]`` is
    on ``paths[j]`` (paper Section 4)."""
    index = {name: i for i, name in enumerate(gate_order)}
    matrix = np.zeros((len(paths), len(gate_order)), dtype=np.float64)
    for row, path in enumerate(paths):
        for name in path:
            column = index.get(name)
            if column is None:
                raise CircuitError(
                    f"path gate {name!r} missing from gate_order"
                )
            matrix[row, column] = 1.0
    return matrix
