"""A real n x n array multiplier (c6288-like).

The ISCAS'85 c6288 is a 16x16 array multiplier (32 inputs, 32 outputs,
2406 gates).  This module builds the classic carry-save array: an AND
plane of partial products, rows of half/full adders, and a final ripple
stage — a functionally correct multiplier of the same scale, used by the
synthetic benchmark suite and as a logic-simulator correctness fixture.
"""

from __future__ import annotations

from repro.circuit.builders import NameScope, full_adder, half_adder
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def array_multiplier(width: int = 16, name: str | None = None) -> Circuit:
    """Build a ``width x width`` unsigned array multiplier.

    Inputs ``a0..a{w-1}`` and ``b0..b{w-1}`` (LSB first); outputs
    ``p0..p{2w-1}``.
    """
    if width < 2:
        raise CircuitError("array_multiplier needs width >= 2")
    circuit = Circuit(name or f"mul{width}x{width}")
    scope = NameScope("m")

    a_bits = [circuit.add_input(f"a{i}") for i in range(width)]
    b_bits = [circuit.add_input(f"b{i}") for i in range(width)]

    # Partial-product AND plane: pp[i][j] = a[j] AND b[i].
    partial = [
        [
            circuit.add_gate(f"pp_{i}_{j}", GateType.AND, [a_bits[j], b_bits[i]])
            for j in range(width)
        ]
        for i in range(width)
    ]

    # Row-by-row carry-save accumulation.  ``acc`` holds the running sum
    # bits of weight (row + j); ``product`` collects finished low bits.
    product: list[str] = []
    acc = list(partial[0])
    for row in range(1, width):
        product.append(acc[0])
        row_bits = partial[row]
        next_acc: list[str] = []
        carry: str | None = None
        for j in range(width):
            addend = acc[j + 1] if j + 1 < len(acc) else None
            operands = [row_bits[j]]
            if addend is not None:
                operands.append(addend)
            if carry is not None:
                operands.append(carry)
            if len(operands) == 1:
                next_acc.append(operands[0])
                carry = None
            elif len(operands) == 2:
                total, carry = half_adder(circuit, scope, operands[0], operands[1])
                next_acc.append(total)
            else:
                total, carry = full_adder(
                    circuit, scope, operands[0], operands[1], operands[2]
                )
                next_acc.append(total)
        if carry is not None:
            next_acc.append(carry)
        acc = next_acc

    product.extend(acc)
    if len(product) != 2 * width:
        raise CircuitError(
            f"internal error: array multiplier produced {len(product)} bits, "
            f"expected {2 * width}"
        )
    for index, bit in enumerate(product):
        out = circuit.add_gate(f"p{index}", GateType.BUF, [bit])
        circuit.mark_output(out)
    circuit.validate()
    return circuit
