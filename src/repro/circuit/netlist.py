"""The :class:`Circuit` netlist: a combinational DAG of named gates.

The circuit is mutable while being built (``add_input`` / ``add_gate`` /
``mark_output``) and computes derived structure (topological order,
levels, fanout maps, cones) lazily, invalidating caches on mutation.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.circuit.gate import Gate, GateType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.circuit.indexed import IndexedCircuit
from repro.errors import CircuitCycleError, CircuitError, UnknownGateError


class Circuit:
    """A combinational logic network.

    Signals and gates share a namespace, as in the ISCAS ``.bench``
    format: every signal is driven either by a primary input or by
    exactly one gate, and a primary output is simply a signal marked
    as observed by a latch.

    Build with :meth:`add_input` / :meth:`add_gate` / :meth:`mark_output`
    (derived structure — topological order, levels, fan-out maps, the
    dense :meth:`indexed` view — is computed lazily and invalidated on
    mutation):

    >>> from repro.circuit.gate import GateType
    >>> c = Circuit("demo")
    >>> a, b = c.add_input("a"), c.add_input("b")
    >>> g = c.add_gate("g", GateType.NAND, [a, b])
    >>> c.mark_output(g)
    >>> c.gate_count, c.topological_order()
    (1, ('a', 'b', 'g'))
    >>> c.fanouts("a")
    ('g',)
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: dict[str, Gate] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input signal and return its name."""
        self._check_fresh(name)
        self._gates[name] = Gate(name, GateType.INPUT)
        self._inputs.append(name)
        self._cache.clear()
        return name

    def add_gate(self, name: str, gtype: GateType, fanins: Iterable[str]) -> str:
        """Add a gate driving signal ``name`` and return the name."""
        if gtype is GateType.INPUT:
            raise CircuitError("use add_input() to declare primary inputs")
        self._check_fresh(name)
        self._gates[name] = Gate(name, gtype, tuple(fanins))
        self._cache.clear()
        return name

    def mark_output(self, name: str) -> None:
        """Mark signal ``name`` as a primary output (latched)."""
        if name in self._outputs:
            raise CircuitError(f"signal {name!r} is already a primary output")
        self._outputs.append(name)
        self._cache.clear()

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise CircuitError("signal name must be a non-empty string")
        if name in self._gates:
            raise CircuitError(f"signal {name!r} is already defined")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input names, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary output names, in declaration order."""
        return tuple(self._outputs)

    def gate(self, name: str) -> Gate:
        """The gate driving signal ``name`` (raises if unknown)."""
        try:
            return self._gates[name]
        except KeyError:
            raise UnknownGateError(f"no signal named {name!r} in {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __len__(self) -> int:
        """Total signal count, inputs included."""
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    @property
    def gate_count(self) -> int:
        """Number of logic gates (primary inputs excluded)."""
        return len(self._gates) - len(self._inputs)

    def gates(self) -> Iterator[Gate]:
        """Iterate over logic gates only (primary inputs excluded)."""
        return (g for g in self._gates.values() if not g.is_input)

    def signal_names(self) -> tuple[str, ...]:
        return tuple(self._gates)

    def is_output(self, name: str) -> bool:
        return name in self._output_set()

    def _output_set(self) -> frozenset[str]:
        cached = self._cache.get("output_set")
        if cached is None:
            cached = frozenset(self._outputs)
            self._cache["output_set"] = cached
        return cached  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def fanouts(self, name: str) -> tuple[str, ...]:
        """Names of the gates that read signal ``name``."""
        return self._fanout_map().get(name, ())

    def _fanout_map(self) -> dict[str, tuple[str, ...]]:
        cached = self._cache.get("fanouts")
        if cached is None:
            builder: dict[str, list[str]] = {name: [] for name in self._gates}
            for gate in self._gates.values():
                for fanin in gate.fanins:
                    if fanin not in self._gates:
                        raise UnknownGateError(
                            f"gate {gate.name!r} reads undefined signal {fanin!r}"
                        )
                    builder[fanin].append(gate.name)
            cached = {name: tuple(outs) for name, outs in builder.items()}
            self._cache["fanouts"] = cached
        return cached  # type: ignore[return-value]

    def topological_order(self) -> tuple[str, ...]:
        """All signal names in topological order (inputs first).

        Raises :class:`CircuitCycleError` if the netlist has a cycle.
        """
        cached = self._cache.get("topo")
        if cached is None:
            indegree = {name: gate.fanin_count for name, gate in self._gates.items()}
            ready = deque(name for name, degree in indegree.items() if degree == 0)
            order: list[str] = []
            fanout_map = self._fanout_map()
            while ready:
                name = ready.popleft()
                order.append(name)
                for successor in fanout_map[name]:
                    indegree[successor] -= 1
                    if indegree[successor] == 0:
                        ready.append(successor)
            if len(order) != len(self._gates):
                stuck = sorted(n for n, d in indegree.items() if d > 0)
                raise CircuitCycleError(
                    f"circuit {self.name!r} has a combinational cycle through "
                    f"{stuck[:5]}{'...' if len(stuck) > 5 else ''}"
                )
            cached = tuple(order)
            self._cache["topo"] = cached
        return cached  # type: ignore[return-value]

    def reverse_topological_order(self) -> tuple[str, ...]:
        """All signal names from primary outputs back to inputs."""
        return tuple(reversed(self.topological_order()))

    def levels(self) -> dict[str, int]:
        """Logic level of each signal (inputs are level 0)."""
        cached = self._cache.get("levels")
        if cached is None:
            level: dict[str, int] = {}
            for name in self.topological_order():
                gate = self._gates[name]
                if gate.is_input:
                    level[name] = 0
                else:
                    level[name] = 1 + max(level[f] for f in gate.fanins)
            cached = level
            self._cache["levels"] = cached
        return dict(cached)  # type: ignore[arg-type]

    def depth(self) -> int:
        """Maximum logic level over all signals (0 for input-only nets)."""
        level = self.levels()
        return max(level.values(), default=0)

    def levels_from_outputs(self) -> dict[str, int]:
        """Distance (in gates) from each signal to the nearest PO it feeds.

        Signals that reach no primary output get level ``-1``.  Used by
        the Fig-3 experiment, which plots nodes at most five levels deep
        from the POs.
        """
        cached = self._cache.get("levels_from_outputs")
        if cached is None:
            distance: dict[str, int] = {}
            fanout_map = self._fanout_map()
            for name in self.reverse_topological_order():
                best = 0 if self.is_output(name) else None
                for successor in fanout_map[name]:
                    downstream = distance[successor]
                    if downstream >= 0:
                        candidate = downstream + 1
                        if best is None or candidate < best:
                            best = candidate
                distance[name] = -1 if best is None else best
            cached = distance
            self._cache["levels_from_outputs"] = cached
        return dict(cached)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Cones
    # ------------------------------------------------------------------

    def fanin_cone(self, name: str) -> frozenset[str]:
        """All signals (including ``name``) that can reach signal ``name``."""
        return self._cone(name, lambda n: self._gates[n].fanins)

    def fanout_cone(self, name: str) -> frozenset[str]:
        """All signals (including ``name``) reachable from signal ``name``."""
        fanout_map = self._fanout_map()
        return self._cone(name, lambda n: fanout_map[n])

    def _cone(self, name: str, neighbours: Callable[[str], Iterable[str]]) -> frozenset[str]:
        self.gate(name)  # validate existence
        seen = {name}
        frontier = deque([name])
        while frontier:
            current = frontier.popleft()
            for nxt in neighbours(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def observable_outputs(self, name: str) -> tuple[str, ...]:
        """Primary outputs structurally reachable from signal ``name``."""
        cone = self.fanout_cone(name)
        return tuple(out for out in self._outputs if out in cone)

    def content_digest(self) -> str:
        """Stable SHA-256 content hash of the netlist structure.

        Two circuits get the same digest exactly when they are
        structurally identical: same primary inputs and outputs (in
        declaration order) and same gates (name, type, fan-ins).  The
        circuit *name* is deliberately excluded — renaming a netlist
        does not change any analysis result — so content-addressed
        caches (:mod:`repro.engine.cache`) can share artifacts across
        differently-named copies.  Cached like every other derived
        structure (invalidated on mutation).
        """
        cached = self._cache.get("content_digest")
        if cached is None:
            payload = {
                "inputs": self._inputs,
                "outputs": self._outputs,
                "gates": [
                    [gate.name, gate.gtype.value, list(gate.fanins)]
                    for gate in self._gates.values()
                ],
            }
            encoded = json.dumps(payload, separators=(",", ":"))
            cached = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
            self._cache["content_digest"] = cached
        return cached  # type: ignore[return-value]

    def indexed(self) -> "IndexedCircuit":
        """The dense integer/CSR view of this circuit, cached like every
        other derived structure (invalidated on mutation)."""
        cached = self._cache.get("indexed")
        if cached is None:
            from repro.circuit.indexed import IndexedCircuit

            cached = IndexedCircuit(self)
            self._cache["indexed"] = cached
        return cached  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Validation and summaries
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raises a :class:`CircuitError` subclass.

        Verified properties: every fan-in exists, the graph is acyclic,
        every declared output exists, and there is at least one input
        and one output.
        """
        if not self._inputs:
            raise CircuitError(f"circuit {self.name!r} has no primary inputs")
        if not self._outputs:
            raise CircuitError(f"circuit {self.name!r} has no primary outputs")
        for out in self._outputs:
            if out not in self._gates:
                raise UnknownGateError(f"declared output {out!r} is not defined")
        self._fanout_map()  # raises on dangling fan-ins
        self.topological_order()  # raises on cycles

    def dangling_signals(self) -> tuple[str, ...]:
        """Signals that feed no gate and are not primary outputs."""
        fanout_map = self._fanout_map()
        out_set = self._output_set()
        return tuple(
            name
            for name in self._gates
            if not fanout_map[name] and name not in out_set
        )

    def gate_type_counts(self) -> dict[GateType, int]:
        """Histogram of gate types (primary inputs excluded)."""
        counts: dict[GateType, int] = {}
        for gate in self.gates():
            counts[gate.gtype] = counts.get(gate.gtype, 0) + 1
        return counts

    def stats(self) -> dict[str, int]:
        """Summary statistics used by tests and the benchmark registry."""
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "gates": self.gate_count,
            "depth": self.depth(),
        }

    def copy(self, name: str | None = None) -> "Circuit":
        """Structural deep copy (gates are immutable and shared)."""
        duplicate = Circuit(name or self.name)
        duplicate._gates = dict(self._gates)
        duplicate._inputs = list(self._inputs)
        duplicate._outputs = list(self._outputs)
        return duplicate

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={self.gate_count})"
        )
