"""Registry of ISCAS'85-like benchmark circuits.

``c17`` is the exact published netlist (it is six gates and universally
reproduced in the literature).  Every other member is a documented
stand-in built to the published primary-input / primary-output / gate
counts — see DESIGN.md for the substitution rationale:

* ``c499``  — a *true* single-error-correcting decoder
  (:mod:`repro.circuit.ecc`), preserving the paper's observation that an
  ECC circuit's unreliability cannot be reduced by SERTOPT;
* ``c1355`` — ``c499`` with every XOR expanded into NAND networks, which
  is exactly the real c1355's relationship to the real c499;
* ``c6288`` — a real 16x16 array multiplier
  (:mod:`repro.circuit.multiplier`);
* the rest — seeded structured random circuits from
  :mod:`repro.circuit.generator`.

Real ISCAS'85 ``.bench`` files, if available, load through
:func:`repro.circuit.bench_io.parse_bench_file` and run through every
tool in this library unchanged.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.circuit.bench_io import parse_bench
from repro.circuit.builders import expand_xor_to_nand
from repro.circuit.ecc import sec_decoder
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.multiplier import array_multiplier
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError

#: Published ISCAS'85 statistics: (inputs, outputs, gates, depth).
PUBLISHED_STATS: dict[str, tuple[int, int, int, int]] = {
    "c17": (5, 2, 6, 3),
    "c432": (36, 7, 160, 17),
    "c499": (41, 32, 202, 11),
    "c880": (60, 26, 383, 24),
    "c1355": (41, 32, 546, 24),
    "c1908": (33, 25, 880, 40),
    "c2670": (233, 140, 1193, 32),
    "c3540": (50, 22, 1669, 47),
    "c5315": (178, 123, 2307, 49),
    "c6288": (32, 32, 2406, 124),
    "c7552": (207, 108, 3512, 43),
}

#: The circuits evaluated in the paper's Table 1, in row order.
TABLE1_CIRCUITS: tuple[str, ...] = (
    "c432",
    "c499",
    "c1908",
    "c2670",
    "c3540",
    "c5315",
    "c7552",
)

_C17_BENCH = """
# c17 (exact ISCAS'85 netlist)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def _generated(name: str, flavor: str, depth: int) -> Callable[[], Circuit]:
    inputs, outputs, gates, __ = PUBLISHED_STATS[name]
    spec = GeneratorSpec(
        name=name,
        n_inputs=inputs,
        n_outputs=outputs,
        n_gates=gates,
        depth=depth,
        seed=int(name[1:]),
        flavor=flavor,
    )
    return lambda: generate_circuit(spec)


_BUILDERS: dict[str, Callable[[], Circuit]] = {
    "c17": lambda: parse_bench(_C17_BENCH, name="c17"),
    "c432": _generated("c432", "control", 17),
    "c499": lambda: sec_decoder(32, 8, name="c499"),
    "c880": _generated("c880", "alu", 24),
    "c1355": lambda: expand_xor_to_nand(sec_decoder(32, 8, name="c1355x")).copy("c1355"),
    "c1908": _generated("c1908", "parity", 34),
    "c2670": _generated("c2670", "control", 28),
    "c3540": _generated("c3540", "alu", 40),
    "c5315": _generated("c5315", "alu", 42),
    "c6288": lambda: array_multiplier(16, name="c6288"),
    "c7552": _generated("c7552", "control", 38),
}


def iscas85_names() -> tuple[str, ...]:
    """All registered ISCAS'85 benchmark names, smallest first.

    >>> iscas85_names()[:3]
    ('c17', 'c432', 'c499')
    >>> len(iscas85_names())
    11
    """
    return tuple(sorted(_BUILDERS, key=lambda n: int(n[1:])))


def iscas85_stats(name: str) -> tuple[int, int, int, int]:
    """Published (inputs, outputs, gates, depth) for ``name``."""
    try:
        return PUBLISHED_STATS[name]
    except KeyError:
        raise CircuitError(f"unknown ISCAS'85 circuit {name!r}") from None


@lru_cache(maxsize=None)
def _cached(name: str) -> Circuit:
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise CircuitError(f"unknown ISCAS'85 circuit {name!r}") from None
    return builder()


def iscas85_circuit(name: str) -> Circuit:
    """Build (or fetch from cache) the named benchmark circuit.

    A shallow copy is returned, so callers may mark additional outputs
    without corrupting the cache; :class:`~repro.circuit.gate.Gate`
    objects themselves are immutable and shared.

    >>> c17 = iscas85_circuit("c17")
    >>> (c17.gate_count, len(c17.inputs), len(c17.outputs))
    (6, 5, 2)
    """
    return _cached(name).copy()
