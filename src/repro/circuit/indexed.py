"""Integer-indexed netlist view: the substrate of the array analysis core.

:class:`IndexedCircuit` freezes one :class:`~repro.circuit.netlist.Circuit`
into dense NumPy structure: every signal becomes an integer row in
topological order, adjacency becomes CSR-style ``(ptr, idx)`` arrays, and
primary outputs become columns.  Everything downstream of it — the
vectorized electrical annotation, the Section-3.2 masking sweep, the
Eq-3/Eq-4 reductions — indexes these arrays instead of chasing
``dict[str, ...]`` maps, which is what lets NumPy do the arithmetic over
whole gate populations at once (the Mohanram–Touba bit-parallel trick,
applied to the analysis instead of the simulation).

The view is immutable and cached on the circuit (`Circuit.indexed()`);
mutating the circuit invalidates the cache like every other derived
structure.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit


class IndexedCircuit:
    """Dense integer view of one circuit.

    Rows are signals in topological order (primary inputs included);
    columns — where a per-output axis exists — are primary outputs in
    declaration order.  Edge ``e`` runs from ``edge_src[e]`` to
    ``edge_dst[e]``; edges are grouped by source row (CSR) and, within
    one source, ordered exactly as :meth:`Circuit.fanouts` lists the
    successors, so array reductions accumulate in the same order as the
    dict-based reference code.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.order: tuple[str, ...] = circuit.topological_order()
        self.index: dict[str, int] = {
            name: row for row, name in enumerate(self.order)
        }
        n = len(self.order)
        self.n_signals = n
        self.n_outputs = len(circuit.outputs)

        self.is_input = np.zeros(n, dtype=bool)
        self.is_output = np.zeros(n, dtype=bool)
        gtype_list: list[GateType] = []
        fanin_counts = np.zeros(n, dtype=np.int64)
        for row, name in enumerate(self.order):
            gate = circuit.gate(name)
            gtype_list.append(gate.gtype)
            fanin_counts[row] = gate.fanin_count
            if gate.is_input:
                self.is_input[row] = True
        for name in circuit.outputs:
            self.is_output[self.index[name]] = True
        #: Gate type per row (object array of :class:`GateType`).
        self.gtypes: tuple[GateType, ...] = tuple(gtype_list)
        self.fanin_counts = fanin_counts
        #: Rows of logic gates (primary inputs excluded), ascending.
        self.gate_rows = np.flatnonzero(~self.is_input)
        self.n_gates = int(self.gate_rows.size)

        #: Row of output column ``j`` (declaration order).
        self.output_rows = np.array(
            [self.index[name] for name in circuit.outputs], dtype=np.int64
        )
        #: Primary-output name -> column index.
        self.output_col: dict[str, int] = {
            name: col for col, name in enumerate(circuit.outputs)
        }
        #: Column of each row that is a primary output, -1 elsewhere.
        self.col_of_row = np.full(n, -1, dtype=np.int64)
        self.col_of_row[self.output_rows] = np.arange(
            self.n_outputs, dtype=np.int64
        )

        # CSR fanouts (edge e: edge_src[e] -> edge_dst[e]).  Gates reject
        # duplicate fan-ins, so (src, dst) identifies an edge uniquely
        # and edge_slot maps the pair back to its CSR position.
        ptr = np.zeros(n + 1, dtype=np.int64)
        dst: list[int] = []
        self.edge_slot: dict[tuple[int, int], int] = {}
        for row, name in enumerate(self.order):
            for successor in circuit.fanouts(name):
                successor_row = self.index[successor]
                self.edge_slot[(row, successor_row)] = len(dst)
                dst.append(successor_row)
            ptr[row + 1] = len(dst)
        self.fanout_ptr = ptr
        self.edge_dst = np.array(dst, dtype=np.int64)
        self.n_edges = int(self.edge_dst.size)
        self.edge_src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(ptr)
        )

        # CSR fanins (fan-ins of each row, in declaration order).
        fptr = np.zeros(n + 1, dtype=np.int64)
        src: list[int] = []
        for row, name in enumerate(self.order):
            for fanin in circuit.gate(name).fanins:
                src.append(self.index[fanin])
            fptr[row + 1] = len(src)
        self.fanin_ptr = fptr
        self.fanin_src = np.array(src, dtype=np.int64)

        # Forward logic levels (inputs at 0), as an array.
        levels = circuit.levels()
        self.level = np.array(
            [levels[name] for name in self.order], dtype=np.int64
        )

        # Gates grouped by (gate type, fan-in count) — the unit one
        # characterization table covers, hence the unit of one vectorized
        # table lookup.
        groups: dict[tuple[GateType, int], list[int]] = {}
        for row in self.gate_rows:
            key = (gtype_list[row], int(fanin_counts[row]))
            groups.setdefault(key, []).append(int(row))
        self.type_groups: dict[tuple[GateType, int], np.ndarray] = {
            key: np.array(rows, dtype=np.int64) for key, rows in groups.items()
        }
        #: ``(gate type, fan-in)`` pairs in first-appearance order — the
        #: leading axis of the stacked characterization tables.
        self.group_pairs: tuple[tuple[GateType, int], ...] = tuple(groups)
        #: Per-row index into :attr:`group_pairs` (-1 on input rows).
        self.group_id = np.full(n, -1, dtype=np.int64)
        for gid, rows in enumerate(self.type_groups.values()):
            self.group_id[rows] = gid

        # Lazily-built level plans (see the methods below).
        self._reverse_level: np.ndarray | None = None
        self._reverse_level_rows: tuple[np.ndarray, ...] | None = None
        self._fanin_level_segments: tuple | None = None
        self._fanout_level_segments: tuple | None = None
        self._fanout_slot_plan: tuple | None = None
        self._sweep_index_plan: tuple | None = None

    # ------------------------------------------------------------------
    # Level plans (reverse levels + per-level CSR segment blocks)
    # ------------------------------------------------------------------

    @property
    def reverse_level(self) -> np.ndarray:
        """Reverse logic level per row: sinks (rows without fanouts) sit
        at level 0 and every other row one past its deepest successor —
        so all successors of a row live at *strictly smaller* reverse
        levels.  This is the schedule of every output-to-input batched
        sweep (the matching engine scores all gates of one reverse level
        in a single ``(lanes, gates, cells)`` block)."""
        if self._reverse_level is None:
            rl = np.zeros(self.n_signals, dtype=np.int64)
            for row in range(self.n_signals - 1, -1, -1):
                successors = self.fanouts_of(row)
                if successors.size:
                    rl[row] = int(rl[successors].max()) + 1
            self._reverse_level = rl
        return self._reverse_level

    def reverse_level_rows(self) -> tuple[np.ndarray, ...]:
        """Gate rows grouped by :attr:`reverse_level`, level 0 first.

        Block ``L`` holds the logic-gate rows (inputs excluded) at
        reverse level ``L`` in ascending row order; levels that contain
        only input rows yield empty blocks so positions always equal
        reverse levels.
        """
        if self._reverse_level_rows is None:
            rl = self.reverse_level
            gate_rl = rl[self.gate_rows]
            n_levels = int(rl.max()) + 1 if self.n_signals else 0
            self._reverse_level_rows = tuple(
                self.gate_rows[gate_rl == level] for level in range(n_levels)
            )
        return self._reverse_level_rows

    @staticmethod
    def _ragged_segments(ptr: np.ndarray, rows: np.ndarray):
        """Flattened CSR segment indices + segment starts for ``rows``
        (rows whose segment is empty are dropped)."""
        counts = ptr[rows + 1] - ptr[rows]
        present = counts > 0
        rows = rows[present]
        counts = counts[present]
        if rows.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return rows, empty, empty
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat = np.repeat(ptr[rows] - starts, counts) + np.arange(
            int(counts.sum()), dtype=np.int64
        )
        return rows, flat, starts

    def fanout_slot_plan(self) -> tuple:
        """Fan-out edges decomposed into unique-source slots.

        Slot ``j`` is a ``(srcs, dsts)`` pair covering the ``j``-th
        fan-out edge (CSR order) of every row that has one; each slot's
        sources are unique, so ``acc[:, srcs] += values[:, dsts]`` slot
        by slot replays ``np.add.at`` over the edge list — the exact
        per-source sequential accumulation order — with ordinary
        fancy-index adds.  This is the no-``reduceat`` segment-sum plan
        shared by every load-accumulation pass.
        """
        if self._fanout_slot_plan is None:
            counts = np.diff(self.fanout_ptr)
            plan = []
            rank = 0
            while True:
                srcs = np.flatnonzero(counts > rank)
                if srcs.size == 0:
                    break
                plan.append((srcs, self.edge_dst[self.fanout_ptr[srcs] + rank]))
                rank += 1
            self._fanout_slot_plan = tuple(plan)
        return self._fanout_slot_plan

    @staticmethod
    def _slot_decomposition(src: np.ndarray) -> tuple:
        """Occurrence-rank slots of one edge batch.

        ``np.add.at`` accumulates one edge at a time in batch order —
        flexible but slow.  Within a batch, occurrence ``j`` of each
        source row forms a *unique-index* slot, so
        ``acc[srcs] += values[pos]`` per slot replays the exact
        per-element accumulation order (a gate's successor
        contributions add in fan-out declaration order) with ordinary
        fancy-index adds.  One ``(positions, source rows)`` pair per
        occurrence rank.
        """
        order = np.argsort(src, kind="stable")
        sorted_src = src[order]
        new_group = np.ones(sorted_src.size, dtype=bool)
        new_group[1:] = sorted_src[1:] != sorted_src[:-1]
        starts = np.flatnonzero(new_group)
        counts = np.diff(np.append(starts, sorted_src.size))
        occurrence = np.empty(sorted_src.size, dtype=np.int64)
        occurrence[order] = np.arange(sorted_src.size) - np.repeat(
            starts, counts
        )
        slots = []
        for rank in range(int(counts.max(initial=0))):
            pos = np.flatnonzero(occurrence == rank)
            slots.append((pos, src[pos]))
        return tuple(slots)

    def sweep_index_plan(self) -> tuple:
        """Topology schedule of the reverse Section-3.2 sweep, cached.

        Returns ``(batches, slots)``: ``batches`` is one edge-id array
        per source forward level in descending order (internal —
        non-input, non-PO — sources only, so every batch reads only
        finished successor rows), exactly the order
        :func:`repro.core.masking.masking_structure` schedules; and
        ``slots`` holds each batch's :meth:`_slot_decomposition`.
        Everything here depends on the netlist alone — shares and
        assignments never touch it — so it is computed once per
        indexed view and shared by every masking structure and
        compiled :class:`~repro.core.sweep_plan.SweepPlan` over it.
        """
        if self._sweep_index_plan is None:
            internal = ~self.is_input & ~self.is_output
            batches: list[np.ndarray] = []
            edge_ids = np.flatnonzero(internal[self.edge_src])
            if edge_ids.size:
                src_levels = self.level[self.edge_src[edge_ids]]
                for level in np.unique(src_levels)[::-1]:
                    batches.append(edge_ids[src_levels == level])
            slots = tuple(
                self._slot_decomposition(self.edge_src[edges])
                for edges in batches
            )
            self._sweep_index_plan = (tuple(batches), slots)
        return self._sweep_index_plan

    def fanin_level_segments(self) -> tuple:
        """Per-forward-level fan-in gather plan for level-batched sweeps.

        One ``(rows, srcs, starts)`` triple per forward logic level that
        contains gate rows, in ascending level order: ``srcs`` is the
        concatenation of every row's fan-in rows (declaration order) and
        ``starts`` the segment starts, ready for
        ``np.maximum.reduceat(values[:, srcs], starts, axis=1)``.  Built
        once and cached — the batched STA consumes this every repair
        round of the matching engine.
        """
        if self._fanin_level_segments is None:
            gate_levels = self.level[self.gate_rows]
            plan = []
            for level in np.unique(gate_levels):
                rows = self.gate_rows[gate_levels == level]
                rows, flat, starts = self._ragged_segments(self.fanin_ptr, rows)
                if rows.size:
                    plan.append((rows, self.fanin_src[flat], starts))
            self._fanin_level_segments = tuple(plan)
        return self._fanin_level_segments

    def fanout_level_segments(self) -> tuple:
        """Per-forward-level fan-out gather plan, deepest level first.

        One ``(rows, dsts, starts)`` triple per forward logic level with
        fan-out edges, in *descending* level order — the backward
        (required-time) sweep's schedule, mirroring
        :meth:`fanin_level_segments`.
        """
        if self._fanout_level_segments is None:
            plan = []
            for level in np.unique(self.level)[::-1]:
                rows = np.flatnonzero(self.level == level)
                rows, flat, starts = self._ragged_segments(
                    self.fanout_ptr, rows
                )
                if rows.size:
                    plan.append((rows, self.edge_dst[flat], starts))
            self._fanout_level_segments = tuple(plan)
        return self._fanout_level_segments

    # ------------------------------------------------------------------
    # Dict <-> array bridging
    # ------------------------------------------------------------------

    def fanouts_of(self, row: int) -> np.ndarray:
        """Successor rows of ``row`` (CSR slice)."""
        return self.edge_dst[self.fanout_ptr[row] : self.fanout_ptr[row + 1]]

    def fanins_of(self, row: int) -> np.ndarray:
        """Fan-in rows of ``row`` (CSR slice)."""
        return self.fanin_src[self.fanin_ptr[row] : self.fanin_ptr[row + 1]]

    def gather(
        self, mapping: Mapping[str, float], default: float = 0.0
    ) -> np.ndarray:
        """Dense ``(V,)`` array from a name-keyed mapping."""
        out = np.full(self.n_signals, default, dtype=np.float64)
        for name, value in mapping.items():
            row = self.index.get(name)
            if row is not None:
                out[row] = value
        return out

    def scatter(
        self, values: np.ndarray, rows: np.ndarray | None = None
    ) -> dict[str, float]:
        """Name-keyed dict view of a dense ``(V,)`` array."""
        take = range(self.n_signals) if rows is None else rows
        return {self.order[row]: float(values[row]) for row in take}

    def output_matrix(
        self, per_output: Mapping[str, Mapping[str, float]]
    ) -> np.ndarray:
        """Dense ``(V, O)`` array from a sparse ``{gate: {output: x}}``."""
        out = np.zeros((self.n_signals, self.n_outputs), dtype=np.float64)
        for name, row_map in per_output.items():
            row = self.index.get(name)
            if row is None:
                continue
            for output_name, value in row_map.items():
                col = self.output_col.get(output_name)
                if col is not None:
                    out[row, col] = value
        return out

    def __repr__(self) -> str:
        return (
            f"IndexedCircuit({self.circuit.name!r}, signals={self.n_signals}, "
            f"edges={self.n_edges}, outputs={self.n_outputs})"
        )
