"""Shared configuration for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.iscas85 import TABLE1_CIRCUITS
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ExperimentScale:
    """How much work an experiment run performs.

    ``fast`` keeps unit tests and CI benchmarks quick; ``paper``
    reproduces the paper's protocol sizes (10 000 sensitization vectors,
    50 reference vectors, the full Table-1 circuit list).
    """

    #: Random vectors for ASERTA's P_ij estimate.
    sensitization_vectors: int
    #: Random vectors for the transient reference runs.
    reference_vectors: int
    #: SERTOPT cost evaluations.
    optimizer_evaluations: int
    #: Circuits included in suite-wide experiments.
    circuits: tuple[str, ...]
    #: Circuits for which the (slow) reference simulation is run; the
    #: paper skipped SPICE on c5315 and c7552 for the same reason.
    reference_circuits: tuple[str, ...]

    @classmethod
    def fast(cls) -> "ExperimentScale":
        return cls(
            sensitization_vectors=2000,
            reference_vectors=20,
            optimizer_evaluations=60,
            circuits=("c432", "c499"),
            reference_circuits=("c432", "c499"),
        )

    @classmethod
    def medium(cls) -> "ExperimentScale":
        return cls(
            sensitization_vectors=4000,
            reference_vectors=50,
            optimizer_evaluations=120,
            circuits=("c432", "c499", "c1908", "c2670"),
            reference_circuits=("c432", "c499", "c1908"),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(
            sensitization_vectors=10000,
            reference_vectors=50,
            optimizer_evaluations=300,
            circuits=TABLE1_CIRCUITS,
            reference_circuits=TABLE1_CIRCUITS[:-2],
        )

    @classmethod
    def named(cls, name: str) -> "ExperimentScale":
        factories = {"fast": cls.fast, "medium": cls.medium, "paper": cls.paper}
        try:
            return factories[name]()
        except KeyError:
            raise AnalysisError(
                f"unknown scale {name!r}; choose from {sorted(factories)}"
            ) from None
