"""FIG3 — per-node unreliability: ASERTA vs the transient reference.

Paper Fig 3: for c432, the per-gate unreliability ``U_i`` computed by
ASERTA plotted against SPICE's (50 random vectors, strikes on every
gate, nodes at most five levels from the primary outputs).  The paper
reports a correlation of 0.96 on c432 and an average of 0.9 over the
ISCAS'85 suite; this experiment regenerates both numbers against this
repository's transient reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.correlation import CorrelationResult, correlate_reports
from repro.analysis.reports import format_table
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.experiments.common import ExperimentScale
from repro.spice.harness import transient_unreliability

#: The paper plots nodes at most five levels deep from the POs.
MAX_LEVELS_FROM_PO = 5


@dataclass(frozen=True)
class Fig3Result:
    """Correlation series for one circuit plus the suite average."""

    primary: CorrelationResult
    suite: dict[str, float]

    @property
    def suite_average(self) -> float:
        return sum(self.suite.values()) / len(self.suite)


def correlation_for_circuit(
    name: str,
    scale: ExperimentScale,
    max_levels: int | None = MAX_LEVELS_FROM_PO,
    seed: int = 7,
) -> CorrelationResult:
    """ASERTA-vs-reference per-gate correlation for one circuit."""
    circuit = iscas85_circuit(name)
    analyzer = AsertaAnalyzer(
        circuit,
        AsertaConfig(n_vectors=scale.sensitization_vectors, seed=seed),
    )
    aserta_report = analyzer.analyze().unreliability
    reference = transient_unreliability(
        circuit,
        n_vectors=scale.reference_vectors,
        seed=seed,
    )
    return correlate_reports(
        circuit, aserta_report, reference, max_levels_from_output=max_levels
    )


def run_fig3(
    scale: ExperimentScale | None = None, primary_circuit: str = "c432"
) -> Fig3Result:
    """Regenerate Fig 3 (primary circuit) and the suite-average number."""
    scale = scale if scale is not None else ExperimentScale.fast()
    primary = correlation_for_circuit(primary_circuit, scale)
    suite = {}
    for name in scale.reference_circuits:
        if name == primary_circuit:
            suite[name] = primary.correlation
        else:
            suite[name] = correlation_for_circuit(name, scale).correlation
    return Fig3Result(primary=primary, suite=suite)


def main() -> None:
    result = run_fig3(ExperimentScale.medium())
    print(
        f"FIG3 — per-node U_i correlation, {result.primary.circuit_name}, "
        f"nodes <= {MAX_LEVELS_FROM_PO} levels from POs"
    )
    rows = [
        (name, result.primary.first[i], result.primary.second[i])
        for i, name in enumerate(result.primary.gate_names[:20])
    ]
    print(format_table(("gate", "U_i ASERTA", "U_i reference"), rows))
    print(f"correlation ({result.primary.circuit_name}): "
          f"{result.primary.correlation:.3f}  (paper: 0.96)")
    suite_rows = [(name, corr) for name, corr in result.suite.items()]
    print(format_table(("circuit", "correlation"), suite_rows))
    print(f"suite average: {result.suite_average:.3f}  (paper: 0.9)")


if __name__ == "__main__":
    main()
