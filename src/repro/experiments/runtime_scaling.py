"""RT — runtime scaling (paper Section 5 remarks).

The paper reports ASERTA taking 15 s on c432 and 200 s on c7552, and
SERTOPT 20 min and 27 h respectively (MATLAB, with an expected 10x from
migrating to a compiled implementation).  Absolute times are not
comparable across substrates; what this experiment reproduces is the
*shape*: ASERTA's near-linear growth in circuit size, and SERTOPT being
orders of magnitude more expensive because every cost evaluation embeds
a full ASERTA run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.reports import format_table
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.cost import CostEvaluator
from repro.core.baseline import size_for_speed
from repro.experiments.common import ExperimentScale


@dataclass(frozen=True)
class RuntimeRow:
    circuit: str
    gates: int
    analyzer_init_s: float
    aserta_analyze_s: float
    sertopt_eval_s: float


@dataclass(frozen=True)
class RuntimeResult:
    rows: list[RuntimeRow]

    def analyze_seconds(self) -> dict[str, float]:
        return {row.circuit: row.aserta_analyze_s for row in self.rows}


def run_runtime_scaling(
    scale: ExperimentScale | None = None,
    circuits: tuple[str, ...] | None = None,
) -> RuntimeResult:
    """Measure ASERTA and per-evaluation SERTOPT wall-clock times."""
    scale = scale if scale is not None else ExperimentScale.fast()
    names = circuits if circuits is not None else scale.circuits
    rows: list[RuntimeRow] = []
    for name in names:
        circuit = iscas85_circuit(name)
        started = time.perf_counter()
        analyzer = AsertaAnalyzer(
            circuit,
            AsertaConfig(n_vectors=scale.sensitization_vectors, seed=3),
        )
        init_s = time.perf_counter() - started

        started = time.perf_counter()
        analyzer.analyze()
        analyze_s = time.perf_counter() - started

        baseline = size_for_speed(circuit)
        evaluator = CostEvaluator(analyzer, baseline)
        started = time.perf_counter()
        evaluator.evaluate(baseline)
        eval_s = time.perf_counter() - started

        rows.append(
            RuntimeRow(
                circuit=name,
                gates=circuit.gate_count,
                analyzer_init_s=init_s,
                aserta_analyze_s=analyze_s,
                sertopt_eval_s=eval_s,
            )
        )
    return RuntimeResult(rows=rows)


def main() -> None:
    result = run_runtime_scaling(ExperimentScale.medium())
    print(
        format_table(
            ("circuit", "gates", "P_ij init (s)", "ASERTA (s)", "SERTOPT eval (s)"),
            [
                (r.circuit, r.gates, r.analyzer_init_s, r.aserta_analyze_s,
                 r.sertopt_eval_s)
                for r in result.rows
            ],
            title="RT — runtime scaling (paper: 15 s on c432 to 200 s on "
                  "c7552 for ASERTA, MATLAB)",
        )
    )


if __name__ == "__main__":
    main()
