"""ABL — ablations of ASERTA design choices the paper calls out.

* **ABL-PI** — Equation 2's normalization.  The paper stresses that
  ``pi_isj`` is *not* simply ``S_is * P_sj``: the shares must satisfy
  ``sum_s pi_isj P_sj = P_ij`` or wide glitches stop obeying Lemma 1.
  The ablation runs the electrical-masking pass with the naive weights
  and measures how far the wide-glitch expected widths drift from the
  exact ``w * P_ij``.

* **ABL-K** — the number of sample glitch widths (the paper uses 10).
  The ablation sweeps k and reports the total unreliability against a
  dense-k reference, showing the convergence that justifies 10.  The
  sweep runs through the campaign engine (the sample-width count is the
  analysis-config axis of the grid); ABL-PI stays a direct computation
  because it ablates Equation 2 *inside* the propagation, which no grid
  axis can express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.analysis.reports import format_table
from repro.campaign.environments import SEA_LEVEL
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.circuit.iscas85 import iscas85_circuit
from repro.circuit.netlist import Circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.electrical_masking import default_sample_widths
from repro.core.masking import sensitization_to_input
from repro.experiments.common import ExperimentScale
from repro.tech.glitch import propagate_width_array
from repro.tech.library import ParameterAssignment


@dataclass(frozen=True)
class PiAblationResult:
    """Wide-glitch Lemma-1 deviation: normalized vs naive shares."""

    circuit: str
    max_deviation_normalized: float
    max_deviation_naive: float
    mean_deviation_naive: float


def _wide_glitch_deviation(
    circuit: Circuit,
    analyzer: AsertaAnalyzer,
    normalized: bool,
) -> tuple[float, float]:
    """Max/mean relative deviation of wide-glitch expected widths from
    the Lemma-1 value ``ww * P_ij``."""
    elec = analyzer.electrical_view(ParameterAssignment())
    samples = default_sample_widths(elec, 10)
    wide = samples[-1]
    probabilities = analyzer.probabilities
    paths = analyzer.sensitized_paths

    tables: dict[str, dict[str, np.ndarray]] = {}
    deviations: list[float] = []
    for name in circuit.reverse_topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            continue
        if circuit.is_output(name):
            tables[name] = {name: samples.copy()}
            continue
        row: dict[str, np.ndarray] = {}
        for output, p_ij in paths.get(name, {}).items():
            if p_ij <= 0.0:
                continue
            shares = _shares(
                circuit, probabilities, paths, name, output, normalized
            )
            if not shares:
                continue
            acc = np.zeros_like(samples)
            for successor, share in shares.items():
                table = tables.get(successor, {}).get(output)
                if table is None:
                    continue
                widths_out = propagate_width_array(
                    samples, elec.delay_ps[successor]
                )
                acc += share * np.interp(widths_out, samples, table)
            row[output] = acc
            expected = wide * p_ij
            if expected > 0.0:
                deviations.append(abs(acc[-1] - expected) / expected)
        tables[name] = row
    if not deviations:
        return 0.0, 0.0
    return float(np.max(deviations)), float(np.mean(deviations))


def _shares(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    paths: Mapping[str, Mapping[str, float]],
    gate_name: str,
    output: str,
    normalized: bool,
) -> dict[str, float]:
    raw: dict[str, float] = {}
    denominator = 0.0
    p_ij = paths.get(gate_name, {}).get(output, 0.0)
    for successor in circuit.fanouts(gate_name):
        s_is = sensitization_to_input(
            circuit, probabilities, gate_name, successor
        )
        p_sj = paths.get(successor, {}).get(output, 0.0)
        if s_is * p_sj > 0.0:
            raw[successor] = s_is
            denominator += s_is * p_sj
    if not raw or denominator <= 0.0:
        return {}
    if normalized:
        return {s: s_is * p_ij / denominator for s, s_is in raw.items()}
    # Naive weights the paper warns against: S_is * P_sj directly.
    return {
        s: s_is * paths.get(s, {}).get(output, 0.0) for s, s_is in raw.items()
    }


def run_pi_ablation(
    circuit_name: str = "c432", scale: ExperimentScale | None = None
) -> PiAblationResult:
    scale = scale if scale is not None else ExperimentScale.fast()
    circuit = iscas85_circuit(circuit_name)
    analyzer = AsertaAnalyzer(
        circuit, AsertaConfig(n_vectors=scale.sensitization_vectors, seed=5)
    )
    max_norm, __ = _wide_glitch_deviation(circuit, analyzer, normalized=True)
    max_naive, mean_naive = _wide_glitch_deviation(
        circuit, analyzer, normalized=False
    )
    return PiAblationResult(
        circuit=circuit_name,
        max_deviation_normalized=max_norm,
        max_deviation_naive=max_naive,
        mean_deviation_naive=mean_naive,
    )


@dataclass(frozen=True)
class SampleCountAblationResult:
    """Total U as a function of the sample-width count k."""

    circuit: str
    reference_k: int
    reference_total: float
    totals: dict[int, float]

    def relative_error(self, k: int) -> float:
        if self.reference_total == 0.0:
            return 0.0
        return abs(self.totals[k] - self.reference_total) / self.reference_total


def run_sample_count_ablation(
    circuit_name: str = "c432",
    counts: tuple[int, ...] = (3, 5, 10, 20),
    reference_k: int = 40,
    scale: ExperimentScale | None = None,
) -> SampleCountAblationResult:
    """Convergence in k, expressed as a campaign over the k axis."""
    scale = scale if scale is not None else ExperimentScale.fast()
    spec = CampaignSpec(
        circuits=(circuit_name,),
        environments=(SEA_LEVEL,),
        n_vectors=scale.sensitization_vectors,
        seed=5,
        # dict.fromkeys dedupes while preserving order (reference_k may
        # legitimately appear in counts).
        sample_width_counts=tuple(dict.fromkeys(tuple(counts) + (reference_k,))),
    )
    outcome = CampaignRunner(spec).run(parallel=False)
    totals = {
        result.key.n_sample_widths: result.unreliability_total
        for result in outcome.results
    }
    return SampleCountAblationResult(
        circuit=circuit_name,
        reference_k=reference_k,
        reference_total=totals[reference_k],
        totals={k: totals[k] for k in counts},
    )


def main() -> None:
    pi = run_pi_ablation()
    print(
        format_table(
            ("variant", "max Lemma-1 deviation"),
            [
                ("Eq-2 normalized (paper)", pi.max_deviation_normalized),
                ("naive S_is*P_sj", pi.max_deviation_naive),
            ],
            title=f"ABL-PI — wide-glitch deviation on {pi.circuit}",
        )
    )
    ks = run_sample_count_ablation()
    print(
        format_table(
            ("k samples", "total U", "error vs k=%d" % ks.reference_k),
            [(k, ks.totals[k], ks.relative_error(k)) for k in sorted(ks.totals)],
            title=f"ABL-K — sample-width count on {ks.circuit}",
        )
    )


if __name__ == "__main__":
    main()
