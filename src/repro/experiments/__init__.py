"""Experiment harnesses: one module per table/figure of the paper.

=============  =====================================================
Module         Paper artifact
=============  =====================================================
fig1_*         Fig 1 — inverter glitch *generation* vs size/L/VDD/Vth
fig2_*         Fig 2 — inverter glitch *propagation* vs the same knobs
fig3_*         Fig 3 — per-node U_i, ASERTA vs reference, correlation
table1_*       Table 1 — SERTOPT optimization results on the suite
runtime_*      Section 5 runtime scaling remarks
ablations      Eq-2 normalization and sample-width-count ablations
charge_sweep   the paper's "future versions" charge-axis extension
=============  =====================================================

Each experiment is a pure function returning a result dataclass, plus a
``main()`` that prints the paper-style table; benchmarks and tests call
the functions, humans run ``python -m repro.experiments.<module>``.
"""

from repro.experiments.common import ExperimentScale

__all__ = ["ExperimentScale"]
