"""TAB1 — SERTOPT optimization results (the paper's Table 1).

For each circuit: speed-optimized baseline at (L=70 nm, 1 V, 0.2 V),
SERTOPT with the per-circuit VDD/Vth menus the paper lists, channel
lengths {70, 100, 150, 250, 300} nm, then the Table-1 columns:

* VDDs / Vths used in the optimized circuit,
* area, energy and delay ratios versus the baseline,
* decrease in unreliability computed by ASERTA (full input statistics),
* decrease computed by ASERTA and by the transient reference on the
  same 50 random vectors (the validation pair; the paper skips SPICE on
  the two largest circuits, and the fast scales here skip likewise).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reports import format_percent, format_ratio, format_table
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaConfig
from repro.core.cost import CostWeights
from repro.core.sertopt import Sertopt, SertoptConfig, SertoptResult
from repro.experiments.common import ExperimentScale
from repro.spice.harness import vector_average_output_widths
from repro.tech.library import CellLibrary

#: Per-circuit VDD/Vth menus, exactly as listed in the paper's Table 1
#: ("-" rows fall back to the full menu).
PAPER_MENUS: dict[str, tuple[tuple[float, ...], tuple[float, ...]]] = {
    "c432": ((0.8, 1.0), (0.2, 0.3)),
    "c499": ((0.8, 1.0, 1.2), (0.1, 0.2, 0.3)),
    "c1908": ((0.8, 1.0, 1.2), (0.1, 0.2, 0.3)),
    "c2670": ((0.8, 1.0, 1.2), (0.1, 0.2, 0.3)),
    "c3540": ((0.8, 1.0), (0.2, 0.3)),
    "c5315": ((0.8, 1.0, 1.2), (0.1, 0.2, 0.3)),
    "c7552": ((0.8, 1.0), (0.2, 0.3)),
}

#: Paper Table 1 reference values: (area, energy, delay, dU_aserta) —
#: used by EXPERIMENTS.md and the shape assertions in the test suite.
PAPER_RESULTS: dict[str, tuple[float, float, float, float]] = {
    "c432": (2.0, 2.2, 1.23, 0.40),
    "c499": (1.0, 1.0, 1.0, 0.00),
    "c1908": (1.2, 1.8, 0.98, 0.18),
    "c2670": (1.05, 1.3, 0.98, 0.21),
    "c3540": (1.5, 1.6, 1.03, 0.47),
    "c5315": (1.2, 1.9, 0.98, 0.26),
    "c7552": (1.6, 1.6, 1.07, 0.18),
}


@dataclass(frozen=True)
class Table1Row:
    """One line of Table 1."""

    circuit: str
    vdds_used: tuple[float, ...]
    vths_used: tuple[float, ...]
    area_ratio: float
    energy_ratio: float
    delay_ratio: float
    du_aserta: float
    du_aserta_vectors: float | None
    du_reference_vectors: float | None
    result: SertoptResult


@dataclass(frozen=True)
class Table1Result:
    rows: list[Table1Row]

    def row(self, circuit: str) -> Table1Row:
        for row in self.rows:
            if row.circuit == circuit:
                return row
        raise KeyError(circuit)


def optimize_circuit(
    name: str,
    scale: ExperimentScale,
    weights: CostWeights | None = None,
    seed: int = 0,
    batched: bool = True,
) -> SertoptResult:
    """Run SERTOPT on one circuit with its paper menu.

    ``batched`` selects the population-evaluated objective (the
    default; the coordinate driver's Table-1 numbers are identical
    either way, only faster) — ``False`` forces the original
    one-candidate-at-a-time loop for comparisons.
    """
    circuit = iscas85_circuit(name)
    vdds, vths = PAPER_MENUS.get(name, ((0.8, 1.0, 1.2), (0.1, 0.2, 0.3)))
    library = CellLibrary.paper_library(vdds=vdds, vths=vths)
    config = SertoptConfig(
        weights=weights if weights is not None else CostWeights(),
        max_evaluations=scale.optimizer_evaluations,
        seed=seed,
        batched_evaluation=batched,
        aserta=AsertaConfig(
            n_vectors=scale.sensitization_vectors, seed=seed
        ),
    )
    return Sertopt(circuit, library=library, config=config).optimize()


def _vector_reduction(
    name: str, result: SertoptResult, scale: ExperimentScale, use_tables: bool,
    seed: int = 11,
) -> float:
    """1 - U_opt/U_base with both U's measured on the same random vectors."""
    circuit = iscas85_circuit(name)
    base = vector_average_output_widths(
        circuit,
        result.baseline_assignment,
        n_vectors=scale.reference_vectors,
        seed=seed,
        use_tables=use_tables,
    )
    optimized = vector_average_output_widths(
        circuit,
        result.optimized_assignment,
        n_vectors=scale.reference_vectors,
        seed=seed,
        use_tables=use_tables,
    )
    if base <= 0.0:
        return 0.0
    return (base - optimized) / base


def run_table1(
    scale: ExperimentScale | None = None,
    circuits: tuple[str, ...] | None = None,
    weights: CostWeights | None = None,
) -> Table1Result:
    """Regenerate Table 1 at the requested scale."""
    scale = scale if scale is not None else ExperimentScale.fast()
    names = circuits if circuits is not None else scale.circuits
    rows: list[Table1Row] = []
    for name in names:
        result = optimize_circuit(name, scale, weights=weights)
        with_reference = name in scale.reference_circuits
        du_vec = (
            _vector_reduction(name, result, scale, use_tables=True)
            if with_reference
            else None
        )
        du_ref = (
            _vector_reduction(name, result, scale, use_tables=False)
            if with_reference
            else None
        )
        rows.append(
            Table1Row(
                circuit=name,
                vdds_used=result.vdds_used(),
                vths_used=result.vths_used(),
                area_ratio=result.area_ratio,
                energy_ratio=result.energy_ratio,
                delay_ratio=result.delay_ratio,
                du_aserta=result.unreliability_reduction,
                du_aserta_vectors=du_vec,
                du_reference_vectors=du_ref,
                result=result,
            )
        )
    return Table1Result(rows=rows)


def main() -> None:
    result = run_table1(ExperimentScale.medium())
    table_rows = []
    for row in result.rows:
        table_rows.append(
            (
                row.circuit,
                ", ".join(str(v) for v in row.vdds_used),
                ", ".join(str(v) for v in row.vths_used),
                format_ratio(row.area_ratio),
                format_ratio(row.energy_ratio),
                format_ratio(row.delay_ratio),
                format_percent(row.du_aserta),
                "-" if row.du_aserta_vectors is None
                else format_percent(row.du_aserta_vectors),
                "-" if row.du_reference_vectors is None
                else format_percent(row.du_reference_vectors),
            )
        )
    print(
        format_table(
            (
                "Circuit", "VDDs used", "Vths used", "Area", "Energy",
                "Delay", "dU ASERTA", "dU ASERTA@vec", "dU ref@vec",
            ),
            table_rows,
            title="TAB1 — SERTOPT optimization results",
        )
    )


if __name__ == "__main__":
    main()
