"""ABL-Q — injected-charge sweep (the paper's "future versions" extension).

The paper fixes the injected charge ("Although in reality the amount of
charge injected (or removed) depends on the energy of the strike, for
simplicity ASERTA assumes a fixed amount of injected charge.  Future
versions of ASERTA will have look-up tables for different amounts of
injected charge.").  This repository's glitch tables already carry a
charge axis; this experiment sweeps it, showing circuit unreliability
as a function of strike energy — monotonically non-decreasing, with a
threshold below which the critical charge masks everything.

The sweep runs through the campaign engine: the charge axis is one
dimension of a :class:`~repro.campaign.spec.CampaignSpec` grid, so the
structural pass is computed once and, given a persistent store, already-
computed charges are skipped on re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reports import format_table
from repro.campaign.environments import SEA_LEVEL
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.experiments.common import ExperimentScale

DEFAULT_CHARGES_FC: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class ChargeSweepResult:
    circuit: str
    totals_by_charge: dict[float, float]

    def is_nondecreasing(self) -> bool:
        values = [self.totals_by_charge[q] for q in sorted(self.totals_by_charge)]
        return all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def run_charge_sweep(
    circuit_name: str = "c432",
    charges_fc: tuple[float, ...] = DEFAULT_CHARGES_FC,
    scale: ExperimentScale | None = None,
    store: ResultStore | None = None,
) -> ChargeSweepResult:
    """Total unreliability versus injected charge, via the campaign engine.

    Pass a file-backed ``store`` to make repeated sweeps incremental.
    """
    scale = scale if scale is not None else ExperimentScale.fast()
    spec = CampaignSpec(
        circuits=(circuit_name,),
        charges_fc=tuple(dict.fromkeys(charges_fc)),
        environments=(SEA_LEVEL,),
        n_vectors=scale.sensitization_vectors,
        seed=5,
    )
    outcome = CampaignRunner(spec, store=store).run(parallel=False)
    totals = {
        result.key.charge_fc: result.unreliability_total
        for result in outcome.results
    }
    return ChargeSweepResult(circuit=circuit_name, totals_by_charge=totals)


def main() -> None:
    result = run_charge_sweep()
    print(
        format_table(
            ("charge (fC)", "total U"),
            [(q, result.totals_by_charge[q]) for q in sorted(result.totals_by_charge)],
            title=f"ABL-Q — unreliability vs injected charge on {result.circuit}",
        )
    )


if __name__ == "__main__":
    main()
