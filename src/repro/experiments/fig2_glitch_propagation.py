"""FIG2 — glitch *propagation* characteristics of an inverter.

Paper Fig 2: SPICE-simulated width, at an inverter's output, of a 50 ps
glitch arriving at its input, swept over the same four knobs as Fig 1.
The qualitative result is Fig 1's mirror image — every knob that slows
the gate *shrinks* the propagated glitch (better electrical masking) —
and together the two figures motivate the paper's thesis that gate
"softness" cannot be judged by either characteristic alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.reports import format_table
from repro.circuit.gate import GateType
from repro.experiments.fig1_glitch_generation import (
    LENGTH_SWEEP,
    SIZE_SWEEP,
    SweepSeries,
    VDD_SWEEP,
    VTH_SWEEP,
)
from repro.tech.glitch import propagate_width
from repro.tech.library import CellParams
from repro.tech.table_builder import default_tables

#: Input glitch duration used in the paper's Fig 2.
INPUT_WIDTH_PS = 50.0

#: Output load for the Fig-2 inverter.  Heavier than Fig 1's so the
#: nominal delay sits in Equation 1's attenuating region (d ~ w/2);
#: with a feather-light load the 50 ps glitch would pass unattenuated
#: for every knob setting and the figure would be flat.
LOAD_FF = 2.0


@dataclass(frozen=True)
class Fig2Result:
    input_width_ps: float
    series: dict[str, SweepSeries]


def _propagated(params: CellParams, input_width_ps: float) -> float:
    tables = default_tables()
    delay = tables.delay_ps(GateType.NOT, 1, params, LOAD_FF, 20.0)
    return propagate_width(input_width_ps, delay)


def run_fig2(input_width_ps: float = INPUT_WIDTH_PS) -> Fig2Result:
    """Regenerate the four sweeps of Fig 2."""
    nominal = CellParams()
    sweeps = {
        "size": (SIZE_SWEEP, lambda v: replace(nominal, size=float(v))),
        "length_nm": (LENGTH_SWEEP, lambda v: replace(nominal, length_nm=float(v))),
        "vdd": (VDD_SWEEP, lambda v: replace(nominal, vdd=float(v))),
        "vth": (VTH_SWEEP, lambda v: replace(nominal, vth=float(v))),
    }
    series = {}
    for knob, (values, make) in sweeps.items():
        widths = tuple(_propagated(make(v), input_width_ps) for v in values)
        series[knob] = SweepSeries(
            knob=knob, values=tuple(float(v) for v in values), widths_ps=widths
        )
    return Fig2Result(input_width_ps=input_width_ps, series=series)


def main() -> None:
    result = run_fig2()
    print(
        "FIG2 — propagated glitch width, inverter, "
        f"{result.input_width_ps} ps input glitch"
    )
    for knob, sweep in result.series.items():
        rows = list(zip(sweep.values, sweep.widths_ps))
        print(format_table((knob, "width_ps"), rows))
        print(f"  -> width is {sweep.trend()} in {knob}\n")


if __name__ == "__main__":
    main()
