"""SERTOPT: Soft-ERror Tolerance OPTimization (paper Section 4).

One :meth:`Sertopt.optimize` call performs the paper's flow:

1. start from a speed-optimized baseline at the nominal operating point
   (L = 70 nm, VDD = 1 V, Vth = 0.2 V);
2. build the path topology matrix and its nullspace
   (:class:`repro.core.delay_assignment.DelaySpace`), so delay
   assignments can vary without disturbing (represented) path delays;
3. search the nullspace coefficients with the configured optimizer;
   every candidate is matched onto the discrete cell library in reverse
   topological order (:class:`repro.core.matching.MatchingEngine`) and
   scored with the Equation-5 cost
   (:class:`repro.core.cost.CostEvaluator`), whose unreliability term
   comes from a full ASERTA analysis;
4. report baseline-vs-optimized ratios — the columns of the paper's
   Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import Circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.baseline import size_for_speed
from repro.core.cost import CostBreakdown, CostEvaluator, CostWeights
from repro.core.delay_assignment import DelaySpace
from repro.core.matching import MatchingEngine
from repro.core.optimizers import OptimizeResult, run_optimizer
from repro.engine.engine import AnalysisEngine
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellLibrary, ParameterAssignment
from repro.tech.table_builder import TechnologyTables
from repro.telemetry import resolve


@dataclass(frozen=True)
class SertoptConfig:
    """SERTOPT knobs (defaults sized for ISCAS'85-scale circuits)."""

    weights: CostWeights = field(default_factory=CostWeights)
    #: Optimizer: "coordinate" (systematic +-probes along each
    #: timing-neutral direction; deterministic and the most robust on
    #: the piecewise-constant matched objective), "annealing", or
    #: "slsqp" (the paper's SQP, with a coarse finite-difference step).
    optimizer: str = "coordinate"
    #: Cost evaluations allowed for the search.
    max_evaluations: int = 150
    #: Paths used to build the topology matrix (exhaustive below this).
    max_paths: int = 800
    #: Cap on the nullspace dimension explored (None = full nullspace).
    max_dimension: int | None = 24
    #: Half-width of the box on nullspace coefficients, in ps.  Large on
    #: purpose: electrical masking only bites once gates on glitch routes
    #: are slowed into the d ~ w/2 regime, hundreds of ps for 16 fC
    #: strikes, and the library's slow corner (L = 300 nm, 0.8 V,
    #: Vth = 0.3 V) is reachable only with swings of that order.
    coefficient_bound_ps: float = 300.0
    #: Seed for path sampling and stochastic optimizers.
    seed: int = 0
    #: Evaluate candidate populations through the batched array pipeline
    #: (matching, electrical annotation, masking sweep and Equation-5
    #: metrics all stacked over a candidate axis).  The default
    #: ``"coordinate"`` driver visits identical points and returns an
    #: identical :class:`OptimizeResult` either way; the stochastic
    #: ``"annealing"`` driver takes a *different* (population-based)
    #: seeded walk when batched, and ``"slsqp"`` computes its gradient
    #: from an explicitly batched finite difference — pin
    #: ``batched_evaluation=False`` to reproduce pre-batching seeded
    #: runs of those two drivers (also the benchmark baseline).
    batched_evaluation: bool = True
    #: Schedule of the population matcher: the default scores one
    #: ``(lanes, gates, cells)`` block per reverse logic level;
    #: ``False`` pins the original per-gate walk.  Both choose bitwise
    #: identical cells (differentially tested), so this only trades
    #: wall-clock — the flag exists for benchmarking the two schedules
    #: against each other.
    level_batched_matching: bool = True
    #: Probes evaluated per population call by the batched drivers
    #: (coordinate probe chunk / annealing proposal batch).  ``None``
    #: keeps each driver's default; the visited points are identical
    #: for every value — larger batches only widen the score blocks.
    probe_batch: int | None = None
    #: ASERTA settings used inside the cost loop.
    aserta: AsertaConfig = field(default_factory=AsertaConfig)

    def __post_init__(self) -> None:
        if self.max_evaluations < 1:
            raise OptimizationError("max_evaluations must be >= 1")
        if self.coefficient_bound_ps <= 0.0:
            raise OptimizationError("coefficient_bound_ps must be > 0")
        if self.probe_batch is not None and self.probe_batch < 1:
            raise OptimizationError(
                f"probe_batch must be >= 1, got {self.probe_batch}"
            )


@dataclass(frozen=True)
class SertoptResult:
    """Everything one SERTOPT run produces (one Table-1 row).

    ``baseline``/``optimized`` are Equation-5 :class:`CostBreakdown`\\ s
    of the speed-optimized starting point and the returned assignment;
    the ``*_ratio`` properties are optimized-over-baseline (delay,
    energy, area — dimensionless), and
    :attr:`unreliability_reduction` is the fractional decrease in U,
    the paper's headline column.  ``runtime_s`` is wall seconds for the
    whole flow.
    """

    circuit_name: str
    baseline_assignment: ParameterAssignment
    optimized_assignment: ParameterAssignment
    baseline: CostBreakdown
    optimized: CostBreakdown
    optimizer_result: OptimizeResult
    delay_space_info: dict[str, int]
    runtime_s: float

    @property
    def unreliability_reduction(self) -> float:
        """Fractional decrease in U (the paper's headline column)."""
        return self.optimized.unreliability_reduction

    @property
    def area_ratio(self) -> float:
        return self.optimized.area_ratio

    @property
    def energy_ratio(self) -> float:
        return self.optimized.energy_ratio

    @property
    def delay_ratio(self) -> float:
        return self.optimized.delay_ratio

    def vdds_used(self) -> tuple[float, ...]:
        return self.optimized_assignment.distinct_vdds()

    def vths_used(self) -> tuple[float, ...]:
        return self.optimized_assignment.distinct_vths()


class _BatchedObjective:
    """Population form of the SERTOPT objective.

    Implements the :data:`repro.core.optimizers.BatchObjective`
    protocol: a ``(B, D)`` stack of nullspace coefficient vectors maps
    to delay-target vectors (the exact per-candidate arithmetic of
    ``DelaySpace.assigned_delays``), is matched as one batch —
    delta-aware against the round-0 match of the ``base`` iterate when
    the driver supplies one — and is costed through
    :meth:`CostEvaluator.evaluate_batch`, which rides the analyzer's
    ``analyze_many`` array pass.  Values are cached under the same
    rounded-coefficient keys as the serial objective, so speculative
    driver probes never recompute a visited point.
    """

    #: Round-0 reference matches memoized per base point.
    _MAX_REFS = 8

    def __init__(
        self,
        circuit: Circuit,
        space: DelaySpace,
        engine: MatchingEngine,
        evaluator: CostEvaluator,
        ramps: dict[str, float],
        repair_cap_ps: float,
        baseline: ParameterAssignment,
    ) -> None:
        self.space = space
        self.engine = engine
        self.evaluator = evaluator
        self.repair_cap_ps = repair_cap_ps
        self.baseline = baseline
        indexed = circuit.indexed()
        self.n_signals = indexed.n_signals
        self.space_rows = np.array(
            [indexed.index[name] for name in space.gate_order], dtype=np.int64
        )
        self.ramp_row = engine._ramp_row(ramps)
        self.cache: dict[bytes, float] = {}
        self._references: dict[bytes, tuple[np.ndarray, object]] = {}

    @staticmethod
    def _key(x: np.ndarray) -> bytes:
        return np.round(x, 4).tobytes()

    def _target_row(self, x: np.ndarray) -> np.ndarray:
        """Dense per-row delay targets for one coefficient vector —
        bitwise the values of ``space.assigned_delays(x)``."""
        from repro.core.delay_assignment import MIN_DELAY_PS

        vector = np.maximum(
            self.space.base + self.space.delta(x), MIN_DELAY_PS
        )
        out = np.zeros(self.n_signals)
        out[self.space_rows] = vector
        return out

    def _reference(self, base: np.ndarray):
        key = self._key(np.asarray(base, dtype=np.float64))
        ref = self._references.get(key)
        if ref is None:
            targets = self._target_row(np.asarray(base, dtype=np.float64))
            state = self.engine.match_batch(
                targets[np.newaxis, :], self.ramp_row, anchor=self.baseline
            )
            ref = (targets, state)
            if len(self._references) >= self._MAX_REFS:
                self._references.pop(next(iter(self._references)))
            self._references[key] = ref
        return ref

    def single(self, x: np.ndarray) -> float:
        """Scalar objective routed through the batched pipeline, so
        every value a batched search consumes comes from one code path."""
        return float(self(np.asarray(x, dtype=np.float64)[np.newaxis, :])[0])

    def __call__(
        self, X: np.ndarray, base: np.ndarray | None = None
    ) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        values = np.empty(X.shape[0])
        lanes_by_key: dict[bytes, list[int]] = {}
        for lane in range(X.shape[0]):
            lanes_by_key.setdefault(self._key(X[lane]), []).append(lane)
        pending: list[tuple[bytes, list[int]]] = []
        for key, lanes in lanes_by_key.items():
            cached = self.cache.get(key)
            if cached is not None:
                values[lanes] = cached
            else:
                pending.append((key, lanes))
        if pending:
            targets = np.stack(
                [self._target_row(X[lanes[0]]) for __, lanes in pending]
            )
            # The delta fast path pays off for the per-gate matcher (it
            # skips whole gates); the level-batched matcher's full pass
            # costs about the same as its delta pass on coordinate-probe
            # populations, so skipping the reference match is the faster
            # schedule there.  Cells are bitwise identical either way.
            use_reference = base is not None and not self.engine.level_batched
            reference = self._reference(base) if use_reference else None
            state = self.engine.match_with_timing_batch(
                targets,
                self.ramp_row,
                self.repair_cap_ps,
                anchor=self.baseline,
                reference=reference,
            )
            totals = self.evaluator.evaluate_batch(
                params=state.param_arrays()
            )
            for (key, lanes), value in zip(pending, totals):
                self.cache[key] = float(value)
                values[lanes] = value
        return values


class Sertopt:
    """The SERTOPT flow bound to one circuit and one cell library.

    Construct with a :class:`~repro.circuit.netlist.Circuit`, optionally
    a :class:`~repro.tech.library.CellLibrary` (default: the paper's
    Table-1 library), a :class:`SertoptConfig` and a shared
    :class:`~repro.engine.engine.AnalysisEngine` (lets the
    sizing-invariant structural pass come from the artifact cache);
    then call :meth:`optimize`, which returns a :class:`SertoptResult`.
    One instance may optimize repeatedly — the analyzer, compiled
    matching plans and cached path sample are reused across calls.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) records the
    ``sertopt.optimize`` span tree — setup, delay-space construction,
    the optimizer search and the final match — and is threaded through
    the analyzer, the matching engine and the optimizer driver so their
    spans nest underneath.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary | None = None,
        config: SertoptConfig | None = None,
        tables: TechnologyTables | None = None,
        analyzer: AsertaAnalyzer | None = None,
        engine: AnalysisEngine | None = None,
        telemetry=None,
    ) -> None:
        self.circuit = circuit
        self.library = library if library is not None else CellLibrary.paper_library()
        self.config = config if config is not None else SertoptConfig()
        self._telemetry = telemetry
        self.telemetry = resolve(telemetry)
        # The engine is where the inner loop's structural reuse lives:
        # P_ij and the Equation-2 shares are sizing-invariant, so every
        # candidate assignment the optimizer scores shares the one
        # cached structural pass — and an engine warmed by an earlier
        # campaign or analyzer hands it over without any simulation.
        self.analyzer = (
            analyzer
            if analyzer is not None
            else AsertaAnalyzer(
                circuit, config=self.config.aserta, tables=tables,
                engine=engine, telemetry=telemetry,
            )
        )
        if analyzer is not None and telemetry is not None:
            # A pre-built (possibly cached) analyzer keeps its state but
            # records into this run's telemetry.
            self.analyzer.telemetry = self.telemetry

    def optimize(
        self, baseline: ParameterAssignment | None = None
    ) -> SertoptResult:
        """Run the full SERTOPT flow; see the module docstring."""
        started = time.perf_counter()
        config = self.config
        with self.telemetry.span(
            "sertopt.optimize",
            circuit=self.circuit.name,
            optimizer=config.optimizer,
        ):
            return self._optimize(baseline, started)

    def _optimize(
        self, baseline: ParameterAssignment | None, started: float
    ) -> SertoptResult:
        config = self.config
        tel = self.telemetry
        with tel.span("sertopt.setup"):
            if baseline is None:
                baseline = size_for_speed(self.circuit, self.library)

            evaluator = CostEvaluator(
                self.analyzer, baseline, weights=config.weights
            )
            # Delay targets and ramps come from the same continuous model
            # the matching engine evaluates (the paper's "SPICE library"),
            # so the zero perturbation reproduces the baseline cells
            # exactly; the cost's unreliability term still runs through
            # ASERTA's tables.
            target_elec = CircuitElectrical(
                self.circuit, baseline, use_tables=False
            )
            engine = MatchingEngine(
                self.circuit,
                self.library,
                level_batched=config.level_batched_matching,
                telemetry=self._telemetry,
            )
            ramps = dict(target_elec.input_ramp_ps)
            baseline_delay = analyze_timing(
                self.circuit, target_elec.delay_ps
            ).delay_ps
            repair_cap_ps = baseline_delay * config.weights.timing_cap
        with tel.span("sertopt.delay_space"):
            space = DelaySpace(
                self.circuit,
                target_elec.delay_ps,
                max_paths=config.max_paths,
                seed=config.seed,
                max_dimension=config.max_dimension,
            )

        if space.dimension == 0:
            # No timing-neutral direction exists (e.g. one path per gate):
            # the baseline is returned unchanged.
            breakdown = evaluator.evaluate(baseline)
            return SertoptResult(
                circuit_name=self.circuit.name,
                baseline_assignment=baseline,
                optimized_assignment=baseline,
                baseline=evaluator.baseline_breakdown,
                optimized=breakdown,
                optimizer_result=OptimizeResult(
                    x=np.zeros(0), value=breakdown.total, evaluations=1
                ),
                delay_space_info=space.describe(),
                runtime_s=time.perf_counter() - started,
            )

        cache: dict[bytes, float] = {}

        def objective(x: np.ndarray) -> float:
            key = np.round(x, 4).tobytes()
            cached = cache.get(key)
            if cached is not None:
                return cached
            targets = space.assigned_delays(x)
            assignment = engine.match_with_timing(
                targets, ramps, repair_cap_ps, anchor=baseline
            )
            value = evaluator.evaluate(assignment).total
            cache[key] = value
            return value

        objective_batch = None
        # The population pipeline needs the stacked-LUT table path; the
        # continuous-model analyzer (use_tables=False) and gate-less
        # circuits keep the serial objective, which supports both.
        can_batch = (
            self.analyzer.config.use_tables
            and bool(self.circuit.indexed().group_pairs)
        )
        if config.batched_evaluation and can_batch:
            objective_batch = _BatchedObjective(
                self.circuit, space, engine, evaluator,
                ramps, repair_cap_ps, baseline,
            )
            objective = objective_batch.single

        x0 = np.zeros(space.dimension)
        probe_batch = config.probe_batch
        if (
            probe_batch is None
            and objective_batch is not None
            and config.optimizer == "coordinate"
            and config.level_batched_matching
        ):
            # Narrower probe chunks suit the level-batched matcher: its
            # per-level cost is nearly lane-count-independent, so small
            # populations waste less speculative work when a probe is
            # accepted mid-chunk.  Visited points are identical for any
            # chunk size (replay accounting); this is wall-clock only.
            probe_batch = 4
        search = run_optimizer(
            config.optimizer,
            objective,
            x0,
            bounds_halfwidth=config.coefficient_bound_ps,
            max_evaluations=config.max_evaluations,
            seed=config.seed,
            objective_batch=objective_batch,
            probe_batch=probe_batch,
            telemetry=self._telemetry,
        )

        with tel.span("sertopt.final_match"):
            best_assignment = engine.match_with_timing(
                space.assigned_delays(search.x), ramps, repair_cap_ps,
                anchor=baseline,
            )
            best_breakdown = evaluator.evaluate(best_assignment)
            # Never return something worse than the untouched baseline.
            if best_breakdown.total > evaluator.weights.total_weight:
                best_assignment = baseline
                best_breakdown = evaluator.evaluate(baseline)

        return SertoptResult(
            circuit_name=self.circuit.name,
            baseline_assignment=baseline,
            optimized_assignment=best_assignment,
            baseline=evaluator.baseline_breakdown,
            optimized=best_breakdown,
            optimizer_result=search,
            delay_space_info=space.describe(),
            runtime_s=time.perf_counter() - started,
        )
