"""SERTOPT: Soft-ERror Tolerance OPTimization (paper Section 4).

One :meth:`Sertopt.optimize` call performs the paper's flow:

1. start from a speed-optimized baseline at the nominal operating point
   (L = 70 nm, VDD = 1 V, Vth = 0.2 V);
2. build the path topology matrix and its nullspace
   (:class:`repro.core.delay_assignment.DelaySpace`), so delay
   assignments can vary without disturbing (represented) path delays;
3. search the nullspace coefficients with the configured optimizer;
   every candidate is matched onto the discrete cell library in reverse
   topological order (:class:`repro.core.matching.MatchingEngine`) and
   scored with the Equation-5 cost
   (:class:`repro.core.cost.CostEvaluator`), whose unreliability term
   comes from a full ASERTA analysis;
4. report baseline-vs-optimized ratios — the columns of the paper's
   Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import Circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.baseline import size_for_speed
from repro.core.cost import CostBreakdown, CostEvaluator, CostWeights
from repro.core.delay_assignment import DelaySpace
from repro.core.matching import MatchingEngine
from repro.core.optimizers import OptimizeResult, run_optimizer
from repro.engine.engine import AnalysisEngine
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellLibrary, ParameterAssignment
from repro.tech.table_builder import TechnologyTables


@dataclass(frozen=True)
class SertoptConfig:
    """SERTOPT knobs (defaults sized for ISCAS'85-scale circuits)."""

    weights: CostWeights = field(default_factory=CostWeights)
    #: Optimizer: "coordinate" (systematic +-probes along each
    #: timing-neutral direction; deterministic and the most robust on
    #: the piecewise-constant matched objective), "annealing", or
    #: "slsqp" (the paper's SQP, with a coarse finite-difference step).
    optimizer: str = "coordinate"
    #: Cost evaluations allowed for the search.
    max_evaluations: int = 150
    #: Paths used to build the topology matrix (exhaustive below this).
    max_paths: int = 800
    #: Cap on the nullspace dimension explored (None = full nullspace).
    max_dimension: int | None = 24
    #: Half-width of the box on nullspace coefficients, in ps.  Large on
    #: purpose: electrical masking only bites once gates on glitch routes
    #: are slowed into the d ~ w/2 regime, hundreds of ps for 16 fC
    #: strikes, and the library's slow corner (L = 300 nm, 0.8 V,
    #: Vth = 0.3 V) is reachable only with swings of that order.
    coefficient_bound_ps: float = 300.0
    #: Seed for path sampling and stochastic optimizers.
    seed: int = 0
    #: ASERTA settings used inside the cost loop.
    aserta: AsertaConfig = field(default_factory=AsertaConfig)

    def __post_init__(self) -> None:
        if self.max_evaluations < 1:
            raise OptimizationError("max_evaluations must be >= 1")
        if self.coefficient_bound_ps <= 0.0:
            raise OptimizationError("coefficient_bound_ps must be > 0")


@dataclass(frozen=True)
class SertoptResult:
    """Everything one SERTOPT run produces (one Table-1 row)."""

    circuit_name: str
    baseline_assignment: ParameterAssignment
    optimized_assignment: ParameterAssignment
    baseline: CostBreakdown
    optimized: CostBreakdown
    optimizer_result: OptimizeResult
    delay_space_info: dict[str, int]
    runtime_s: float

    @property
    def unreliability_reduction(self) -> float:
        """Fractional decrease in U (the paper's headline column)."""
        return self.optimized.unreliability_reduction

    @property
    def area_ratio(self) -> float:
        return self.optimized.area_ratio

    @property
    def energy_ratio(self) -> float:
        return self.optimized.energy_ratio

    @property
    def delay_ratio(self) -> float:
        return self.optimized.delay_ratio

    def vdds_used(self) -> tuple[float, ...]:
        return self.optimized_assignment.distinct_vdds()

    def vths_used(self) -> tuple[float, ...]:
        return self.optimized_assignment.distinct_vths()


class Sertopt:
    """Optimizer bound to one circuit and one cell library."""

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary | None = None,
        config: SertoptConfig | None = None,
        tables: TechnologyTables | None = None,
        analyzer: AsertaAnalyzer | None = None,
        engine: AnalysisEngine | None = None,
    ) -> None:
        self.circuit = circuit
        self.library = library if library is not None else CellLibrary.paper_library()
        self.config = config if config is not None else SertoptConfig()
        # The engine is where the inner loop's structural reuse lives:
        # P_ij and the Equation-2 shares are sizing-invariant, so every
        # candidate assignment the optimizer scores shares the one
        # cached structural pass — and an engine warmed by an earlier
        # campaign or analyzer hands it over without any simulation.
        self.analyzer = (
            analyzer
            if analyzer is not None
            else AsertaAnalyzer(
                circuit, config=self.config.aserta, tables=tables,
                engine=engine,
            )
        )

    def optimize(
        self, baseline: ParameterAssignment | None = None
    ) -> SertoptResult:
        """Run the full SERTOPT flow; see the module docstring."""
        started = time.perf_counter()
        config = self.config
        if baseline is None:
            baseline = size_for_speed(self.circuit, self.library)

        evaluator = CostEvaluator(
            self.analyzer, baseline, weights=config.weights
        )
        # Delay targets and ramps come from the same continuous model the
        # matching engine evaluates (the paper's "SPICE library"), so the
        # zero perturbation reproduces the baseline cells exactly; the
        # cost's unreliability term still runs through ASERTA's tables.
        target_elec = CircuitElectrical(
            self.circuit, baseline, use_tables=False
        )
        space = DelaySpace(
            self.circuit,
            target_elec.delay_ps,
            max_paths=config.max_paths,
            seed=config.seed,
            max_dimension=config.max_dimension,
        )
        engine = MatchingEngine(self.circuit, self.library)
        ramps = dict(target_elec.input_ramp_ps)
        baseline_delay = analyze_timing(
            self.circuit, target_elec.delay_ps
        ).delay_ps
        repair_cap_ps = baseline_delay * config.weights.timing_cap

        if space.dimension == 0:
            # No timing-neutral direction exists (e.g. one path per gate):
            # the baseline is returned unchanged.
            breakdown = evaluator.evaluate(baseline)
            return SertoptResult(
                circuit_name=self.circuit.name,
                baseline_assignment=baseline,
                optimized_assignment=baseline,
                baseline=evaluator.baseline_breakdown,
                optimized=breakdown,
                optimizer_result=OptimizeResult(
                    x=np.zeros(0), value=breakdown.total, evaluations=1
                ),
                delay_space_info=space.describe(),
                runtime_s=time.perf_counter() - started,
            )

        cache: dict[bytes, float] = {}

        def objective(x: np.ndarray) -> float:
            key = np.round(x, 4).tobytes()
            cached = cache.get(key)
            if cached is not None:
                return cached
            targets = space.assigned_delays(x)
            assignment = engine.match_with_timing(
                targets, ramps, repair_cap_ps, anchor=baseline
            )
            value = evaluator.evaluate(assignment).total
            cache[key] = value
            return value

        x0 = np.zeros(space.dimension)
        search = run_optimizer(
            config.optimizer,
            objective,
            x0,
            bounds_halfwidth=config.coefficient_bound_ps,
            max_evaluations=config.max_evaluations,
            seed=config.seed,
        )

        best_assignment = engine.match_with_timing(
            space.assigned_delays(search.x), ramps, repair_cap_ps, anchor=baseline
        )
        best_breakdown = evaluator.evaluate(best_assignment)
        # Never return something worse than the untouched baseline.
        if best_breakdown.total > evaluator.weights.total_weight:
            best_assignment = baseline
            best_breakdown = evaluator.evaluate(baseline)

        return SertoptResult(
            circuit_name=self.circuit.name,
            baseline_assignment=baseline,
            optimized_assignment=best_assignment,
            baseline=evaluator.baseline_breakdown,
            optimized=best_breakdown,
            optimizer_result=search,
            delay_space_info=space.describe(),
            runtime_s=time.perf_counter() - started,
        )
