"""Delay-assignment variation in the nullspace of the topology matrix.

Paper Section 4: with ``T`` the binary paths-by-gates topology matrix
and ``d`` the gate-delay vector, the path-delay vector is ``D = T d``.
Perturbations ``delta`` restricted to the nullspace of ``T`` change gate
delays without changing any path delay, so timing is preserved by
construction and the optimizer searches freely inside that subspace.

Two constructions of the subspace are provided:

* ``method="potential"`` (default) — an exact, enumeration-free basis.
  Assign a potential ``phi`` to every signal, require all fan-ins of a
  gate to share one potential (union-find merge), pin potentials of
  primary inputs and primary outputs to zero, and set
  ``delta_d(g) = phi(out(g)) - phi(fanins(g))``.  Every PI-to-PO path
  sum then telescopes to zero, so the move is timing-neutral for *all*
  paths — including the astronomically many that sampling would miss —
  and each basis vector is a sparse, local "slow these producers /
  speed their consumers" trade, the physical move SERTOPT exploits.

* ``method="svd"`` — the literal construction from the paper: build
  ``T`` from enumerated/sampled paths
  (:func:`repro.circuit.paths.collect_paths`) and take an orthonormal
  nullspace basis.  Exact when the path count is below the cap; above
  it, unsampled paths can drift (the cost's timing term polices the
  residual).  Kept for fidelity and for the ablation benchmarks.

Every potential-basis vector lies in the nullspace of *any* sampled
``T`` — a property the test suite checks — so the default method is a
strict soundness upgrade, not a departure from the paper's framework.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.linalg import null_space

from repro.circuit.netlist import Circuit
from repro.circuit.paths import collect_paths, topology_matrix
from repro.errors import OptimizationError
from repro.sta.timing import critical_path

#: Delay floor (ps): assignments are clamped here before matching.
MIN_DELAY_PS = 0.5


class DelaySpace:
    """The feasible delay-perturbation subspace for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        base_delays: Mapping[str, float],
        max_paths: int = 800,
        seed: int = 0,
        max_dimension: int | None = None,
        method: str = "potential",
    ) -> None:
        if method not in ("potential", "svd"):
            raise OptimizationError(
                f"unknown delay-space method {method!r}; use 'potential' or 'svd'"
            )
        self.circuit = circuit
        self.method = method
        self.gate_order = tuple(
            name for name in circuit.topological_order()
            if not circuit.gate(name).is_input
        )
        self._gate_index = {name: i for i, name in enumerate(self.gate_order)}
        self.base = np.array(
            [float(base_delays[name]) for name in self.gate_order]
        )
        if np.any(self.base < 0.0):
            raise OptimizationError("base delays must be non-negative")

        critical = critical_path(circuit, dict(base_delays))
        self.paths = collect_paths(
            circuit, max_paths=max_paths, seed=seed, extra=[critical]
        )
        self.matrix = topology_matrix(self.paths, self.gate_order)

        if method == "potential":
            basis = self._potential_basis()
        else:
            basis = null_space(self.matrix)
            if basis.size:
                # Normalize to unit max-entry so one coefficient unit is
                # one picosecond on the most-affected gate.
                peaks = np.max(np.abs(basis), axis=0)
                basis = basis / np.where(peaks > 0.0, peaks, 1.0)
        if max_dimension is not None and basis.shape[1] > max_dimension:
            basis = basis[:, :max_dimension]
        self.basis = basis

    # ------------------------------------------------------------------
    # Potential-based construction
    # ------------------------------------------------------------------

    def _potential_basis(self) -> np.ndarray:
        """Sparse timing-exact basis from signal potentials.

        Signals are merged with union-find so that all fan-ins of every
        gate share one class; classes containing a primary input and the
        classes of primary-output signals are pinned to potential zero.
        Each remaining free class yields one direction: +1 ps on every
        gate producing a signal of the class, -1 ps on every gate
        consuming the class.  Directions are ordered by decreasing
        leverage (number of gates touched).
        """
        circuit = self.circuit
        parent: dict[str, str] = {name: name for name in circuit.signal_names()}

        def find(name: str) -> str:
            root = name
            while parent[root] != root:
                root = parent[root]
            while parent[name] != root:
                parent[name], name = root, parent[name]
            return root

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for gate in circuit.gates():
            first = gate.fanins[0]
            for other in gate.fanins[1:]:
                union(first, other)

        pinned: set[str] = set()
        for name in circuit.inputs:
            pinned.add(find(name))
        for name in circuit.outputs:
            pinned.add(find(name))

        columns: list[np.ndarray] = []
        class_members: dict[str, list[str]] = {}
        for name in circuit.signal_names():
            class_members.setdefault(find(name), []).append(name)

        for root, members in class_members.items():
            if root in pinned:
                continue
            column = np.zeros(len(self.gate_order))
            touched = 0
            member_set = set(members)
            for signal in members:
                index = self._gate_index.get(signal)
                if index is not None:
                    column[index] += 1.0  # producer of a class signal
                    touched += 1
            for gate in circuit.gates():
                if gate.fanins and gate.fanins[0] in member_set:
                    column[self._gate_index[gate.name]] -= 1.0
                    touched += 1
            if np.any(column != 0.0):
                columns.append(column)
        if not columns:
            return np.zeros((len(self.gate_order), 0))
        columns.sort(key=lambda c: int(np.count_nonzero(c)), reverse=True)
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Number of independent timing-neutral delay directions."""
        return int(self.basis.shape[1])

    def delta(self, coefficients: np.ndarray) -> np.ndarray:
        """``delta = N x`` — a timing-neutral delay perturbation."""
        x = np.asarray(coefficients, dtype=np.float64)
        if x.shape != (self.dimension,):
            raise OptimizationError(
                f"expected {self.dimension} coefficients, got shape {x.shape}"
            )
        if self.dimension == 0:
            return np.zeros_like(self.base)
        return self.basis @ x

    def assigned_delays(self, coefficients: np.ndarray) -> dict[str, float]:
        """Per-gate delay targets ``d + N x``, clamped to a positive floor."""
        vector = np.maximum(self.base + self.delta(coefficients), MIN_DELAY_PS)
        return {
            name: float(vector[i]) for name, i in self._gate_index.items()
        }

    def path_delay_residual(self, coefficients: np.ndarray) -> float:
        """Largest |change| over represented path delays (0 by design,
        up to the MIN_DELAY clamp)."""
        if self.dimension == 0:
            return 0.0
        return float(np.max(np.abs(self.matrix @ self.delta(coefficients))))

    def describe(self) -> dict[str, int]:
        return {
            "gates": len(self.gate_order),
            "paths": len(self.paths),
            "rank": int(np.linalg.matrix_rank(self.matrix)),
            "dimension": self.dimension,
        }
