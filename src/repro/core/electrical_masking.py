"""Electrical masking: the reverse-topological expected-width pass.

This is the paper's Section 3.2 algorithm, verbatim:

1. choose ``k`` sample glitch widths ``ws_k`` (the paper uses 10);
2. walk the circuit from primary outputs back to inputs, computing for
   every gate ``i`` the expected width ``WS_ijk`` that a glitch of width
   ``ws_k`` *at i's output* would have on arrival at primary output
   ``j``:

   * a PO gate maps every sample to itself (``WS_jjk = ws_k``) and, as
     the paper specifies, contributes nothing to other outputs;
   * an internal gate attenuates each sample through each successor
     ``s`` (Equation 1 with ``s``'s delay), looks up the successor's
     expected width by linear interpolation, and combines successors
     with the Equation-2 shares ``pi_isj``;

3. the expected width ``W_ij`` for the *generated* glitch ``w_i`` is
   interpolated out of the same table.

One pass costs ``O((V + E) * k * |outputs|)``; Lemma 1 (wide glitches
arrive with expected width ``w * P_ij``) holds by construction and is
property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.netlist import Circuit
from repro.core.masking import propagation_shares, sensitization_to_input
from repro.errors import AnalysisError
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.glitch import propagate_width_array


@dataclass(frozen=True)
class ElectricalMaskingResult:
    """Expected output glitch widths for one circuit + assignment."""

    #: The k sample widths ``ws_k`` (ascending, ps).
    sample_widths: np.ndarray
    #: ``tables[i][j]`` is the length-k array ``WS_ijk``.
    tables: dict[str, dict[str, np.ndarray]]
    #: ``expected[i][j]`` is ``W_ij`` — expected width at output j for
    #: the strike-generated glitch at gate i.
    expected: dict[str, dict[str, float]]

    def expected_width(self, gate_name: str, output_name: str) -> float:
        return self.expected.get(gate_name, {}).get(output_name, 0.0)


def default_sample_widths(
    elec: CircuitElectrical, n_samples: int = 10
) -> np.ndarray:
    """Sample widths spanning "fully masked" to "propagates everywhere".

    The top sample exceeds twice the largest gate delay and the largest
    generated width, so it traverses any gate unattenuated (the Lemma-1
    regime); the bottom sample sits below the smallest delay.  Points
    are geometrically spaced, concentrating resolution where Equation 1
    is nonlinear.
    """
    if n_samples < 2:
        raise AnalysisError(f"need at least 2 sample widths, got {n_samples}")
    delays = [d for d in elec.delay_ps.values() if d > 0.0]
    widths = [w for w in elec.generated_width_ps.values()]
    if not delays:
        raise AnalysisError("circuit has no gates with positive delay")
    low = max(min(delays) * 0.5, 1e-3)
    high = max(2.2 * max(delays), 1.1 * max(widths, default=0.0), low * 4.0)
    return np.geomspace(low, high, n_samples)


def electrical_masking(
    circuit: Circuit,
    elec: CircuitElectrical,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]],
    sample_widths: np.ndarray | None = None,
) -> ElectricalMaskingResult:
    """Run the Section-3.2 pass; see the module docstring."""
    samples = (
        default_sample_widths(elec) if sample_widths is None
        else np.asarray(sample_widths, dtype=np.float64)
    )
    if samples.ndim != 1 or samples.size < 2 or np.any(np.diff(samples) <= 0.0):
        raise AnalysisError("sample widths must be a strictly increasing 1-D array")

    tables: dict[str, dict[str, np.ndarray]] = {}
    expected: dict[str, dict[str, float]] = {}
    # Interpolations are anchored at (0, 0): a vanished glitch has zero
    # expected width (plain np.interp would clamp sub-sample queries up
    # to the smallest sample's value).
    anchored_x = np.concatenate(([0.0], samples))

    def interp_anchored(query, table: np.ndarray):
        return np.interp(query, anchored_x, np.concatenate(([0.0], table)))

    for name in circuit.reverse_topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            continue

        if circuit.is_output(name):
            # Step (ii): a PO gate presents samples (and its own generated
            # glitch) directly to its latch, and nothing to other latches.
            tables[name] = {name: samples.copy()}
            expected[name] = {name: float(elec.generated_width_ps[name])}
            continue

        # Step (iii): attenuate each sample through each successor, look
        # up the successor's expected widths, combine with pi_isj.
        row = sensitized_paths.get(name, {})
        table_row: dict[str, np.ndarray] = {}
        attenuated: dict[str, np.ndarray] = {}
        interp_cache: dict[tuple[str, str], np.ndarray] = {}
        for output_name, p_ij in row.items():
            if p_ij <= 0.0:
                continue
            shares = propagation_shares(
                circuit, probabilities, sensitized_paths, name, output_name
            )
            if not shares:
                continue
            accumulated = np.zeros_like(samples)
            for successor, share in shares.items():
                key = (successor, output_name)
                contribution = interp_cache.get(key)
                if contribution is None:
                    successor_table = tables.get(successor, {}).get(output_name)
                    if successor_table is None:
                        contribution = np.zeros_like(samples)
                    else:
                        widths_out = attenuated.get(successor)
                        if widths_out is None:
                            delay = elec.delay_ps[successor]
                            widths_out = propagate_width_array(samples, delay)
                            attenuated[successor] = widths_out
                        contribution = interp_anchored(
                            widths_out, successor_table
                        )
                    interp_cache[key] = contribution
                accumulated += share * contribution
            if accumulated.any():
                table_row[output_name] = accumulated
        tables[name] = table_row

        # Step (iv): expected widths for this gate's generated glitch.
        generated = float(elec.generated_width_ps[name])
        expected[name] = {
            output_name: float(interp_anchored(generated, table))
            for output_name, table in table_row.items()
        }

    return ElectricalMaskingResult(
        sample_widths=samples, tables=tables, expected=expected
    )
