"""Electrical masking: the reverse-topological expected-width pass.

This is the paper's Section 3.2 algorithm, verbatim:

1. choose ``k`` sample glitch widths ``ws_k`` (the paper uses 10);
2. walk the circuit from primary outputs back to inputs, computing for
   every gate ``i`` the expected width ``WS_ijk`` that a glitch of width
   ``ws_k`` *at i's output* would have on arrival at primary output
   ``j``:

   * a PO gate maps every sample to itself (``WS_jjk = ws_k``) and, as
     the paper specifies, contributes nothing to other outputs;
   * an internal gate attenuates each sample through each successor
     ``s`` (Equation 1 with ``s``'s delay), looks up the successor's
     expected width by linear interpolation, and combines successors
     with the Equation-2 shares ``pi_isj``;

3. the expected width ``W_ij`` for the *generated* glitch ``w_i`` is
   interpolated out of the same table.

One pass costs ``O((V + E) * k * |outputs|)``; Lemma 1 (wide glitches
arrive with expected width ``w * P_ij``) holds by construction and is
property-tested.

Two implementations share that contract.  :func:`electrical_masking` is
the production path: the whole ``WS`` table lives as one ``(V, O, k+1)``
tensor over the indexed circuit, levels are swept output-side-first, and
each level's gates resolve in a handful of NumPy reductions
(Equation 1 via :func:`~repro.tech.glitch.propagate_width_grid`, the
successor lookup as a gathered linear interpolation, Equation 2 as an
``(E, O)`` share matrix from :class:`~repro.core.masking.MaskingStructure`).
:func:`electrical_masking_reference` is the original dict-of-dicts
per-gate walk, kept as the differential-testing and benchmarking
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Mapping

import numpy as np

from repro.backend import resolve_backend
from repro.backend.base import ArrayBackend
from repro.circuit.indexed import IndexedCircuit
from repro.circuit.netlist import Circuit
from repro.core.masking import (
    DEFAULT_SHARE_EPSILON,
    MaskingStructure,
    masking_structure,
    propagation_shares,
)
from repro.core.sweep_plan import SweepPlan, sweep_plan_for
from repro.errors import AnalysisError
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.glitch import (
    propagate_width_array,
    propagate_width_grid,
    propagate_width_grid_batch,
)
from repro.tech.lut import bracket_queries, bracket_queries_rows


_TAKE_GRIDS: dict[tuple[int, ...], tuple[np.ndarray, ...]] = {}


def _take_last(tab: np.ndarray, ind: np.ndarray) -> np.ndarray:
    """``np.take_along_axis(tab, ind, axis=-1)`` without the per-call
    wrapper overhead — the sweeps below gather twice per level batch, so
    the index-grid construction is worth keeping lean (grids are cached
    per leading shape; the sweep revisits a handful of shapes)."""
    lead = tab.shape[:-1]
    grids = _TAKE_GRIDS.get(lead)
    if grids is None:
        if len(_TAKE_GRIDS) >= 256:
            _TAKE_GRIDS.clear()
        grids = tuple(
            np.ogrid[tuple(slice(n) for n in lead) + (slice(0, 1),)][:-1]
        )
        _TAKE_GRIDS[lead] = grids
    return tab[grids + (ind,)]


def _sweep_slots(structure: MaskingStructure):
    """Fan-out slot decomposition of every sweep batch.

    Served from the indexed circuit's cached topology schedule
    (:meth:`~repro.circuit.indexed.IndexedCircuit.sweep_index_plan`,
    which also feeds the compiled :class:`~repro.core.sweep_plan.SweepPlan`):
    within a batch, occurrence ``j`` of each source row forms a
    *unique-index* slot, so ``inner[srcs] += weighted[pos]`` per slot
    replays the exact per-element ``np.add.at`` accumulation order (a
    gate's successor contributions add in fan-out declaration order)
    with ordinary fancy-index adds.
    """
    __batches, slots = structure.indexed.sweep_index_plan()
    return slots


@dataclass(frozen=True)
class MaskingArrays:
    """Dense form of one electrical-masking pass."""

    indexed: IndexedCircuit
    #: Anchored ``WS`` tensor: ``ws[i, j, 1 + m]`` is ``WS_ijm`` and
    #: ``ws[i, j, 0] == 0`` (the "vanished glitch" interpolation anchor).
    ws: np.ndarray
    #: ``expected[i, j]`` is ``W_ij`` — dense Equation-3 weights.
    expected: np.ndarray

    @cached_property
    def populated_columns(self) -> dict[int, np.ndarray]:
        """Output columns with a populated ``WS`` table, per gate row.

        This is *the* sparsity rule of every name-keyed view (tables,
        expected widths, report ``widths_by_output``): an output appears
        exactly when the gate's table has a non-zero column for it —
        matching the reference pass, which stores a row only when its
        accumulated table is non-zero.
        """
        mask = self.ws.any(axis=2)
        return {
            int(row): np.flatnonzero(mask[row])
            for row in self.indexed.gate_rows
        }


class ElectricalMaskingResult:
    """Expected output glitch widths for one circuit + assignment.

    The array path carries the dense tensors; ``tables`` and
    ``expected`` — the original name-keyed views every existing caller
    reads — materialize lazily from them (or are supplied directly by
    the dict-based reference pass).
    """

    def __init__(
        self,
        sample_widths: np.ndarray,
        tables: dict[str, dict[str, np.ndarray]] | None = None,
        expected: dict[str, dict[str, float]] | None = None,
        arrays: MaskingArrays | None = None,
    ) -> None:
        if arrays is None and (tables is None or expected is None):
            raise AnalysisError(
                "ElectricalMaskingResult needs either dict tables or arrays"
            )
        #: The k sample widths ``ws_k`` (ascending, ps).
        self.sample_widths = sample_widths
        self.arrays = arrays
        self._tables = tables
        self._expected = expected

    @property
    def tables(self) -> dict[str, dict[str, np.ndarray]]:
        """``tables[i][j]`` is the length-k array ``WS_ijk``."""
        if self._tables is None:
            assert self.arrays is not None
            idx = self.arrays.indexed
            ws = self.arrays.ws
            outputs = idx.circuit.outputs
            self._tables = {
                idx.order[row]: {
                    outputs[col]: ws[row, col, 1:].copy() for col in cols
                }
                for row, cols in self.arrays.populated_columns.items()
            }
        return self._tables

    @property
    def expected(self) -> dict[str, dict[str, float]]:
        """``expected[i][j]`` is ``W_ij`` — expected width at output j
        for the strike-generated glitch at gate i."""
        if self._expected is None:
            assert self.arrays is not None
            idx = self.arrays.indexed
            exp = self.arrays.expected
            outputs = idx.circuit.outputs
            self._expected = {
                idx.order[row]: {
                    outputs[col]: float(exp[row, col]) for col in cols
                }
                for row, cols in self.arrays.populated_columns.items()
            }
        return self._expected

    def expected_width(self, gate_name: str, output_name: str) -> float:
        if self.arrays is not None:
            idx = self.arrays.indexed
            row = idx.index.get(gate_name)
            col = idx.output_col.get(output_name)
            if row is None or col is None:
                return 0.0
            return float(self.arrays.expected[row, col])
        return self.expected.get(gate_name, {}).get(output_name, 0.0)


def _sample_width_grid(
    min_delay: float, max_delay: float, widest: float, n_samples: int
) -> np.ndarray:
    """The one home of the sample-width grid formula.

    Every entry point (dict view, dense arrays, candidate batches)
    reduces its electrical state to ``(min delay, max delay, widest
    generated glitch)`` and calls this — the grids, and therefore the
    interpolated masking results, stay bitwise identical across paths.
    """
    low = max(min_delay * 0.5, 1e-3)
    high = max(2.2 * max_delay, 1.1 * widest, low * 4.0)
    return np.geomspace(low, high, n_samples)


def default_sample_widths(
    elec: CircuitElectrical, n_samples: int = 10
) -> np.ndarray:
    """Sample widths spanning "fully masked" to "propagates everywhere".

    The top sample exceeds twice the largest gate delay and the largest
    generated width, so it traverses any gate unattenuated (the Lemma-1
    regime); the bottom sample sits below the smallest delay.  Points
    are geometrically spaced, concentrating resolution where Equation 1
    is nonlinear.
    """
    if n_samples < 2:
        raise AnalysisError(f"need at least 2 sample widths, got {n_samples}")
    arrays = elec.native_arrays()
    if arrays is not None:
        # Array path: the same min/max reductions over the dense rows,
        # without materializing the name-keyed dict views.  Gate rows
        # only, exactly the population the dicts carry.
        rows = elec.circuit.indexed().gate_rows
        delay_rows = arrays["delay_ps"][rows]
        delays_arr = delay_rows[delay_rows > 0.0]
        if delays_arr.size == 0:
            raise AnalysisError("circuit has no gates with positive delay")
        width_rows = arrays["generated_width_ps"][rows]
        widest = float(width_rows.max()) if width_rows.size else 0.0
        return _sample_width_grid(
            float(delays_arr.min()), float(delays_arr.max()), widest, n_samples
        )
    delays = [d for d in elec.delay_ps.values() if d > 0.0]
    widths = [w for w in elec.generated_width_ps.values()]
    if not delays:
        raise AnalysisError("circuit has no gates with positive delay")
    return _sample_width_grid(
        min(delays), max(delays), max(widths, default=0.0), n_samples
    )


def _check_samples(sample_widths: np.ndarray) -> np.ndarray:
    samples = np.asarray(sample_widths, dtype=np.float64)
    if samples.ndim != 1 or samples.size < 2 or np.any(np.diff(samples) <= 0.0):
        raise AnalysisError("sample widths must be a strictly increasing 1-D array")
    return samples


def electrical_masking(
    circuit: Circuit,
    elec: CircuitElectrical,
    probabilities: Mapping[str, float] | None = None,
    sensitized_paths: Mapping[str, Mapping[str, float]] | None = None,
    sample_widths: np.ndarray | None = None,
    structure: MaskingStructure | None = None,
    epsilon: float = DEFAULT_SHARE_EPSILON,
    backend: ArrayBackend | str | None = None,
    plan: SweepPlan | None = None,
    fused: bool = True,
) -> ElectricalMaskingResult:
    """Run the Section-3.2 pass over the array core.

    ``structure`` carries the assignment-independent Equation-2 shares;
    pass a prebuilt one (as :class:`~repro.core.aserta.AsertaAnalyzer`
    does) to amortize it over repeated analyses of one circuit.  A
    supplied structure *replaces* ``probabilities`` and
    ``sensitized_paths`` (which may then be omitted) — it must have
    been built from the same estimates, or the shares reflect stale
    ``P_ij``; a structure built from a different netlist is rejected
    (different live objects with identical content are accepted, which
    is what lets the artifact cache serve structures across circuit
    copies).  ``epsilon`` is the Equation-2 route-dropping cutoff, used
    only when the structure is built here.

    ``fused`` (the default) executes the sweep through the compiled
    :class:`~repro.core.sweep_plan.SweepPlan` on the selected array
    ``backend`` — bitwise identical to the unfused per-level loop on
    the NumPy backend, which ``fused=False`` keeps available as the
    in-tree reference for the differential suite.  ``plan`` short-cuts
    the per-structure plan cache when the caller already holds one.
    """
    samples = (
        default_sample_widths(elec) if sample_widths is None
        else _check_samples(sample_widths)
    )
    if structure is None:
        if probabilities is None or sensitized_paths is None:
            raise AnalysisError(
                "electrical_masking needs probabilities and "
                "sensitized_paths when no structure is supplied"
            )
        structure = masking_structure(
            circuit, probabilities, sensitized_paths, epsilon=epsilon
        )
    elif (
        structure.indexed.circuit is not circuit
        and structure.indexed.circuit.content_digest()
        != circuit.content_digest()
    ):
        raise AnalysisError(
            "masking structure was built for a different circuit "
            f"({structure.indexed.circuit.name!r} vs {circuit.name!r})"
        )
    idx = structure.indexed
    arrays = elec.arrays()
    delays = arrays["delay_ps"]
    generated = arrays["generated_width_ps"]

    n_samples = samples.size
    anchored_x = np.concatenate(([0.0], samples))
    ws = np.zeros((idx.n_signals, idx.n_outputs, n_samples + 1))

    # Step (ii): PO gates present the samples directly to their latch
    # and nothing to other latches.
    po_rows = idx.output_rows
    po_cols = idx.col_of_row[po_rows]
    ws[po_rows, po_cols, 1:] = samples

    # Equation 1 for the whole circuit: what each gate (as a successor)
    # does to every sample width, and where that lands on the anchored
    # grid (the same clamped-bracket semantics as every table lookup).
    attenuated = propagate_width_grid(samples, delays)
    low, high, frac = bracket_queries(anchored_x, attenuated, "width")

    # Step (iii), one logic level at a time from the output side: gather
    # successor tables, interpolate at the attenuated widths, combine
    # with the Equation-2 shares, scatter-add onto the sources.
    if fused:
        if not isinstance(backend, ArrayBackend):
            backend = resolve_backend(backend)
        if plan is None:
            plan = sweep_plan_for(structure, backend)
        plan.run_single(ws, low, high, frac, backend)
    else:
        inner = ws[:, :, 1:]
        edge_share = structure.edge_shares
        edge_dst = idx.edge_dst
        for edges, batch_slots in zip(
            structure.sweep_batches, _sweep_slots(structure)
        ):
            dst = edge_dst[edges]
            tab = ws[dst]
            f = frac[dst][:, np.newaxis, :]
            t_lo = _take_last(tab, low[dst][:, np.newaxis, :])
            t_hi = _take_last(tab, high[dst][:, np.newaxis, :])
            contribution = t_lo * (1.0 - f) + t_hi * f
            weighted = edge_share[edges][:, :, np.newaxis] * contribution
            for pos, srcs in batch_slots:
                inner[srcs] += weighted[pos]

    # Step (iv): expected widths for the generated glitches, one
    # interpolation per (gate, output) out of the same tensor.
    g_low, g_high, g_frac = bracket_queries(anchored_x, generated, "width")
    g_lo = _take_last(ws, g_low[:, np.newaxis, np.newaxis])
    g_hi = _take_last(ws, g_high[:, np.newaxis, np.newaxis])
    expected = (
        g_lo[:, :, 0] * (1.0 - g_frac[:, np.newaxis])
        + g_hi[:, :, 0] * g_frac[:, np.newaxis]
    )
    # A PO gate's generated glitch reaches its own latch unattenuated.
    expected[po_rows, po_cols] = generated[po_rows]

    return ElectricalMaskingResult(
        sample_widths=samples,
        arrays=MaskingArrays(indexed=idx, ws=ws, expected=expected),
    )


def default_sample_widths_batch(
    indexed: IndexedCircuit,
    delays: np.ndarray,
    generated: np.ndarray,
    n_samples: int = 10,
) -> np.ndarray:
    """Per-candidate ``(B, k)`` sample-width grids.

    Row ``b`` equals :func:`default_sample_widths` of candidate ``b``'s
    electrical view bitwise: the min/max reductions are exact, and each
    row's grid comes from the same scalar ``np.geomspace`` call.
    """
    if n_samples < 2:
        raise AnalysisError(f"need at least 2 sample widths, got {n_samples}")
    rows = indexed.gate_rows
    delay_rows = np.asarray(delays, dtype=np.float64)[:, rows]
    width_rows = np.asarray(generated, dtype=np.float64)[:, rows]
    out = np.empty((delay_rows.shape[0], n_samples))
    for lane in range(delay_rows.shape[0]):
        lane_delays = delay_rows[lane][delay_rows[lane] > 0.0]
        if lane_delays.size == 0:
            raise AnalysisError("circuit has no gates with positive delay")
        widest = (
            float(width_rows[lane].max()) if width_rows[lane].size else 0.0
        )
        out[lane] = _sample_width_grid(
            float(lane_delays.min()),
            float(lane_delays.max()),
            widest,
            n_samples,
        )
    return out


def electrical_masking_many(
    structure: MaskingStructure,
    delays: np.ndarray,
    generated: np.ndarray,
    sample_widths: np.ndarray,
    backend: ArrayBackend | str | None = None,
    plan: SweepPlan | None = None,
    fused: bool = True,
) -> np.ndarray:
    """The Section-3.2 sweep for a *population* of candidates at once.

    ``delays`` and ``generated`` are ``(B, V)`` per-candidate electrical
    annotations; ``sample_widths`` is the ``(B, k)`` per-candidate grid.
    Returns the dense ``(B, V, O)`` Equation-3 expected-width matrix —
    the only masking output the batched cost loop needs, so per-candidate
    ``WS`` dict views and reports are never materialized.

    Lane ``b`` performs the exact operation sequence of
    :func:`electrical_masking` on candidate ``b`` (same gathers, same
    ``np.add.at`` accumulation order per lane), so the expected-width
    matrices — and the Equation-4 totals reduced from them — are
    bit-identical to the one-candidate path.

    ``fused`` (the default) runs the sweep through the compiled
    :class:`~repro.core.sweep_plan.SweepPlan` on ``backend``
    (``None`` resolves the config/env/NumPy selection chain); the
    NumPy backend is bitwise identical to the unfused per-level loop,
    which ``fused=False`` preserves as the differential reference.
    """
    idx = structure.indexed
    if fused and not isinstance(backend, ArrayBackend):
        backend = resolve_backend(backend)
    delays = np.asarray(delays, dtype=np.float64)
    samples = np.asarray(sample_widths, dtype=np.float64)
    generated = np.asarray(generated, dtype=np.float64)
    if delays.ndim != 2 or delays.shape[1] != idx.n_signals:
        raise AnalysisError(
            f"expected (B, {idx.n_signals}) delays, got {delays.shape}"
        )
    if samples.ndim != 2 or samples.shape[0] != delays.shape[0]:
        raise AnalysisError(
            "sample widths must be (B, k) aligned with the delay batch"
        )
    if np.any(np.diff(samples, axis=1) <= 0.0):
        raise AnalysisError("sample widths must be strictly increasing rows")
    n_lanes, n_samples = samples.shape
    anchored_x = np.concatenate(
        (np.zeros((n_lanes, 1)), samples), axis=1
    )
    ws = np.zeros((n_lanes, idx.n_signals, idx.n_outputs, n_samples + 1))

    po_rows = idx.output_rows
    po_cols = idx.col_of_row[po_rows]
    ws[:, po_rows, po_cols, 1:] = samples[:, np.newaxis, :]

    attenuated = (
        backend.attenuate_batch(samples, delays)
        if fused
        else propagate_width_grid_batch(samples, delays)
    )
    low, high, frac = bracket_queries_rows(anchored_x, attenuated, "width")

    if fused:
        if plan is None:
            plan = sweep_plan_for(structure, backend)
        plan.run_batch(ws, low, high, frac, backend)
    else:
        inner = ws[..., 1:]
        edge_share = structure.edge_shares
        edge_dst = idx.edge_dst
        for edges, batch_slots in zip(
            structure.sweep_batches, _sweep_slots(structure)
        ):
            dst = edge_dst[edges]
            tab = ws[:, dst]
            f = frac[:, dst][:, :, np.newaxis, :]
            t_lo = _take_last(tab, low[:, dst][:, :, np.newaxis, :])
            t_hi = _take_last(tab, high[:, dst][:, :, np.newaxis, :])
            contribution = t_lo * (1.0 - f) + t_hi * f
            weighted = (
                edge_share[edges][np.newaxis, :, :, np.newaxis] * contribution
            )
            for pos, srcs in batch_slots:
                inner[:, srcs] += weighted[:, pos]

    g_low, g_high, g_frac = bracket_queries_rows(
        anchored_x, generated, "width"
    )
    g_lo = _take_last(ws, g_low[:, :, np.newaxis, np.newaxis])
    g_hi = _take_last(ws, g_high[:, :, np.newaxis, np.newaxis])
    expected = (
        g_lo[..., 0] * (1.0 - g_frac[:, :, np.newaxis])
        + g_hi[..., 0] * g_frac[:, :, np.newaxis]
    )
    expected[:, po_rows, po_cols] = generated[:, po_rows]
    return expected


def electrical_masking_reference(
    circuit: Circuit,
    elec: CircuitElectrical,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]],
    sample_widths: np.ndarray | None = None,
    epsilon: float = DEFAULT_SHARE_EPSILON,
) -> ElectricalMaskingResult:
    """The original per-gate dict walk (the seed implementation).

    Kept verbatim as the baseline the vectorized pass is differential-
    tested and benchmarked against; see the module docstring.
    """
    samples = (
        default_sample_widths(elec) if sample_widths is None
        else _check_samples(sample_widths)
    )

    tables: dict[str, dict[str, np.ndarray]] = {}
    expected: dict[str, dict[str, float]] = {}
    # Interpolations are anchored at (0, 0): a vanished glitch has zero
    # expected width (plain np.interp would clamp sub-sample queries up
    # to the smallest sample's value).
    anchored_x = np.concatenate(([0.0], samples))

    def interp_anchored(query, table: np.ndarray):
        return np.interp(query, anchored_x, np.concatenate(([0.0], table)))

    for name in circuit.reverse_topological_order():
        gate = circuit.gate(name)
        if gate.is_input:
            continue

        if circuit.is_output(name):
            # Step (ii): a PO gate presents samples (and its own generated
            # glitch) directly to its latch, and nothing to other latches.
            tables[name] = {name: samples.copy()}
            expected[name] = {name: float(elec.generated_width_ps[name])}
            continue

        # Step (iii): attenuate each sample through each successor, look
        # up the successor's expected widths, combine with pi_isj.
        row = sensitized_paths.get(name, {})
        table_row: dict[str, np.ndarray] = {}
        attenuated: dict[str, np.ndarray] = {}
        interp_cache: dict[tuple[str, str], np.ndarray] = {}
        for output_name, p_ij in row.items():
            if p_ij <= 0.0:
                continue
            shares = propagation_shares(
                circuit, probabilities, sensitized_paths, name, output_name,
                epsilon=epsilon,
            )
            if not shares:
                continue
            accumulated = np.zeros_like(samples)
            for successor, share in shares.items():
                key = (successor, output_name)
                contribution = interp_cache.get(key)
                if contribution is None:
                    successor_table = tables.get(successor, {}).get(output_name)
                    if successor_table is None:
                        contribution = np.zeros_like(samples)
                    else:
                        widths_out = attenuated.get(successor)
                        if widths_out is None:
                            delay = elec.delay_ps[successor]
                            widths_out = propagate_width_array(samples, delay)
                            attenuated[successor] = widths_out
                        contribution = interp_anchored(
                            widths_out, successor_table
                        )
                    interp_cache[key] = contribution
                accumulated += share * contribution
            if accumulated.any():
                table_row[output_name] = accumulated
        tables[name] = table_row

        # Step (iv): expected widths for this gate's generated glitch.
        generated = float(elec.generated_width_ps[name])
        expected[name] = {
            output_name: float(interp_anchored(generated, table))
            for output_name, table in table_row.items()
        }

    return ElectricalMaskingResult(
        sample_widths=samples, tables=tables, expected=expected
    )
