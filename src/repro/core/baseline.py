"""Timing-driven baseline sizing (the paper's starting point).

The paper's Table-1 baselines are ISCAS'85 circuits "optimized for speed
using Synopsys Design Compiler", then fixed at L = 70 nm, VDD = 1 V,
Vth = 0.2 V.  :func:`size_for_speed` reproduces that starting point with
a greedy critical-path sizing loop: repeatedly upsize the gates on the
critical path (which shortens their own delay at the cost of loading
their predecessors) until the circuit delay stops improving or the size
menu is exhausted.
"""

from __future__ import annotations

from dataclasses import replace

from repro.circuit.netlist import Circuit
from repro.sta.timing import analyze_timing_batch, critical_path
from repro.tech.electrical_view import (
    cell_param_arrays,
    continuous_delay_arrays,
)
from repro.tech.library import CellLibrary, CellParams, NOMINAL_CELL, ParameterAssignment
from repro.tech.table_builder import TechnologyTables


def size_for_speed(
    circuit: Circuit,
    library: CellLibrary | None = None,
    tables: TechnologyTables | None = None,
    max_rounds: int = 12,
) -> ParameterAssignment:
    """Greedy speed-oriented sizing at the nominal operating point.

    Only gate *size* varies (like the paper's baseline); channel length,
    VDD and Vth stay at the nominal cell's values.  Returns the
    resulting assignment.

    Delay probes run through the batched continuous model
    (:func:`continuous_delay_arrays` is bitwise equal to the scalar
    ``use_tables=False`` annotation), so the sizing decisions — and the
    returned baseline — are unchanged from the original scalar loop,
    just cheaper.  ``tables`` is accepted for signature compatibility
    but has never influenced the result: the baseline is defined on the
    continuous model (the original implementation also passed
    ``use_tables=False``, which bypasses the tables entirely).
    """
    sizes = sorted(library.sizes) if library is not None else [0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    assignment = ParameterAssignment(default=NOMINAL_CELL)
    indexed = circuit.indexed()

    def delay_rows(asg: ParameterAssignment):
        params = {
            field: values[None, :]
            for field, values in cell_param_arrays(indexed, asg).items()
        }
        return continuous_delay_arrays(circuit, params)["delay_ps"]

    def circuit_delay(asg: ParameterAssignment) -> float:
        return float(analyze_timing_batch(indexed, delay_rows(asg)).delay_ps[0])

    best_delay = circuit_delay(assignment)
    for __ in range(max_rounds):
        delays = delay_rows(assignment)[0]
        path = critical_path(
            circuit, indexed.scatter(delays, indexed.gate_rows)
        )
        candidate = assignment.copy()
        changed = False
        for name in path:
            current = candidate[name]
            larger = [s for s in sizes if s > current.size]
            if larger:
                candidate.set(name, replace(current, size=larger[0]))
                changed = True
        if not changed:
            break
        new_delay = circuit_delay(candidate)
        if new_delay >= best_delay:
            break
        best_delay = new_delay
        assignment = candidate
    return assignment
