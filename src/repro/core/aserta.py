"""ASERTA: Accurate Soft-ERror Tolerance Analysis (paper Section 3).

The analyzer is split along the paper's own seams:

* the *structural* ingredients — static probabilities ``p_i`` and
  sensitized-path probabilities ``P_ij`` — depend only on the netlist
  and are computed once per circuit (``AsertaAnalyzer.__init__``);
* the *electrical* ingredients — generated glitch widths, delays,
  the expected-width propagation — depend on the parameter assignment
  and are recomputed by every :meth:`AsertaAnalyzer.analyze` call,
  which is what SERTOPT invokes in its inner loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import Circuit
from repro.core.electrical_masking import (
    ElectricalMaskingResult,
    default_sample_widths,
    electrical_masking,
    electrical_masking_reference,
)
from repro.core.masking import masking_structure
from repro.core.unreliability import (
    UnreliabilityReport,
    build_report,
    build_report_from_arrays,
)
from repro.errors import AnalysisError
from repro.logicsim.bitsim import BitParallelSimulator
from repro.logicsim.probability import static_probabilities
from repro.logicsim.sensitization import sensitization_probabilities
from repro.tech import constants as k
from repro.tech.electrical_view import CircuitElectrical, cell_param_arrays
from repro.tech.library import ParameterAssignment
from repro.tech.table_builder import TechnologyTables, default_tables


@dataclass(frozen=True)
class AsertaConfig:
    """Knobs of the analysis (paper defaults)."""

    #: Random vectors for the P_ij estimate (paper: 10 000, as in [5]).
    n_vectors: int = 10000
    #: Seed for the random vectors.
    seed: int = 0
    #: Number of sample glitch widths in the electrical-masking pass
    #: (paper: 10).
    n_sample_widths: int = 10
    #: Injected charge per strike, fC (paper: fixed; 16 fC in Fig 1).
    charge_fc: float = k.DEFAULT_CHARGE_FC
    #: Static probability assumed at every primary input (paper: 0.5).
    input_probability: float = 0.5
    #: Route electrical queries through the interpolated look-up tables
    #: (the ASERTA architecture); False evaluates the continuous model.
    use_tables: bool = True

    def __post_init__(self) -> None:
        if self.n_vectors < 1:
            raise AnalysisError(f"n_vectors must be >= 1, got {self.n_vectors}")
        if self.n_sample_widths < 2:
            raise AnalysisError(
                f"n_sample_widths must be >= 2, got {self.n_sample_widths}"
            )
        if self.charge_fc < 0.0:
            raise AnalysisError(f"charge_fc must be >= 0, got {self.charge_fc}")
        if not 0.0 <= self.input_probability <= 1.0:
            raise AnalysisError(
                f"input_probability must be in [0, 1], got {self.input_probability}"
            )


@dataclass(frozen=True)
class AsertaReport:
    """Everything one ASERTA run produces."""

    unreliability: UnreliabilityReport
    masking: ElectricalMaskingResult
    electrical: CircuitElectrical
    runtime_s: float

    @property
    def total(self) -> float:
        return self.unreliability.total


class AsertaAnalyzer:
    """Reusable analyzer bound to one circuit.

    Construction performs the structure-only work (10 000-vector
    sensitization simulation, static probabilities); each
    :meth:`analyze` evaluates one parameter assignment.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: AsertaConfig | None = None,
        tables: TechnologyTables | None = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.config = config if config is not None else AsertaConfig()
        self.tables = tables if tables is not None else default_tables()
        self.simulator = BitParallelSimulator(circuit)
        self.probabilities = static_probabilities(
            circuit, self.config.input_probability
        )
        self.sensitized_paths = sensitization_probabilities(
            circuit,
            n_vectors=self.config.n_vectors,
            seed=self.config.seed,
            simulator=self.simulator,
        )
        #: Dense integer view shared by every array pass.
        self.indexed = circuit.indexed()
        #: Assignment-independent Equation-2 structure (dense shares),
        #: built once and reused by every :meth:`analyze` call.
        self.structure = masking_structure(
            circuit, self.probabilities, self.sensitized_paths, self.indexed
        )

    def electrical_view(
        self,
        assignment: ParameterAssignment,
        charge_fc: float | None = None,
        vectorized: bool | None = None,
    ) -> CircuitElectrical:
        """The annotated electrical state for ``assignment``.

        ``charge_fc`` overrides the configured injected charge (used by
        the charge-sweep extension without re-estimating P_ij).
        """
        return CircuitElectrical(
            self.circuit,
            assignment,
            tables=self.tables,
            use_tables=self.config.use_tables,
            charge_fc=self.config.charge_fc if charge_fc is None else charge_fc,
            vectorized=vectorized,
        )

    def _sizes_array(self, assignment: ParameterAssignment) -> np.ndarray:
        return cell_param_arrays(self.indexed, assignment)["size"]

    def analyze(
        self,
        assignment: ParameterAssignment | None = None,
        sample_widths: np.ndarray | None = None,
        charge_fc: float | None = None,
        n_sample_widths: int | None = None,
        engine: str = "array",
    ) -> AsertaReport:
        """Estimate circuit unreliability under ``assignment``.

        ``n_sample_widths`` overrides the configured sample-width count
        without a second electrical pass (used by the campaign engine's
        analysis-config axis); ``sample_widths`` overrides the sampled
        widths entirely.  ``engine`` selects the implementation:
        ``"array"`` (the vectorized core) or ``"reference"`` (the
        original per-gate dict walk, kept for differential testing and
        benchmarking).
        """
        if engine not in ("array", "reference"):
            raise AnalysisError(
                f"engine must be 'array' or 'reference', got {engine!r}"
            )
        started = time.perf_counter()
        assignment = assignment if assignment is not None else ParameterAssignment()
        elec = self.electrical_view(
            assignment,
            charge_fc=charge_fc,
            vectorized=engine == "array",
        )
        if sample_widths is None:
            sample_widths = default_sample_widths(
                elec,
                self.config.n_sample_widths
                if n_sample_widths is None
                else n_sample_widths,
            )
        if engine == "array":
            masking = electrical_masking(
                self.circuit,
                elec,
                self.probabilities,
                self.sensitized_paths,
                sample_widths,
                structure=self.structure,
            )
            assert masking.arrays is not None
            arrays = elec.arrays()
            sizes = arrays.get("size")
            if sizes is None:  # view built by the scalar fallback path
                sizes = self._sizes_array(assignment)
            report = build_report_from_arrays(
                self.circuit.name,
                masking.arrays,
                generated=arrays["generated_width_ps"],
                sizes=sizes,
            )
        else:
            masking = electrical_masking_reference(
                self.circuit,
                elec,
                self.probabilities,
                self.sensitized_paths,
                sample_widths,
            )
            sizes = {
                gate.name: assignment[gate.name].size
                for gate in self.circuit.gates()
            }
            report = build_report(
                self.circuit.name,
                generated_widths=elec.generated_width_ps,
                sizes=sizes,
                expected=masking.expected,
            )
        runtime = time.perf_counter() - started
        return AsertaReport(
            unreliability=report,
            masking=masking,
            electrical=elec,
            runtime_s=runtime,
        )
