"""ASERTA: Accurate Soft-ERror Tolerance Analysis (paper Section 3).

The analyzer is split along the paper's own seams:

* the *structural* ingredients — static probabilities ``p_i`` and
  sensitized-path probabilities ``P_ij`` — depend only on the netlist
  and are resolved once per circuit (``AsertaAnalyzer.__init__``),
  through the :class:`~repro.engine.engine.AnalysisEngine`: the batched
  fault-site simulator on a cold cache, a pure artifact lookup on a
  warm one;
* the *electrical* ingredients — generated glitch widths, delays,
  the expected-width propagation — depend on the parameter assignment
  and are recomputed by every :meth:`AsertaAnalyzer.analyze` call,
  which is what SERTOPT invokes in its inner loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend import resolve_backend
from repro.circuit.netlist import Circuit
from repro.core.electrical_masking import (
    ElectricalMaskingResult,
    default_sample_widths,
    default_sample_widths_batch,
    electrical_masking,
    electrical_masking_many,
    electrical_masking_reference,
)
from repro.core.masking import DEFAULT_SHARE_EPSILON
from repro.core.unreliability import (
    UnreliabilityReport,
    build_report,
    build_report_from_arrays,
    gate_contributions,
    total_unreliability,
)
from repro.engine.engine import (
    STRUCTURAL_ENGINES,
    AnalysisEngine,
    get_default_engine,
)
from repro.engine.structural import sparse_paths_from_matrix
from repro.errors import AnalysisError
from repro.logicsim.bitsim import BitParallelSimulator
from repro.logicsim.probability import static_probabilities
from repro.power.energy import activity_row, circuit_energy_batch
from repro.sta.timing import analyze_timing_batch
from repro.tech import constants as k
from repro.telemetry import resolve
from repro.tech.electrical_view import (
    CircuitElectrical,
    batched_electrical_arrays,
    cell_param_arrays,
    stack_cell_param_arrays,
)
from repro.tech.library import ParameterAssignment
from repro.tech.table_builder import TechnologyTables, default_tables

#: Ceiling on one batch's ``(B, V, O, k+1)`` masking tensor, bytes —
#: :meth:`AsertaAnalyzer.analyze_many` splits larger populations into
#: chunks so memory stays flat on wide circuits.
DEFAULT_MAX_BATCH_BYTES = 1 << 28


@dataclass(frozen=True)
class AsertaConfig:
    """Knobs of one ASERTA analysis (defaults are the paper's protocol).

    Each field is an *analysis input*: changing any of them changes the
    estimate (and, in campaigns, the scenario digest).  Units: charges
    in fC, probabilities dimensionless, widths counted (the sample-width
    grid itself is derived in ps).

    >>> AsertaConfig().n_vectors, AsertaConfig().n_sample_widths
    (10000, 10)
    >>> AsertaConfig(n_vectors=2000, seed=1).seed
    1
    """

    #: Random vectors for the P_ij estimate (paper: 10 000, as in [5]).
    n_vectors: int = 10000
    #: Seed for the random vectors.
    seed: int = 0
    #: Number of sample glitch widths in the electrical-masking pass
    #: (paper: 10).
    n_sample_widths: int = 10
    #: Injected charge per strike, fC (paper: fixed; 16 fC in Fig 1).
    charge_fc: float = k.DEFAULT_CHARGE_FC
    #: Static probability assumed at every primary input (paper: 0.5).
    input_probability: float = 0.5
    #: Route electrical queries through the interpolated look-up tables
    #: (the ASERTA architecture); False evaluates the continuous model.
    use_tables: bool = True
    #: Structural P_ij estimator: ``"batched"`` (the fault-site-batched
    #: level sweep) or ``"event"`` (the original per-site event-driven
    #: walk, kept as an escape hatch).  Bit-identical by contract.
    structural_engine: str = "batched"
    #: Equation-2 denominator cutoff below which a deep-chain route is
    #: dropped (see :data:`repro.core.masking.DEFAULT_SHARE_EPSILON`).
    share_epsilon: float = DEFAULT_SHARE_EPSILON
    #: Array backend executing the fused Section-3.2 sweep plan:
    #: ``None`` defers to the ``REPRO_ARRAY_BACKEND`` environment
    #: variable (default ``"numpy"``).  The NumPy backend is bitwise
    #: identical to the reference array path; any other registered
    #: backend compares within its declared tolerance (see
    #: :mod:`repro.backend`).  *Not* a scenario axis: campaigns hash
    #: analysis inputs, and a conforming backend is an implementation
    #: detail, not an input.
    array_backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_vectors < 1:
            raise AnalysisError(f"n_vectors must be >= 1, got {self.n_vectors}")
        if self.n_sample_widths < 2:
            raise AnalysisError(
                f"n_sample_widths must be >= 2, got {self.n_sample_widths}"
            )
        if self.charge_fc < 0.0:
            raise AnalysisError(f"charge_fc must be >= 0, got {self.charge_fc}")
        if not 0.0 <= self.input_probability <= 1.0:
            raise AnalysisError(
                f"input_probability must be in [0, 1], got {self.input_probability}"
            )
        if self.structural_engine not in STRUCTURAL_ENGINES:
            raise AnalysisError(
                f"structural_engine must be one of {STRUCTURAL_ENGINES}, "
                f"got {self.structural_engine!r}"
            )
        if not self.share_epsilon > 0.0:
            raise AnalysisError(
                f"share_epsilon must be > 0, got {self.share_epsilon}"
            )
        if self.array_backend is not None and not self.array_backend.strip():
            raise AnalysisError(
                "array_backend must be a backend name or None, got "
                f"{self.array_backend!r}"
            )


@dataclass(frozen=True)
class AsertaBatch:
    """Dense metrics for a population of assignments (one row each).

    The batched analysis path deliberately skips building per-candidate
    :class:`AsertaReport`\\ s — no ``WS`` dict views, no per-gate report
    entries — because the SERTOPT inner loop only consumes these four
    reductions.  Call :meth:`AsertaAnalyzer.analyze` on the winning
    assignment for the full lazy report.
    """

    #: Equation-4 circuit unreliability ``U`` per candidate.
    totals: np.ndarray
    #: Circuit delay (longest path) per candidate, ps.
    delay_ps: np.ndarray
    #: Total per-cycle energy (dynamic + static) per candidate, fJ.
    energy_fj: np.ndarray
    #: Total relative layout area per candidate.
    area: np.ndarray

    def __len__(self) -> int:
        return int(self.totals.shape[0])


@dataclass(frozen=True)
class AsertaReport:
    """Everything one ASERTA run produces.

    ``unreliability`` holds the Equation-3/4 breakdown (``.total`` is
    the circuit unreliability U, in ps of vulnerable time per strike
    class), ``masking`` the Section-3.2 expected-width tables,
    ``electrical`` the annotated delays/widths/loads (ps, ps, fF) the
    analysis was computed from, and ``runtime_s`` the wall time of this
    analysis in seconds.
    """

    unreliability: UnreliabilityReport
    masking: ElectricalMaskingResult
    electrical: CircuitElectrical
    runtime_s: float

    @property
    def total(self) -> float:
        return self.unreliability.total


class AsertaAnalyzer:
    """Reusable analyzer bound to one circuit.

    Construction resolves the structure-only work (10 000-vector
    sensitization simulation, static probabilities, Equation-2 shares)
    through the analysis ``engine`` — simulated once, then served from
    the compiled-artifact cache for every later analyzer of the same
    circuit and protocol; each :meth:`analyze` evaluates one parameter
    assignment.

    ``share_epsilon`` overrides ``config.share_epsilon`` (the Equation-2
    deep-chain route-dropping cutoff) without rebuilding a config.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) records
    per-phase spans (``aserta.init.*``, ``aserta.electrical``,
    ``aserta.masking_sweep``, ``aserta.reduce``) and counters; ``None``
    (the default) makes every instrumentation point a no-op.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: AsertaConfig | None = None,
        tables: TechnologyTables | None = None,
        engine: AnalysisEngine | None = None,
        share_epsilon: float | None = None,
        telemetry=None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.config = config if config is not None else AsertaConfig()
        self.tables = tables if tables is not None else default_tables()
        self.engine = engine if engine is not None else get_default_engine()
        self.telemetry = resolve(telemetry)
        if share_epsilon is None:
            self.share_epsilon = self.config.share_epsilon
        else:
            if not share_epsilon > 0.0:
                raise AnalysisError(
                    f"share_epsilon must be > 0, got {share_epsilon}"
                )
            self.share_epsilon = float(share_epsilon)
        self.simulator = BitParallelSimulator(circuit)
        self.probabilities = static_probabilities(
            circuit, self.config.input_probability
        )
        #: Dense integer view shared by every array pass.
        self.indexed = circuit.indexed()
        if self.config.use_tables:
            with self.telemetry.span("aserta.init.warm_tables"):
                self.engine.warm_stacked_tables(
                    self.tables, self.indexed.group_pairs
                )
        #: Dense ``(V, O)`` sensitized-path probabilities — simulated by
        #: the configured structural engine or served from the artifact
        #: cache (bit-identical either way).
        with self.telemetry.span(
            "aserta.init.structural",
            circuit=circuit.name,
            n_vectors=self.config.n_vectors,
        ):
            self.p_matrix = self.engine.p_matrix(
                circuit,
                self.config.n_vectors,
                self.config.seed,
                structural=self.config.structural_engine,
                simulator=self.simulator,
            )
        #: Assignment-independent Equation-2 structure (dense shares),
        #: resolved once and reused by every :meth:`analyze` call.
        with self.telemetry.span(
            "aserta.init.masking_structure", circuit=circuit.name
        ):
            self.structure = self.engine.masking_structure(
                circuit,
                self.probabilities,
                self.config.n_vectors,
                self.config.seed,
                epsilon=self.share_epsilon,
            )
        #: Resolved array backend (config > ``REPRO_ARRAY_BACKEND`` env
        #: > numpy) — raises listing the registered names when unknown.
        self.backend = resolve_backend(self.config.array_backend)
        #: Compiled Section-3.2 sweep plan (fused per-level gathers and
        #: slot schedule), served from the artifact cache under a
        #: backend-qualified key and shared by :meth:`analyze` and
        #: :meth:`analyze_many`.
        with self.telemetry.span(
            "aserta.init.sweep_plan",
            circuit=circuit.name,
            backend=self.backend.name,
        ):
            self.sweep_plan = self.engine.sweep_plan(
                circuit,
                self.probabilities,
                self.config.n_vectors,
                self.config.seed,
                epsilon=self.share_epsilon,
                backend=self.backend.name,
                structure=self.structure,
            )
        self._sensitized_paths: dict[str, dict[str, float]] | None = None
        self._activity_row: np.ndarray | None = None

    @property
    def sensitized_paths(self) -> dict[str, dict[str, float]]:
        """Sparse ``{gate: {output: P_ij}}`` view of :attr:`p_matrix`.

        Materialized lazily: the array analysis path never touches it,
        so a warm analyzer pays nothing for the dict view unless the
        reference engine or a dict-reading caller asks for it.
        """
        if self._sensitized_paths is None:
            self._sensitized_paths = sparse_paths_from_matrix(
                self.indexed, self.p_matrix
            )
        return self._sensitized_paths

    def observability(self) -> dict[str, float]:
        """Per-gate ``min(1, sum_j P_ij)`` via the shared dense summary
        (:func:`repro.logicsim.sensitization.observability_matrix`)."""
        from repro.logicsim.sensitization import observability_matrix

        return self.indexed.scatter(observability_matrix(self.p_matrix))

    def electrical_view(
        self,
        assignment: ParameterAssignment,
        charge_fc: float | None = None,
        vectorized: bool | None = None,
    ) -> CircuitElectrical:
        """The annotated electrical state for ``assignment``.

        ``charge_fc`` overrides the configured injected charge (used by
        the charge-sweep extension without re-estimating P_ij).
        """
        return CircuitElectrical(
            self.circuit,
            assignment,
            tables=self.tables,
            use_tables=self.config.use_tables,
            charge_fc=self.config.charge_fc if charge_fc is None else charge_fc,
            vectorized=vectorized,
        )

    def _sizes_array(self, assignment: ParameterAssignment) -> np.ndarray:
        return cell_param_arrays(self.indexed, assignment)["size"]

    def analyze(
        self,
        assignment: ParameterAssignment | None = None,
        sample_widths: np.ndarray | None = None,
        charge_fc: float | None = None,
        n_sample_widths: int | None = None,
        engine: str = "array",
    ) -> AsertaReport:
        """Estimate circuit unreliability under ``assignment``.

        ``n_sample_widths`` overrides the configured sample-width count
        without a second electrical pass (used by the campaign engine's
        analysis-config axis); ``sample_widths`` overrides the sampled
        widths entirely.  ``engine`` selects the implementation:
        ``"array"`` (the vectorized core) or ``"reference"`` (the
        original per-gate dict walk, kept for differential testing and
        benchmarking).
        """
        if engine not in ("array", "reference"):
            raise AnalysisError(
                f"engine must be 'array' or 'reference', got {engine!r}"
            )
        started = time.perf_counter()
        telemetry = self.telemetry
        telemetry.metrics.add("aserta.analyze.calls")
        assignment = assignment if assignment is not None else ParameterAssignment()
        with telemetry.span(
            "aserta.analyze", circuit=self.circuit.name, engine=engine
        ):
            with telemetry.span("aserta.electrical"):
                elec = self.electrical_view(
                    assignment,
                    charge_fc=charge_fc,
                    vectorized=engine == "array",
                )
                if sample_widths is None:
                    sample_widths = default_sample_widths(
                        elec,
                        self.config.n_sample_widths
                        if n_sample_widths is None
                        else n_sample_widths,
                    )
            if engine == "array":
                with telemetry.span("aserta.masking_sweep"):
                    masking = electrical_masking(
                        self.circuit,
                        elec,
                        sample_widths=sample_widths,
                        structure=self.structure,
                        backend=self.backend,
                        plan=self.sweep_plan,
                    )
                with telemetry.span("aserta.reduce"):
                    assert masking.arrays is not None
                    arrays = elec.arrays()
                    sizes = arrays.get("size")
                    if sizes is None:  # view built by the scalar fallback path
                        sizes = self._sizes_array(assignment)
                    report = build_report_from_arrays(
                        self.circuit.name,
                        masking.arrays,
                        generated=arrays["generated_width_ps"],
                        sizes=sizes,
                    )
            else:
                with telemetry.span("aserta.masking_sweep"):
                    masking = electrical_masking_reference(
                        self.circuit,
                        elec,
                        self.probabilities,
                        self.sensitized_paths,
                        sample_widths,
                        epsilon=self.share_epsilon,
                    )
                with telemetry.span("aserta.reduce"):
                    sizes = {
                        gate.name: assignment[gate.name].size
                        for gate in self.circuit.gates()
                    }
                    report = build_report(
                        self.circuit.name,
                        generated_widths=elec.generated_width_ps,
                        sizes=sizes,
                        expected=masking.expected,
                    )
        runtime = time.perf_counter() - started
        return AsertaReport(
            unreliability=report,
            masking=masking,
            electrical=elec,
            runtime_s=runtime,
        )

    @property
    def activities(self) -> np.ndarray:
        """Dense per-row switching activities (assignment-independent),
        built once and shared by every batched energy reduction."""
        if self._activity_row is None:
            self._activity_row = activity_row(self.indexed, self.probabilities)
        return self._activity_row

    def analyze_many(
        self,
        assignments=None,
        params: dict[str, np.ndarray] | None = None,
        charge_fc: float | None = None,
        n_sample_widths: int | None = None,
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
    ) -> AsertaBatch:
        """Analyze a *population* of assignments through one array pass.

        ``assignments`` is a sequence of :class:`ParameterAssignment`;
        alternatively ``params`` supplies the stacked ``(B, V)``
        ``size``/``length_nm``/``vdd``/``vth`` arrays directly (what the
        batched matcher produces), skipping the dict scatter entirely.
        Candidate assignments are stacked into the existing LUT gathers,
        the Section-3.2 sweep runs over a ``(B, V, O, k+1)`` tensor
        (chunked under ``max_batch_bytes``), and Equations 3-4 reduce
        per candidate — no per-candidate :class:`AsertaReport` is built.

        Lane ``b`` of :attr:`AsertaBatch.totals` is bit-identical to
        ``analyze(assignment_b).total`` (the differential test suite
        pins this); delay is exactly equal, energy and area match to
        float reassociation.

        Only the array/table path is batched: with ``use_tables=False``
        (or on gate-less circuits) this falls back to per-assignment
        :meth:`analyze` calls, which then requires ``assignments``.
        """
        if (assignments is None) == (params is None):
            raise AnalysisError(
                "pass exactly one of assignments or params to analyze_many"
            )
        if (
            len(assignments) if assignments is not None
            else params["size"].shape[0]
        ) < 1:
            raise AnalysisError("analyze_many needs at least one candidate")
        idx = self.indexed
        if not self.config.use_tables or not idx.group_pairs:
            if assignments is None:
                raise AnalysisError(
                    "the non-array fallback of analyze_many needs "
                    "assignments, not raw parameter arrays"
                )
            reports = [
                self.analyze(
                    a, charge_fc=charge_fc, n_sample_widths=n_sample_widths
                )
                for a in assignments
            ]
            from repro.power.area import circuit_area
            from repro.power.energy import circuit_energy
            from repro.sta.timing import analyze_timing

            return AsertaBatch(
                totals=np.array([r.total for r in reports]),
                delay_ps=np.array(
                    [
                        analyze_timing(
                            self.circuit, r.electrical.delay_ps
                        ).delay_ps
                        for r in reports
                    ]
                ),
                energy_fj=np.array(
                    [
                        circuit_energy(
                            self.circuit, r.electrical, self.probabilities
                        ).total_fj
                        for r in reports
                    ]
                ),
                area=np.array(
                    [circuit_area(self.circuit, r.electrical) for r in reports]
                ),
            )

        if params is None:
            params = stack_cell_param_arrays(idx, assignments)
        n_lanes = params["size"].shape[0]
        charge = self.config.charge_fc if charge_fc is None else charge_fc
        n_k = (
            self.config.n_sample_widths
            if n_sample_widths is None
            else n_sample_widths
        )
        per_lane = idx.n_signals * idx.n_outputs * (n_k + 1) * 8
        chunk = int(max(1, min(n_lanes, max_batch_bytes // max(1, per_lane))))

        telemetry = self.telemetry
        telemetry.metrics.add("aserta.analyze_many.calls")
        telemetry.metrics.add("aserta.analyze_many.lanes", n_lanes)
        totals = np.empty(n_lanes)
        delay = np.empty(n_lanes)
        energy = np.empty(n_lanes)
        area = np.empty(n_lanes)
        with telemetry.span(
            "aserta.analyze_many", circuit=self.circuit.name, lanes=n_lanes
        ):
            for start in range(0, n_lanes, chunk):
                stop = min(start + chunk, n_lanes)
                part = {
                    field: np.ascontiguousarray(values[start:stop])
                    for field, values in params.items()
                }
                with telemetry.span("aserta.electrical", lanes=stop - start):
                    arrays = batched_electrical_arrays(
                        self.circuit, self.tables, part, charge_fc=charge
                    )
                    samples = default_sample_widths_batch(
                        idx,
                        arrays["delay_ps"],
                        arrays["generated_width_ps"],
                        n_k,
                    )
                with telemetry.span(
                    "aserta.masking_sweep", lanes=stop - start
                ):
                    expected = electrical_masking_many(
                        self.structure,
                        arrays["delay_ps"],
                        arrays["generated_width_ps"],
                        samples,
                        backend=self.backend,
                        plan=self.sweep_plan,
                    )
                # Equations 3-4 lane by lane over contiguous slices: the
                # exact reductions of the single-candidate path, so totals
                # stay bit-consistent with analyze().
                with telemetry.span("aserta.reduce", lanes=stop - start):
                    for lane in range(stop - start):
                        totals[start + lane] = total_unreliability(
                            gate_contributions(
                                part["size"][lane], expected[lane]
                            )
                        )
                    delay[start:stop] = analyze_timing_batch(
                        idx, arrays["delay_ps"]
                    ).delay_ps
                    energy[start:stop] = circuit_energy_batch(
                        idx, arrays, self.activities
                    )
                    area[start:stop] = arrays["area_units"][
                        :, idx.gate_rows
                    ].sum(axis=1)
        return AsertaBatch(
            totals=totals, delay_ps=delay, energy_fj=energy, area=area
        )
