"""The compiled Section-3.2 sweep: per-level work precomputed once.

The unfused sweep in :mod:`repro.core.electrical_masking` re-derives,
on *every* call and for *every* logic level, the same index artifacts:
the level's destination rows, the Equation-2 share gather, the fan-out
slot decomposition, and the ``_take_last`` gather grids — then
interpolates and scatters **dense** ``(B, E, O, k)`` level tensors.
Dense is the wrong shape for this computation: the Equation-2 shares
are overwhelmingly zero (a gate contributes only to the handful of
primary outputs its fan-out cone reaches — 10–15% of the ``(edge,
output)`` pairs on the ISCAS-85 circuits), so most of the gather,
interpolation, multiply and scatter traffic moves exact ``+0.0``
contributions that cannot change a single bit of the result.

A :class:`SweepPlan` compiles the sweep down to its live work:

* the topology-only schedule (edge batches by source level, fan-out
  accumulation order) comes from
  :meth:`~repro.circuit.indexed.IndexedCircuit.sweep_index_plan`,
  computed once per circuit and cached on the indexed view;
* per level, only the **live pairs** — ``(edge, output)`` with a
  nonzero share — are kept, factored through their unique
  ``(destination, output)`` cells so each interpolation runs once per
  cell and is expanded onto pairs with one cheap single-axis take
  (:attr:`PlanLevel.pair_cell`);
* every gather and scatter goes through **precomputed flat offsets**
  into the raveled ``WS`` tensor (:meth:`SweepPlan._offsets`), so each
  access is one integer add plus a 1-D fancy index — NumPy's fast
  path — instead of a multi-array broadcast index;
* the scatter replays the reference accumulation order per target
  cell: pairs are slotted by occurrence rank of their ``(source,
  output)`` cell in edge-major order (:attr:`PlanLevel.slots`),
  exactly the order the unfused loop's ``np.add.at`` decomposition
  adds them in.

Dropping the zero-share work is bitwise-neutral: the ``WS`` tensor
holds only nonnegative finite widths (never ``-0.0``), a zero share
times a finite contribution is exactly ``+0.0``, and ``x + 0.0 == x``
bit for bit for every such ``x``.  Each live contribution is computed
with the identical expression and added in the identical per-cell
order, so the NumPy backend's fused execution is bitwise identical to
the unfused loop — the conformance matrix and the Hypothesis suite pin
this.  Plans are cached per ``(structure, backend name)`` on the
:class:`~repro.core.masking.MaskingStructure` and, across analyzers,
in the engine's :class:`~repro.engine.cache.ArtifactCache` under a key
with an explicit backend axis
(:func:`repro.engine.artifacts.sweep_plan_key`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import resolve_backend
from repro.backend.base import ArrayBackend
from repro.core.masking import MaskingStructure
from repro.errors import AnalysisError


@dataclass(frozen=True)
class PlanLevel:
    """Everything precomputable about one reverse-sweep level.

    ``cstart:cstop`` slices this level's gather cells, ``pstart:pstop``
    its live pairs, out of the plan's concatenated cell/pair axes.  A
    *cell* is a unique ``(destination row, output)`` whose table is
    interpolated once; a *pair* is a live ``(edge, output)`` that
    expands a cell's interpolated value, weights it with its Equation-2
    share and accumulates onto its ``(source row, output)`` target.
    """

    cstart: int
    cstop: int
    pstart: int
    pstop: int
    #: Pair -> local cell index, ``(P,)`` — the expansion gather.
    pair_cell: np.ndarray
    #: Nonzero Equation-2 shares, ``(P,)`` with broadcast views.
    pair_share: np.ndarray
    share_batch: np.ndarray
    share_single: np.ndarray
    #: Local pair positions per occurrence rank of the scatter target —
    #: replaying them in rank order reproduces the reference
    #: ``np.add.at`` accumulation order per target cell.
    slots: tuple


@dataclass(frozen=True)
class SweepPlan:
    """Compiled execution plan of the Section-3.2 reverse sweep.

    Bound to one :class:`~repro.core.masking.MaskingStructure` (the
    shares are baked into the levels) and tagged with the array-backend
    name it was resolved for — the tag is what puts the backend axis on
    engine cache keys; the index/share content itself is
    backend-independent.
    """

    backend_name: str
    n_signals: int
    n_outputs: int
    #: Destination row / output column per gather cell, concatenated
    #: over levels.
    cell_dst: np.ndarray
    cell_out: np.ndarray
    #: Source row / output column per live pair, concatenated.
    pair_src: np.ndarray
    pair_out: np.ndarray
    levels: tuple[PlanLevel, ...]
    #: Flat-offset cache keyed by ``(n_lanes, k+1)`` — raveled-WS
    #: addresses of every gather cell and scatter target.
    _offset_cache: dict = field(default_factory=dict, repr=False)

    def _offsets(
        self, n_lanes: int | None, n_anchors: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(gather, scatter)`` flat indices into ``ws.reshape(-1)``:
        ``gather`` addresses anchor 0 of each (lane, cell) table —
        adding a bracket index lands on an interpolation endpoint —
        and ``scatter`` addresses anchor 1 of each (lane, pair) target,
        so adding ``0..k-1`` spans the writable inner samples.  Shapes
        are ``(B, C, 1)`` / ``(B, P, 1)``, or ``(C, 1)`` / ``(P, 1)``
        when ``n_lanes`` is ``None`` (single-candidate); cached — the
        offsets depend only on the tensor shape, never on the data."""
        key = (n_lanes, n_anchors)
        offsets = self._offset_cache.get(key)
        if offsets is None:
            gather = (
                self.cell_dst * self.n_outputs + self.cell_out
            ) * n_anchors
            scatter = (
                self.pair_src * self.n_outputs + self.pair_out
            ) * n_anchors + 1
            if n_lanes is None:
                offsets = (gather[:, np.newaxis], scatter[:, np.newaxis])
            else:
                lane_stride = self.n_signals * self.n_outputs * n_anchors
                lanes = np.arange(n_lanes, dtype=np.int64) * lane_stride
                offsets = (
                    lanes[:, np.newaxis, np.newaxis]
                    + gather[np.newaxis, :, np.newaxis],
                    lanes[:, np.newaxis, np.newaxis]
                    + scatter[np.newaxis, :, np.newaxis],
                )
            self._offset_cache[key] = offsets
        return offsets

    def run_batch(
        self,
        ws: np.ndarray,
        low: np.ndarray,
        high: np.ndarray,
        frac: np.ndarray,
        backend: ArrayBackend,
    ) -> None:
        """Execute the sweep over a population, in place on ``ws``.

        ``ws`` is the ``(B, V, O, k+1)`` anchored table tensor with the
        PO rows already seeded; ``low``/``high``/``frac`` are the
        ``(B, V, k)`` Equation-1 bracket tensors.
        """
        if ws.shape[1] != self.n_signals or ws.shape[2] != self.n_outputs:
            raise AnalysisError(
                f"sweep plan built for ({self.n_signals}, {self.n_outputs}) "
                f"cannot run a {ws.shape} tensor"
            )
        if not ws.flags.c_contiguous:
            raise AnalysisError(
                "sweep plan needs a C-contiguous WS tensor (the flat "
                "gather offsets assume the default row-major layout)"
            )
        if not self.levels:
            return
        ws_flat = ws.reshape(-1)
        low_c = low[:, self.cell_dst]
        high_c = high[:, self.cell_dst]
        frac_c = frac[:, self.cell_dst]
        omf_c = 1.0 - frac_c
        gather, scatter = self._offsets(ws.shape[0], ws.shape[3])
        m_grid = np.arange(ws.shape[3] - 1, dtype=np.int64).reshape(1, 1, -1)
        for level in self.levels:
            if level.pstart == level.pstop:
                continue
            csl = slice(level.cstart, level.cstop)
            backend.sweep_level_batch(
                ws_flat, gather[:, csl], scatter[:, level.pstart:level.pstop],
                m_grid, level,
                low_c[:, csl], high_c[:, csl], frac_c[:, csl], omf_c[:, csl],
            )

    def run_single(
        self,
        ws: np.ndarray,
        low: np.ndarray,
        high: np.ndarray,
        frac: np.ndarray,
        backend: ArrayBackend,
    ) -> None:
        """Execute the sweep for one candidate (``ws`` is
        ``(V, O, k+1)``, brackets ``(V, k)``), in place."""
        if ws.shape[0] != self.n_signals or ws.shape[1] != self.n_outputs:
            raise AnalysisError(
                f"sweep plan built for ({self.n_signals}, {self.n_outputs}) "
                f"cannot run a {ws.shape} tensor"
            )
        if not ws.flags.c_contiguous:
            raise AnalysisError(
                "sweep plan needs a C-contiguous WS tensor (the flat "
                "gather offsets assume the default row-major layout)"
            )
        if not self.levels:
            return
        ws_flat = ws.reshape(-1)
        low_c = low[self.cell_dst]
        high_c = high[self.cell_dst]
        frac_c = frac[self.cell_dst]
        omf_c = 1.0 - frac_c
        gather, scatter = self._offsets(None, ws.shape[2])
        m_grid = np.arange(ws.shape[2] - 1, dtype=np.int64).reshape(1, -1)
        for level in self.levels:
            if level.pstart == level.pstop:
                continue
            csl = slice(level.cstart, level.cstop)
            backend.sweep_level_single(
                ws_flat, gather[csl], scatter[level.pstart:level.pstop],
                m_grid, level,
                low_c[csl], high_c[csl], frac_c[csl], omf_c[csl],
            )


def _occurrence_slots(keys: np.ndarray) -> tuple:
    """Positions per occurrence rank of each key, ranks in first-seen
    order: slot ``r`` holds (ascending) the positions that are the
    ``r``-th occurrence of their key.  Replaying ``target[keys[pos]] +=
    value[pos]`` slot by slot accumulates duplicates of a key in
    position order — the ``np.add.at`` reference semantics — while
    every individual slot is duplicate-free and safe for one fancy
    in-place add."""
    if keys.size == 0:
        return ()
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(keys.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(keys.size), 0)
    )
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.arange(keys.size) - group_start
    return tuple(
        np.flatnonzero(ranks == rank)
        for rank in range(int(ranks.max()) + 1)
    )


def build_sweep_plan(
    structure: MaskingStructure, backend_name: str = "numpy"
) -> SweepPlan:
    """Compile ``structure`` into a :class:`SweepPlan`.

    The topology schedule (edge batches per level) is served from the
    indexed circuit's cached
    :meth:`~repro.circuit.indexed.IndexedCircuit.sweep_index_plan`;
    the live-pair extraction, cell factorization and scatter slotting
    are built here from the Equation-2 shares.
    """
    idx = structure.indexed
    batches, _slots = idx.sweep_index_plan()
    n_outputs = idx.n_outputs
    levels: list[PlanLevel] = []
    cell_dst_parts: list[np.ndarray] = []
    cell_out_parts: list[np.ndarray] = []
    pair_src_parts: list[np.ndarray] = []
    pair_out_parts: list[np.ndarray] = []
    ccursor = 0
    pcursor = 0
    for edges in batches:
        dst = idx.edge_dst[edges]
        src = idx.edge_src[edges]
        share = structure.edge_shares[edges]
        # Live pairs in edge-major order — the reference loop's
        # element order, which the slot replay must preserve.
        pair_edge, pair_out = np.nonzero(share != 0.0)
        n_pairs = int(pair_edge.size)
        pair_src = src[pair_edge]
        pair_share = np.ascontiguousarray(share[pair_edge, pair_out])
        # Unique (destination, output) gather cells of this level.
        cell_key, pair_cell = np.unique(
            dst[pair_edge] * n_outputs + pair_out, return_inverse=True
        )
        n_cells = int(cell_key.size)
        levels.append(
            PlanLevel(
                cstart=ccursor,
                cstop=ccursor + n_cells,
                pstart=pcursor,
                pstop=pcursor + n_pairs,
                pair_cell=np.ascontiguousarray(pair_cell, dtype=np.int64),
                pair_share=pair_share,
                share_batch=pair_share.reshape(1, n_pairs, 1),
                share_single=pair_share.reshape(n_pairs, 1),
                slots=_occurrence_slots(pair_src * n_outputs + pair_out),
            )
        )
        cell_dst_parts.append(cell_key // n_outputs)
        cell_out_parts.append(cell_key % n_outputs)
        pair_src_parts.append(pair_src)
        pair_out_parts.append(pair_out)
        ccursor += n_cells
        pcursor += n_pairs

    def _concat(parts: list[np.ndarray]) -> np.ndarray:
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.ascontiguousarray(np.concatenate(parts), dtype=np.int64)

    return SweepPlan(
        backend_name=backend_name,
        n_signals=idx.n_signals,
        n_outputs=n_outputs,
        cell_dst=_concat(cell_dst_parts),
        cell_out=_concat(cell_out_parts),
        pair_src=_concat(pair_src_parts),
        pair_out=_concat(pair_out_parts),
        levels=tuple(levels),
    )


def sweep_plan_for(
    structure: MaskingStructure,
    backend: ArrayBackend | str | None = None,
) -> SweepPlan:
    """The plan for ``structure`` under ``backend``, cached per backend
    name on the structure (the same ``object.__setattr__`` idiom as the
    slot cache — a frozen dataclass with memoized derived state).

    The cache is keyed by backend *name* and the compiled content is
    assignment-independent, so candidate batches of any width and any
    mutation of assignments between calls reuse one plan safely.
    """
    if not isinstance(backend, ArrayBackend):
        backend = resolve_backend(backend)
    plans = getattr(structure, "_sweep_plans", None)
    if plans is None:
        plans = {}
        object.__setattr__(structure, "_sweep_plans", plans)
    plan = plans.get(backend.name)
    if plan is None:
        plan = build_sweep_plan(structure, backend.name)
        plans[backend.name] = plan
    return plan
