"""Delay-assignment to cell-library matching (paper Section 4).

SERTOPT's optimizer works on a continuous delay vector; this module
realizes a delay assignment with actual cells.  Exactly as the paper
describes, the circuit is traversed from primary outputs to primary
inputs: PO loads are fixed (the latch), so PO gates are matched first;
once a gate's cell is chosen its input capacitance is known, which fixes
its predecessors' loads, and so on.  The only constraint is the
no-level-shifter rule: a gate's VDD must be >= every successor's VDD.

Matching is vectorized: for each (gate type, fan-in) the engine
precomputes per-cell drive slopes and capacitances, so evaluating the
whole library for one gate is a handful of numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing, analyze_timing_batch
from repro.tech.electrical_view import CircuitElectrical, continuous_delay_arrays
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.library import (
    CellLibrary,
    CellParams,
    NOMINAL_CELL,
    ParameterAssignment,
)
from repro.units import PS_PER_FF_V_PER_UA


class _CellArrays:
    """Per-(gate type, fan-in) vectorized cell characterization."""

    def __init__(self, gtype: GateType, fanin: int, cells: tuple[CellParams, ...]):
        self.cells = cells
        #: Cell -> position; cells are unique, so this is equivalent to
        #: (and much faster than) ``cells.index(...)`` anchor lookups.
        self.cell_pos = {cell: idx for idx, cell in enumerate(cells)}
        self._frugality: dict[tuple[float, float, float], np.ndarray] = {}
        self.vdd_min = min(cell.vdd for cell in cells)
        n = len(cells)
        self.slope = np.empty(n)       # ps per fF of output capacitance
        self.self_cap = np.empty(n)    # fF
        self.input_cap = np.empty(n)   # fF per pin
        self.vdd = np.empty(n)
        self.leak_uw = np.empty(n)
        self.area = np.empty(n)
        for idx, cell in enumerate(cells):
            current = ge.drive_current_ua(
                gtype, fanin, cell.size, cell.length_nm, cell.vdd, cell.vth
            )
            self.slope[idx] = PS_PER_FF_V_PER_UA * cell.vdd / (2.0 * current)
            self.self_cap[idx] = ge.self_capacitance_ff(gtype, fanin, cell.size)
            self.input_cap[idx] = ge.input_capacitance_ff(
                gtype, fanin, cell.size, cell.length_nm
            )
            self.vdd[idx] = cell.vdd
            self.leak_uw[idx] = ge.static_power_uw(
                gtype, fanin, cell.size, cell.length_nm, cell.vdd, cell.vth
            )
            self.area[idx] = ge.area_units(gtype, fanin, cell.size, cell.length_nm)

    def delays_ps(self, load_ff: float, ramp_ps: float) -> np.ndarray:
        """Delay of every cell at this load and input ramp."""
        return (
            self.slope * (self.self_cap + load_ff)
            + k.RAMP_DELAY_FRACTION * ramp_ps
        )

    def frugality(
        self,
        energy_weight_ps_per_fj: float,
        area_weight_ps: float,
        leakage_weight_ps_per_uw: float,
    ) -> np.ndarray:
        """The per-cell frugality score term, cached per weight tuple.

        Computed with exactly the expression of the scalar matcher, so
        cached and freshly-computed scores agree bitwise.
        """
        key = (energy_weight_ps_per_fj, area_weight_ps, leakage_weight_ps_per_uw)
        cached = self._frugality.get(key)
        if cached is None:
            dynamic_proxy = (self.self_cap + self.input_cap) * self.vdd**2
            cached = (
                energy_weight_ps_per_fj * dynamic_proxy
                + area_weight_ps * self.area
                + leakage_weight_ps_per_uw * self.leak_uw
            )
            self._frugality[key] = cached
        return cached


@dataclass
class BatchMatchState:
    """Matched cells for a population of delay-target vectors.

    Arrays are ``(B, V)`` over ``circuit.indexed()`` rows; ``cell_idx``
    indexes into ``cells`` (the library's cell tuple) and is ``-1`` on
    non-gate rows.  ``input_cap``/``vdd`` carry the chosen cells' pin
    capacitance and supply so an incremental rematch can start from a
    previous state without re-deriving them.
    """

    cells: tuple[CellParams, ...]
    cell_idx: np.ndarray
    input_cap: np.ndarray
    vdd: np.ndarray

    def param_arrays(
        self, lanes: np.ndarray | None = None
    ) -> dict[str, np.ndarray]:
        """Stacked ``(L, V)`` cell-parameter arrays for ``lanes`` (all
        lanes when omitted), with :data:`NOMINAL_CELL` defaults on
        non-gate rows — exactly the shape
        :func:`repro.tech.electrical_view.cell_param_arrays` produces
        for the materialized assignments."""
        idx = self.cell_idx if lanes is None else self.cell_idx[lanes]
        luts = {
            "size": np.array([c.size for c in self.cells]),
            "length_nm": np.array([c.length_nm for c in self.cells]),
            "vdd": np.array([c.vdd for c in self.cells]),
            "vth": np.array([c.vth for c in self.cells]),
        }
        defaults = {
            "size": NOMINAL_CELL.size,
            "length_nm": NOMINAL_CELL.length_nm,
            "vdd": NOMINAL_CELL.vdd,
            "vth": NOMINAL_CELL.vth,
        }
        chosen = idx >= 0
        out: dict[str, np.ndarray] = {}
        for field, lut in luts.items():
            arr = np.full(idx.shape, defaults[field], dtype=np.float64)
            arr[chosen] = lut[idx[chosen]]
            out[field] = arr
        return out

    def assignment(self, lane: int, order: tuple[str, ...]) -> ParameterAssignment:
        """Materialize lane ``lane`` as a :class:`ParameterAssignment`."""
        built = ParameterAssignment()
        row_cells = self.cell_idx[lane]
        for row, name in enumerate(order):
            if row_cells[row] >= 0:
                built.set(name, self.cells[row_cells[row]])
        return built


class MatchingEngine:
    """Matches delay assignments onto a discrete cell library."""

    def __init__(self, circuit: Circuit, library: CellLibrary) -> None:
        self.circuit = circuit
        self.library = library
        self._arrays: dict[tuple[GateType, int], _CellArrays] = {}
        self._reverse_order = tuple(
            name for name in circuit.reverse_topological_order()
            if not circuit.gate(name).is_input
        )

    def _cell_arrays(self, gtype: GateType, fanin: int) -> _CellArrays:
        key = (gtype, fanin)
        arrays = self._arrays.get(key)
        if arrays is None:
            arrays = _CellArrays(gtype, fanin, self.library.cells())
            self._arrays[key] = arrays
        return arrays

    def _row_plan(self):
        """Reverse-topological per-gate plan over indexed rows.

        One tuple per gate, in exactly :attr:`_reverse_order` order:
        ``(name, row, fanout_rows, is_output, cell_arrays)``.  Built
        once per engine; the batched matcher walks it instead of chasing
        name-keyed maps.
        """
        plan = getattr(self, "_plan", None)
        if plan is None:
            idx = self.circuit.indexed()
            plan = []
            for name in self._reverse_order:
                gate = self.circuit.gate(name)
                row = idx.index[name]
                fanouts = tuple(
                    idx.index[s] for s in self.circuit.fanouts(name)
                )
                plan.append(
                    (
                        name,
                        row,
                        fanouts,
                        np.array(fanouts, dtype=np.int64),
                        self.circuit.is_output(name),
                        self._cell_arrays(gate.gtype, gate.fanin_count),
                    )
                )
            self._plan = plan
        return plan

    def _ramp_row(self, input_ramps) -> np.ndarray:
        """Dense per-row input-ramp estimates (``PRIMARY_INPUT_RAMP_PS``
        where the mapping has no entry, as the scalar matcher assumes)."""
        if isinstance(input_ramps, np.ndarray):
            return input_ramps
        idx = self.circuit.indexed()
        out = np.full(idx.n_signals, k.PRIMARY_INPUT_RAMP_PS)
        for name, value in input_ramps.items():
            row = idx.index.get(name)
            if row is not None:
                out[row] = float(value)
        return out

    def _anchor_row(self, anchor: ParameterAssignment | None) -> np.ndarray | None:
        """Per-row anchor cell positions (-1 where absent/ineligible)."""
        if anchor is None:
            return None
        idx = self.circuit.indexed()
        out = np.full(idx.n_signals, -1, dtype=np.int64)
        for name, row, __f, __fa, __o, arrays in self._row_plan():
            out[row] = arrays.cell_pos.get(anchor[name], -1)
        return out

    def match(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        anchor: ParameterAssignment | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> ParameterAssignment:
        """Pick, for every gate, the eligible cell whose delay is closest
        to its target.

        ``input_ramps`` supplies the expected input transition time per
        gate (the baseline circuit's ramps are a good estimate — ramps
        only contribute a small additive delay term).

        The score is the delay error in ps plus small, explicitly-priced
        frugality terms (switching-energy proxy, area, leakage), so that
        among cells within a picosecond or two of the target the cheaper
        cell wins — without them a gratuitous 1.2 V pick near a primary
        output would cascade the VDD-ordering floor over the whole fan-in
        cone.

        ``anchor`` (typically the baseline assignment) receives a score
        bonus of ``anchor_bonus_ps``: when the target delay is what the
        anchor cell already delivers, matching reproduces the anchor
        instead of wandering across quantization ties, so the
        zero-perturbation point of SERTOPT's search coincides with the
        baseline circuit.
        """
        assignment, __ = self._match_once(
            target_delays,
            input_ramps,
            anchor,
            energy_weight_ps_per_fj,
            area_weight_ps,
            leakage_weight_ps_per_uw,
            anchor_bonus_ps,
        )
        return assignment

    def match_with_timing(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        max_delay_ps: float,
        anchor: ParameterAssignment | None = None,
        repair_rounds: int = 3,
    ) -> ParameterAssignment:
        """Match, then repair timing against ``max_delay_ps``.

        The delay targets handed to SERTOPT's matcher are timing-neutral
        by construction, but the *realized* cells overshoot: the slow
        corner of the library is coarse, and gates asked to speed up may
        already be at the fastest cell.  Each repair round runs static
        timing on the realized delays and shrinks the targets of
        negative-slack gates proportionally, pulling the violating paths
        back under the constraint while leaving slack regions at their
        assigned (glitch-absorbing) delays — the iterative form of the
        paper's "best matching ... that yield delays closest to the
        assigned delays" under its timing constraint.
        """
        if max_delay_ps <= 0.0:
            raise OptimizationError(f"max_delay_ps must be > 0, got {max_delay_ps}")
        targets = dict(target_delays)
        assignment, __ = self._match_once(targets, input_ramps, anchor)
        for __r in range(repair_rounds):
            # Repair against the *true* electrical view, not matching's
            # internal estimate: slow cells also slow their successors
            # through larger output ramps, which the per-gate estimate
            # (built on baseline ramps) cannot see.
            realized = CircuitElectrical(
                self.circuit, assignment, use_tables=False
            ).delay_ps
            report = analyze_timing(self.circuit, realized)
            if report.delay_ps <= max_delay_ps * 1.001:
                break
            scale = max_delay_ps / report.delay_ps
            adjusted = False
            for name in realized:
                slack_vs_cap = (
                    report.slack_ps(name) + max_delay_ps - report.delay_ps
                )
                if slack_vs_cap < 0.0:
                    shrunk = realized[name] * scale
                    if shrunk < targets[name]:
                        targets[name] = shrunk
                        adjusted = True
            if not adjusted:
                break
            assignment, __ = self._match_once(targets, input_ramps, anchor)
        return assignment

    def match_batch(
        self,
        targets: np.ndarray,
        input_ramps,
        anchor: ParameterAssignment | None = None,
        reference: BatchMatchState | None = None,
        changed: np.ndarray | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> BatchMatchState:
        """One reverse-topological matching pass over a *population*.

        ``targets`` is ``(B, V)`` over indexed rows (gate rows
        meaningful).  Lane ``b`` chooses exactly the cells
        :meth:`match` would choose for target vector ``b`` — the same
        score arithmetic runs vectorized across lanes, so ties resolve
        identically.

        ``reference`` + ``changed`` enable the delta-aware fast path: a
        coordinate probe perturbs one nullspace direction, so only gates
        whose own target changed — or with a successor whose *chosen
        cell* changed — can match differently than the reference state.
        Dirtiness propagates source-ward exactly along that rule (a
        recomputed gate that re-picks its reference cell stops the
        wave), and untouched ``(lane, gate)`` entries are copied from
        the reference, never rescored.  ``reference`` arrays may be
        ``(V,)`` (one shared reference) or ``(B, V)`` (per-lane, as the
        timing-repair rematch uses).
        """
        targets = np.asarray(targets, dtype=np.float64)
        idx = self.circuit.indexed()
        if targets.ndim != 2 or targets.shape[1] != idx.n_signals:
            raise OptimizationError(
                f"expected (B, {idx.n_signals}) targets, got {targets.shape}"
            )
        n_lanes = targets.shape[0]
        plan = self._row_plan()
        ramp_row = self._ramp_row(input_ramps)
        anchor_row = self._anchor_row(anchor)
        cells = self.library.cells()

        if reference is None:
            cell_idx = np.full((n_lanes, idx.n_signals), -1, dtype=np.int64)
            input_cap = np.zeros((n_lanes, idx.n_signals))
            vdd = np.zeros((n_lanes, idx.n_signals))
            dirty = None
        else:
            if changed is None:
                raise OptimizationError(
                    "match_batch needs the changed mask when a reference "
                    "state is supplied"
                )
            shape = (n_lanes, idx.n_signals)
            cell_idx = np.broadcast_to(reference.cell_idx, shape).copy()
            input_cap = np.broadcast_to(reference.input_cap, shape).copy()
            vdd = np.broadcast_to(reference.vdd, shape).copy()
            dirty = np.zeros(shape, dtype=bool)
            # Conservative pre-pass: a gate can only differ from the
            # reference if its own target changed in *some* lane or some
            # successor might — the union fan-in cone of all changes.
            # Gates outside it skip with one boolean test instead of
            # per-lane mask algebra (the common case under sparse
            # coordinate probes).
            may_change = changed.any(axis=0).copy()
            for __n, row, __f, fanout_rows, __o, __a in plan:
                if not may_change[row] and fanout_rows.size:
                    if may_change[fanout_rows].any():
                        may_change[row] = True

        for name, row, fanouts, fanout_rows, is_output, arrays in plan:
            if dirty is None:
                lanes = None
                active = n_lanes
            else:
                if not may_change[row]:
                    continue
                mask = changed[:, row]
                if fanout_rows.size:
                    mask = mask | dirty[:, fanout_rows].any(axis=1)
                lanes = np.flatnonzero(mask)
                active = lanes.size
                if active == 0:
                    continue

            load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
            loadv = np.full(active, load)
            vdd_floor = np.zeros(active)
            for successor in fanouts:
                if lanes is None:
                    loadv += input_cap[:, successor]
                    np.maximum(vdd_floor, vdd[:, successor], out=vdd_floor)
                else:
                    loadv += input_cap[lanes, successor]
                    np.maximum(vdd_floor, vdd[lanes, successor], out=vdd_floor)
            if is_output:
                loadv += k.LATCH_CAP_FF

            ramp = float(ramp_row[row])
            delays = (
                arrays.slope[np.newaxis, :]
                * (arrays.self_cap[np.newaxis, :] + loadv[:, np.newaxis])
                + k.RAMP_DELAY_FRACTION * ramp
            )
            row_targets = (
                targets[:, row] if lanes is None else targets[lanes, row]
            )
            error = np.abs(delays - row_targets[:, np.newaxis])
            frugality = arrays.frugality(
                energy_weight_ps_per_fj, area_weight_ps, leakage_weight_ps_per_uw
            )
            # Fast path for the common no-constraint case: when every
            # cell clears the VDD floor (floor at or below the library
            # minimum), the eligibility mask is all-true and score ==
            # error + frugality outright — same values, fewer kernels.
            if float(vdd_floor.max(initial=0.0)) - 1e-12 <= arrays.vdd_min:
                score = error + frugality[np.newaxis, :]
                if anchor_row is not None and anchor_row[row] >= 0:
                    score[:, int(anchor_row[row])] -= anchor_bonus_ps
            else:
                eligible = (
                    arrays.vdd[np.newaxis, :] >= vdd_floor[:, np.newaxis] - 1e-12
                )
                if not eligible.any(axis=1).all():
                    raise OptimizationError(
                        f"no library cell satisfies the VDD floor for gate "
                        f"{name!r}; extend the library's VDD menu"
                    )
                score = np.where(
                    eligible, error + frugality[np.newaxis, :], np.inf
                )
                if anchor_row is not None and anchor_row[row] >= 0:
                    a_idx = int(anchor_row[row])
                    bonus_lanes = eligible[:, a_idx]
                    score[bonus_lanes, a_idx] -= anchor_bonus_ps
            best = np.argmin(score, axis=1)

            if lanes is None:
                cell_idx[:, row] = best
                input_cap[:, row] = arrays.input_cap[best]
                vdd[:, row] = arrays.vdd[best]
            else:
                previous = cell_idx[lanes, row]
                cell_idx[lanes, row] = best
                input_cap[lanes, row] = arrays.input_cap[best]
                vdd[lanes, row] = arrays.vdd[best]
                dirty[lanes, row] = best != previous

        return BatchMatchState(
            cells=cells, cell_idx=cell_idx, input_cap=input_cap, vdd=vdd
        )

    def match_with_timing_batch(
        self,
        targets: np.ndarray,
        input_ramps,
        max_delay_ps: float,
        anchor: ParameterAssignment | None = None,
        repair_rounds: int = 3,
        reference: tuple[np.ndarray, BatchMatchState] | None = None,
    ) -> BatchMatchState:
        """:meth:`match_with_timing` for a population of target vectors.

        Lane ``b`` reproduces the serial flow exactly: the realized
        delays the repair consults come from the batched continuous
        model (bitwise equal to the scalar ``use_tables=False``
        annotation), timing via the batched STA, and the
        shrink-negative-slack update applies the same expressions — so
        the per-round convergence decisions, and therefore the final
        cells, are identical per lane.  ``reference`` is an optional
        ``(ref_targets, ref_state)`` pair enabling the round-0 delta
        fast path; repair rematches always run delta-style against the
        lane's own previous round.
        """
        if max_delay_ps <= 0.0:
            raise OptimizationError(
                f"max_delay_ps must be > 0, got {max_delay_ps}"
            )
        idx = self.circuit.indexed()
        targets = np.array(targets, dtype=np.float64)
        if reference is not None:
            ref_targets, ref_state = reference
            state = self.match_batch(
                targets,
                input_ramps,
                anchor,
                reference=ref_state,
                changed=targets != np.asarray(ref_targets)[np.newaxis, :],
            )
        else:
            state = self.match_batch(targets, input_ramps, anchor)

        gate_row_mask = np.zeros(idx.n_signals, dtype=bool)
        gate_row_mask[idx.gate_rows] = True
        active = np.ones(targets.shape[0], dtype=bool)
        for __r in range(repair_rounds):
            lanes = np.flatnonzero(active)
            if lanes.size == 0:
                break
            realized = continuous_delay_arrays(
                self.circuit, state.param_arrays(lanes)
            )["delay_ps"]
            timing = analyze_timing_batch(idx, realized)
            ok = timing.delay_ps <= max_delay_ps * 1.001
            active[lanes[ok]] = False
            if ok.all():
                break
            rem = ~ok
            sub = lanes[rem]
            scale = max_delay_ps / timing.delay_ps[rem]
            slack_vs_cap = (
                timing.required_ps[rem] - timing.arrival_ps[rem]
                + max_delay_ps
                - timing.delay_ps[rem][:, np.newaxis]
            )
            shrunk = realized[rem] * scale[:, np.newaxis]
            update = (
                (slack_vs_cap < 0.0)
                & (shrunk < targets[sub])
                & gate_row_mask[np.newaxis, :]
            )
            adjusted = update.any(axis=1)
            active[sub[~adjusted]] = False
            moving = sub[adjusted]
            if moving.size == 0:
                break
            targets[moving] = np.where(
                update[adjusted], shrunk[adjusted], targets[moving]
            )
            partial = self.match_batch(
                targets[moving],
                input_ramps,
                anchor,
                reference=BatchMatchState(
                    cells=state.cells,
                    cell_idx=state.cell_idx[moving],
                    input_cap=state.input_cap[moving],
                    vdd=state.vdd[moving],
                ),
                changed=update[adjusted],
            )
            state.cell_idx[moving] = partial.cell_idx
            state.input_cap[moving] = partial.input_cap
            state.vdd[moving] = partial.vdd
        return state

    def _match_once(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        anchor: ParameterAssignment | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> tuple[ParameterAssignment, dict[str, float]]:
        """One reverse-topological matching pass.

        Returns the assignment and the *realized* per-gate delays under
        the final loads (consistent because successors are fixed before
        their predecessors are matched).
        """
        assignment = ParameterAssignment()
        realized: dict[str, float] = {}
        chosen_input_cap: dict[str, float] = {}
        chosen_vdd: dict[str, float] = {}

        for name in self._reverse_order:
            gate = self.circuit.gate(name)
            target = target_delays.get(name)
            if target is None:
                raise OptimizationError(f"no target delay for gate {name!r}")

            fanouts = self.circuit.fanouts(name)
            load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
            vdd_floor = 0.0
            for successor in fanouts:
                load += chosen_input_cap[successor]
                vdd_floor = max(vdd_floor, chosen_vdd[successor])
            if self.circuit.is_output(name):
                load += k.LATCH_CAP_FF

            arrays = self._cell_arrays(gate.gtype, gate.fanin_count)
            ramp = float(input_ramps.get(name, k.PRIMARY_INPUT_RAMP_PS))
            delays = arrays.delays_ps(load, ramp)
            eligible = arrays.vdd >= vdd_floor - 1e-12
            if not np.any(eligible):
                raise OptimizationError(
                    f"no library cell satisfies VDD >= {vdd_floor} for "
                    f"gate {name!r}; extend the library's VDD menu"
                )
            error = np.abs(delays - float(target))
            frugality = arrays.frugality(
                energy_weight_ps_per_fj, area_weight_ps, leakage_weight_ps_per_uw
            )
            score = np.where(eligible, error + frugality, np.inf)
            if anchor is not None:
                anchor_index = arrays.cell_pos.get(anchor[name], -1)
                if anchor_index >= 0 and eligible[anchor_index]:
                    score[anchor_index] -= anchor_bonus_ps
            best = int(np.argmin(score))
            cell = arrays.cells[best]
            assignment.set(name, cell)
            realized[name] = float(delays[best])
            chosen_input_cap[name] = float(arrays.input_cap[best])
            chosen_vdd[name] = float(arrays.vdd[best])

        return assignment, realized
