"""Delay-assignment to cell-library matching (paper Section 4).

SERTOPT's optimizer works on a continuous delay vector; this module
realizes a delay assignment with actual cells.  Exactly as the paper
describes, the circuit is traversed from primary outputs to primary
inputs: PO loads are fixed (the latch), so PO gates are matched first;
once a gate's cell is chosen its input capacitance is known, which fixes
its predecessors' loads, and so on.  The only constraint is the
no-level-shifter rule: a gate's VDD must be >= every successor's VDD.

Matching is vectorized twice over: for each (gate type, fan-in) the
engine precomputes per-cell drive slopes and capacitances, and the
population matcher scores *all gates of one reverse logic level* for
*all candidate lanes* in a single ``(lanes, gates, cells)`` block — a
gate's match depends only on its successors' chosen cells, and every
successor lives at a strictly smaller reverse level, so one block per
level is the exact dependency order of the paper's PO-to-PI walk.  The
fan-out load sums accumulate slot by slot in declaration order (never
``reduceat``, which would reassociate the floating-point adds), so the
level-batched matcher picks bitwise-identical cells to the per-gate
walk (kept as ``MatchingEngine(level_batched=False)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing, analyze_timing_batch
from repro.tech.electrical_view import CircuitElectrical, continuous_delay_arrays
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.library import (
    CellLibrary,
    CellParams,
    NOMINAL_CELL,
    ParameterAssignment,
)
from repro.telemetry import resolve
from repro.units import PS_PER_FF_V_PER_UA


class _CellArrays:
    """Per-(gate type, fan-in) vectorized cell characterization."""

    def __init__(self, gtype: GateType, fanin: int, cells: tuple[CellParams, ...]):
        self.cells = cells
        #: Cell -> position; cells are unique, so this is equivalent to
        #: (and much faster than) ``cells.index(...)`` anchor lookups.
        self.cell_pos = {cell: idx for idx, cell in enumerate(cells)}
        self._frugality: dict[tuple[float, float, float], np.ndarray] = {}
        self.vdd_min = min(cell.vdd for cell in cells)
        n = len(cells)
        self.slope = np.empty(n)       # ps per fF of output capacitance
        self.self_cap = np.empty(n)    # fF
        self.input_cap = np.empty(n)   # fF per pin
        self.vdd = np.empty(n)
        self.leak_uw = np.empty(n)
        self.area = np.empty(n)
        for idx, cell in enumerate(cells):
            current = ge.drive_current_ua(
                gtype, fanin, cell.size, cell.length_nm, cell.vdd, cell.vth
            )
            self.slope[idx] = PS_PER_FF_V_PER_UA * cell.vdd / (2.0 * current)
            self.self_cap[idx] = ge.self_capacitance_ff(gtype, fanin, cell.size)
            self.input_cap[idx] = ge.input_capacitance_ff(
                gtype, fanin, cell.size, cell.length_nm
            )
            self.vdd[idx] = cell.vdd
            self.leak_uw[idx] = ge.static_power_uw(
                gtype, fanin, cell.size, cell.length_nm, cell.vdd, cell.vth
            )
            self.area[idx] = ge.area_units(gtype, fanin, cell.size, cell.length_nm)

    def delays_ps(self, load_ff: float, ramp_ps: float) -> np.ndarray:
        """Delay of every cell at this load and input ramp."""
        return (
            self.slope * (self.self_cap + load_ff)
            + k.RAMP_DELAY_FRACTION * ramp_ps
        )

    def frugality(
        self,
        energy_weight_ps_per_fj: float,
        area_weight_ps: float,
        leakage_weight_ps_per_uw: float,
    ) -> np.ndarray:
        """The per-cell frugality score term, cached per weight tuple.

        Computed with exactly the expression of the scalar matcher, so
        cached and freshly-computed scores agree bitwise.
        """
        key = (energy_weight_ps_per_fj, area_weight_ps, leakage_weight_ps_per_uw)
        cached = self._frugality.get(key)
        if cached is None:
            dynamic_proxy = (self.self_cap + self.input_cap) * self.vdd**2
            cached = (
                energy_weight_ps_per_fj * dynamic_proxy
                + area_weight_ps * self.area
                + leakage_weight_ps_per_uw * self.leak_uw
            )
            self._frugality[key] = cached
        return cached


@dataclass
class BatchMatchState:
    """Matched cells for a population of delay-target vectors.

    Arrays are ``(B, V)`` over ``circuit.indexed()`` rows; ``cell_idx``
    indexes into ``cells`` (the library's cell tuple) and is ``-1`` on
    non-gate rows.  ``input_cap``/``vdd`` carry the chosen cells' pin
    capacitance and supply so an incremental rematch can start from a
    previous state without re-deriving them.
    """

    cells: tuple[CellParams, ...]
    cell_idx: np.ndarray
    input_cap: np.ndarray
    vdd: np.ndarray

    def param_arrays(
        self, lanes: np.ndarray | None = None
    ) -> dict[str, np.ndarray]:
        """Stacked ``(L, V)`` cell-parameter arrays for ``lanes`` (all
        lanes when omitted), with :data:`NOMINAL_CELL` defaults on
        non-gate rows — exactly the shape
        :func:`repro.tech.electrical_view.cell_param_arrays` produces
        for the materialized assignments."""
        idx = self.cell_idx if lanes is None else self.cell_idx[lanes]
        luts = {
            "size": np.array([c.size for c in self.cells]),
            "length_nm": np.array([c.length_nm for c in self.cells]),
            "vdd": np.array([c.vdd for c in self.cells]),
            "vth": np.array([c.vth for c in self.cells]),
        }
        defaults = {
            "size": NOMINAL_CELL.size,
            "length_nm": NOMINAL_CELL.length_nm,
            "vdd": NOMINAL_CELL.vdd,
            "vth": NOMINAL_CELL.vth,
        }
        chosen = idx >= 0
        out: dict[str, np.ndarray] = {}
        for field, lut in luts.items():
            arr = np.full(idx.shape, defaults[field], dtype=np.float64)
            arr[chosen] = lut[idx[chosen]]
            out[field] = arr
        return out

    def assignment(self, lane: int, order: tuple[str, ...]) -> ParameterAssignment:
        """Materialize lane ``lane`` as a :class:`ParameterAssignment`."""
        built = ParameterAssignment()
        row_cells = self.cell_idx[lane]
        for row, name in enumerate(order):
            if row_cells[row] >= 0:
                built.set(name, self.cells[row_cells[row]])
        return built


class _LevelBlock:
    """Precomputed score block for one reverse logic level.

    Row ``g`` of every ``(gates, cells)`` array characterizes gate
    ``rows[g]`` under its own ``(gate type, fan-in)`` cell table; the
    fan-out slot lists replay the scalar matcher's load accumulation —
    slot ``k`` holds, for every gate with at least ``k + 1`` fan-outs,
    its ``k``-th successor in declaration order, so adding the slots in
    order performs exactly the per-gate sequential sum.
    """

    def __init__(self, engine: "MatchingEngine", idx, rows: np.ndarray) -> None:
        circuit = engine.circuit
        fanout_lists = [
            tuple(idx.index[s] for s in circuit.fanouts(idx.order[row]))
            for row in rows
        ]
        # Sort the level's gates by fan-out count, descending (stable):
        # the gates slot ``k`` touches are then always a *prefix* of the
        # level, so every per-slot update is a plain slice instead of a
        # fancy-index gather — and any `flatnonzero` gate subset keeps
        # the prefix property, because a subsequence of a non-increasing
        # sequence is non-increasing.
        order = np.argsort(
            [-len(f) for f in fanout_lists], kind="stable"
        )
        self.rows = rows[order]
        fanout_lists = [fanout_lists[pos] for pos in order]
        gate_arrays = []
        wire_base = np.empty(rows.size)
        for pos, row in enumerate(self.rows):
            gate = circuit.gate(idx.order[row])
            gate_arrays.append(engine._cell_arrays(gate.gtype, gate.fanin_count))
            wire_base[pos] = k.WIRE_CAP_PER_FANOUT_FF * max(
                1, len(fanout_lists[pos])
            )
        self.gate_arrays = gate_arrays
        self.wire_base = wire_base
        self.is_out = idx.is_output[self.rows]
        self.out_cols = np.flatnonzero(self.is_out)

        self.slope = np.stack([a.slope for a in gate_arrays])
        self.self_cap = np.stack([a.self_cap for a in gate_arrays])
        self.input_cap = np.stack([a.input_cap for a in gate_arrays])
        self.vdd = np.stack([a.vdd for a in gate_arrays])
        #: ``(2, G, C)`` chosen-cell attribute stack — one gather pulls
        #: both the input capacitance and the supply of the winners.
        self.icap_vdd = np.stack([self.input_cap, self.vdd])
        self.vdd_min = np.array([a.vdd_min for a in gate_arrays])
        self.vdd_min_level = float(self.vdd_min.min())
        self.gate_ar = np.arange(rows.size, dtype=np.int64)[np.newaxis, :]
        #: Per-anchor-row cache of ``(ga, apos)`` anchor positions.
        self._anchor_slots: tuple | None = None
        #: ``[start, end)`` of this block in the engine's concatenated
        #: plan arrays; assigned by ``MatchingEngine._level_plan``.
        self.span = (0, rows.size)

        self.fo_counts = np.array(
            [len(f) for f in fanout_lists], dtype=np.int64
        )
        self.max_deg = int(self.fo_counts.max(initial=0))
        self.fo_slots = np.full(
            (rows.size, self.max_deg), -1, dtype=np.int64
        )
        for pos, fanouts in enumerate(fanout_lists):
            self.fo_slots[pos, : len(fanouts)] = fanouts
        #: Full-level slot plan: slot ``j`` is ``(end, fo)`` — gates
        #: ``[:end]`` (a prefix, by the sort above) gain successor
        #: ``fo[g]`` as their ``j``-th fan-out load contribution.
        self.slots: list[tuple[int, np.ndarray]] = []
        for slot in range(self.max_deg):
            end = int(np.count_nonzero(self.fo_counts > slot))
            self.slots.append((end, self.fo_slots[:end, slot]))

        self._frugality: dict[tuple[float, float, float], np.ndarray] = {}

    def frugality(self, key: tuple[float, float, float]) -> np.ndarray:
        """Stacked ``(gates, cells)`` frugality rows for one weight
        tuple, sourced from the per-group caches so the values are the
        per-gate arrays bit for bit."""
        cached = self._frugality.get(key)
        if cached is None:
            cached = np.stack([a.frugality(*key) for a in self.gate_arrays])
            self._frugality[key] = cached
        return cached

    def anchor_slots(self, anchor_row: np.ndarray):
        """``(positions, ga, apos)`` — per-gate anchor cell indices plus
        the nonnegative (position, cell) pairs — cached per anchor-row
        array (the engine hands the same array for every match against
        one anchor)."""
        cached = self._anchor_slots
        if cached is None or cached[0] is not anchor_row:
            positions = anchor_row[self.rows]
            ga = np.flatnonzero(positions >= 0)
            cached = (anchor_row, positions, ga, positions[ga])
            self._anchor_slots = cached
        return cached[1], cached[2], cached[3]


class MatchingEngine:
    """Matches delay assignments onto a discrete cell library.

    ``level_batched`` selects the population matcher's schedule: the
    default scores one ``(lanes, gates, cells)`` block per reverse
    logic level; ``False`` keeps the original per-gate walk.  Both pick
    bitwise-identical cells — the flag exists for differential testing
    and benchmarking.  ``telemetry`` records ``matcher.match_batch``
    spans and the dirty-wave counters (``matcher.pairs.rescored`` /
    ``matcher.pairs.total``) quantifying how much scoring work the
    delta fast path avoids.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        level_batched: bool = True,
        telemetry=None,
    ) -> None:
        self.circuit = circuit
        self.library = library
        self.level_batched = bool(level_batched)
        self.telemetry = resolve(telemetry)
        self._arrays: dict[tuple[GateType, int], _CellArrays] = {}
        self._reverse_order = tuple(
            name for name in circuit.reverse_topological_order()
            if not circuit.gate(name).is_input
        )

    def _cell_arrays(self, gtype: GateType, fanin: int) -> _CellArrays:
        key = (gtype, fanin)
        arrays = self._arrays.get(key)
        if arrays is None:
            arrays = _CellArrays(gtype, fanin, self.library.cells())
            self._arrays[key] = arrays
        return arrays

    def _row_plan(self):
        """Reverse-topological per-gate plan over indexed rows.

        One tuple per gate, in exactly :attr:`_reverse_order` order:
        ``(name, row, fanout_rows, is_output, cell_arrays)``.  Built
        once per engine; the batched matcher walks it instead of chasing
        name-keyed maps.
        """
        plan = getattr(self, "_plan", None)
        if plan is None:
            idx = self.circuit.indexed()
            plan = []
            for name in self._reverse_order:
                gate = self.circuit.gate(name)
                row = idx.index[name]
                fanouts = tuple(
                    idx.index[s] for s in self.circuit.fanouts(name)
                )
                plan.append(
                    (
                        name,
                        row,
                        fanouts,
                        np.array(fanouts, dtype=np.int64),
                        self.circuit.is_output(name),
                        self._cell_arrays(gate.gtype, gate.fanin_count),
                    )
                )
            self._plan = plan
        return plan

    def _ramp_row(self, input_ramps) -> np.ndarray:
        """Dense per-row input-ramp estimates (``PRIMARY_INPUT_RAMP_PS``
        where the mapping has no entry, as the scalar matcher assumes)."""
        if isinstance(input_ramps, np.ndarray):
            return input_ramps
        idx = self.circuit.indexed()
        out = np.full(idx.n_signals, k.PRIMARY_INPUT_RAMP_PS)
        for name, value in input_ramps.items():
            row = idx.index.get(name)
            if row is not None:
                out[row] = float(value)
        return out

    def _anchor_row(self, anchor: ParameterAssignment | None) -> np.ndarray | None:
        """Per-row anchor cell positions (-1 where absent/ineligible).

        Cached per anchor object: SERTOPT anchors every match of a run
        on the one baseline assignment, so the name-keyed walk happens
        once instead of once per ``match_batch`` call.
        """
        if anchor is None:
            return None
        cached = getattr(self, "_anchor_cache", None)
        if (
            cached is not None
            and cached[0] is anchor
            and cached[1] == anchor.version
        ):
            return cached[2]
        idx = self.circuit.indexed()
        out = np.full(idx.n_signals, -1, dtype=np.int64)
        for name, row, __f, __fa, __o, arrays in self._row_plan():
            out[row] = arrays.cell_pos.get(anchor[name], -1)
        self._anchor_cache = (anchor, anchor.version, out)
        return out

    def match(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        anchor: ParameterAssignment | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> ParameterAssignment:
        """Pick, for every gate, the eligible cell whose delay is closest
        to its target.

        ``input_ramps`` supplies the expected input transition time per
        gate (the baseline circuit's ramps are a good estimate — ramps
        only contribute a small additive delay term).

        The score is the delay error in ps plus small, explicitly-priced
        frugality terms (switching-energy proxy, area, leakage), so that
        among cells within a picosecond or two of the target the cheaper
        cell wins — without them a gratuitous 1.2 V pick near a primary
        output would cascade the VDD-ordering floor over the whole fan-in
        cone.

        ``anchor`` (typically the baseline assignment) receives a score
        bonus of ``anchor_bonus_ps``: when the target delay is what the
        anchor cell already delivers, matching reproduces the anchor
        instead of wandering across quantization ties, so the
        zero-perturbation point of SERTOPT's search coincides with the
        baseline circuit.
        """
        assignment, __ = self._match_once(
            target_delays,
            input_ramps,
            anchor,
            energy_weight_ps_per_fj,
            area_weight_ps,
            leakage_weight_ps_per_uw,
            anchor_bonus_ps,
        )
        return assignment

    def match_with_timing(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        max_delay_ps: float,
        anchor: ParameterAssignment | None = None,
        repair_rounds: int = 3,
    ) -> ParameterAssignment:
        """Match, then repair timing against ``max_delay_ps``.

        The delay targets handed to SERTOPT's matcher are timing-neutral
        by construction, but the *realized* cells overshoot: the slow
        corner of the library is coarse, and gates asked to speed up may
        already be at the fastest cell.  Each repair round runs static
        timing on the realized delays and shrinks the targets of
        negative-slack gates proportionally, pulling the violating paths
        back under the constraint while leaving slack regions at their
        assigned (glitch-absorbing) delays — the iterative form of the
        paper's "best matching ... that yield delays closest to the
        assigned delays" under its timing constraint.
        """
        if max_delay_ps <= 0.0:
            raise OptimizationError(f"max_delay_ps must be > 0, got {max_delay_ps}")
        targets = dict(target_delays)
        assignment, __ = self._match_once(targets, input_ramps, anchor)
        for __r in range(repair_rounds):
            # Repair against the *true* electrical view, not matching's
            # internal estimate: slow cells also slow their successors
            # through larger output ramps, which the per-gate estimate
            # (built on baseline ramps) cannot see.
            realized = CircuitElectrical(
                self.circuit, assignment, use_tables=False
            ).delay_ps
            report = analyze_timing(self.circuit, realized)
            if report.delay_ps <= max_delay_ps * 1.001:
                break
            scale = max_delay_ps / report.delay_ps
            adjusted = False
            for name in realized:
                slack_vs_cap = (
                    report.slack_ps(name) + max_delay_ps - report.delay_ps
                )
                if slack_vs_cap < 0.0:
                    shrunk = realized[name] * scale
                    if shrunk < targets[name]:
                        targets[name] = shrunk
                        adjusted = True
            if not adjusted:
                break
            assignment, __ = self._match_once(targets, input_ramps, anchor)
        return assignment

    def match_batch(
        self,
        targets: np.ndarray,
        input_ramps,
        anchor: ParameterAssignment | None = None,
        reference: BatchMatchState | None = None,
        changed: np.ndarray | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> BatchMatchState:
        """One reverse-topological matching pass over a *population*.

        ``targets`` is ``(B, V)`` over indexed rows (gate rows
        meaningful).  Lane ``b`` chooses exactly the cells
        :meth:`match` would choose for target vector ``b`` — the same
        score arithmetic runs vectorized across lanes, so ties resolve
        identically.

        ``reference`` + ``changed`` enable the delta-aware fast path: a
        coordinate probe perturbs one nullspace direction, so only gates
        whose own target changed — or with a successor whose *chosen
        cell* changed — can match differently than the reference state.
        Dirtiness propagates source-ward exactly along that rule (a
        recomputed gate that re-picks its reference cell stops the
        wave), and untouched ``(lane, gate)`` entries are copied from
        the reference, never rescored.  ``reference`` arrays may be
        ``(V,)`` (one shared reference) or ``(B, V)`` (per-lane, as the
        timing-repair rematch uses).
        """
        targets = np.asarray(targets, dtype=np.float64)
        idx = self.circuit.indexed()
        if targets.ndim != 2 or targets.shape[1] != idx.n_signals:
            raise OptimizationError(
                f"expected (B, {idx.n_signals}) targets, got {targets.shape}"
            )
        if reference is not None and changed is None:
            raise OptimizationError(
                "match_batch needs the changed mask when a reference "
                "state is supplied"
            )
        ramp_row = self._ramp_row(input_ramps)
        anchor_row = self._anchor_row(anchor)
        frug_key = (
            energy_weight_ps_per_fj, area_weight_ps, leakage_weight_ps_per_uw
        )
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.add("matcher.match_batch.calls")
            tel.metrics.add("matcher.lanes", targets.shape[0])
        with tel.span(
            "matcher.match_batch",
            lanes=targets.shape[0],
            mode="level" if self.level_batched else "gate",
            delta=reference is not None,
        ):
            if self.level_batched:
                return self._match_batch_levelwise(
                    targets, ramp_row, anchor_row, reference, changed,
                    frug_key, anchor_bonus_ps,
                )
            return self._match_batch_gatewise(
                targets, ramp_row, anchor_row, reference, changed,
                frug_key, anchor_bonus_ps,
            )

    def _match_batch_gatewise(
        self,
        targets: np.ndarray,
        ramp_row: np.ndarray,
        anchor_row: np.ndarray | None,
        reference: BatchMatchState | None,
        changed: np.ndarray | None,
        frug_key: tuple[float, float, float],
        anchor_bonus_ps: float,
    ) -> BatchMatchState:
        """The per-gate population matcher (one score block per gate).

        Kept verbatim as the reference schedule the level-batched
        matcher is differentially tested against.
        """
        idx = self.circuit.indexed()
        n_lanes = targets.shape[0]
        plan = self._row_plan()
        cells = self.library.cells()

        if reference is None:
            cell_idx = np.full((n_lanes, idx.n_signals), -1, dtype=np.int64)
            input_cap = np.zeros((n_lanes, idx.n_signals))
            vdd = np.zeros((n_lanes, idx.n_signals))
            dirty = None
        else:
            shape = (n_lanes, idx.n_signals)
            cell_idx = np.broadcast_to(reference.cell_idx, shape).copy()
            input_cap = np.broadcast_to(reference.input_cap, shape).copy()
            vdd = np.broadcast_to(reference.vdd, shape).copy()
            dirty = np.zeros(shape, dtype=bool)
            # Conservative pre-pass: a gate can only differ from the
            # reference if its own target changed in *some* lane or some
            # successor might — the union fan-in cone of all changes.
            # Gates outside it skip with one boolean test instead of
            # per-lane mask algebra (the common case under sparse
            # coordinate probes).
            may_change = changed.any(axis=0).copy()
            for __n, row, __f, fanout_rows, __o, __a in plan:
                if not may_change[row] and fanout_rows.size:
                    if may_change[fanout_rows].any():
                        may_change[row] = True

        for name, row, fanouts, fanout_rows, is_output, arrays in plan:
            if dirty is None:
                lanes = None
                active = n_lanes
            else:
                if not may_change[row]:
                    continue
                mask = changed[:, row]
                if fanout_rows.size:
                    mask = mask | dirty[:, fanout_rows].any(axis=1)
                lanes = np.flatnonzero(mask)
                active = lanes.size
                if active == 0:
                    continue

            load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
            loadv = np.full(active, load)
            vdd_floor = np.zeros(active)
            for successor in fanouts:
                if lanes is None:
                    loadv += input_cap[:, successor]
                    np.maximum(vdd_floor, vdd[:, successor], out=vdd_floor)
                else:
                    loadv += input_cap[lanes, successor]
                    np.maximum(vdd_floor, vdd[lanes, successor], out=vdd_floor)
            if is_output:
                loadv += k.LATCH_CAP_FF

            ramp = float(ramp_row[row])
            delays = (
                arrays.slope[np.newaxis, :]
                * (arrays.self_cap[np.newaxis, :] + loadv[:, np.newaxis])
                + k.RAMP_DELAY_FRACTION * ramp
            )
            row_targets = (
                targets[:, row] if lanes is None else targets[lanes, row]
            )
            error = np.abs(delays - row_targets[:, np.newaxis])
            frugality = arrays.frugality(*frug_key)
            # Fast path for the common no-constraint case: when every
            # cell clears the VDD floor (floor at or below the library
            # minimum), the eligibility mask is all-true and score ==
            # error + frugality outright — same values, fewer kernels.
            if float(vdd_floor.max(initial=0.0)) - 1e-12 <= arrays.vdd_min:
                score = error + frugality[np.newaxis, :]
                if anchor_row is not None and anchor_row[row] >= 0:
                    score[:, int(anchor_row[row])] -= anchor_bonus_ps
            else:
                eligible = (
                    arrays.vdd[np.newaxis, :] >= vdd_floor[:, np.newaxis] - 1e-12
                )
                if not eligible.any(axis=1).all():
                    raise OptimizationError(
                        f"no library cell satisfies the VDD floor for gate "
                        f"{name!r}; extend the library's VDD menu"
                    )
                score = np.where(
                    eligible, error + frugality[np.newaxis, :], np.inf
                )
                if anchor_row is not None and anchor_row[row] >= 0:
                    a_idx = int(anchor_row[row])
                    bonus_lanes = eligible[:, a_idx]
                    score[bonus_lanes, a_idx] -= anchor_bonus_ps
            best = np.argmin(score, axis=1)

            if lanes is None:
                cell_idx[:, row] = best
                input_cap[:, row] = arrays.input_cap[best]
                vdd[:, row] = arrays.vdd[best]
            else:
                previous = cell_idx[lanes, row]
                cell_idx[lanes, row] = best
                input_cap[lanes, row] = arrays.input_cap[best]
                vdd[lanes, row] = arrays.vdd[best]
                dirty[lanes, row] = best != previous

        return BatchMatchState(
            cells=cells, cell_idx=cell_idx, input_cap=input_cap, vdd=vdd
        )

    def _level_plan(self) -> tuple[_LevelBlock, ...]:
        """Per-reverse-level score blocks (empty levels dropped).

        Alongside the blocks, the concatenated per-gate arrays
        (``_plan_rows``, ``_plan_wire``) let one call gather its
        call-wide tensors once and hand each level a plain slice.
        """
        plan = getattr(self, "_levels", None)
        if plan is None:
            idx = self.circuit.indexed()
            plan = tuple(
                _LevelBlock(self, idx, rows)
                for rows in idx.reverse_level_rows()
                if rows.size
            )
            start = 0
            for blk in plan:
                blk.span = (start, start + blk.rows.size)
                start += blk.rows.size
            self._plan_rows = (
                np.concatenate([blk.rows for blk in plan])
                if plan
                else np.empty(0, dtype=np.int64)
            )
            self._plan_wire = (
                np.concatenate([blk.wire_base for blk in plan])
                if plan
                else np.empty(0)
            )
            self._levels = plan
        return plan

    def _score_level(
        self,
        blk: _LevelBlock,
        gsel: np.ndarray | None,
        loadv: np.ndarray,
        vddf: np.ndarray,
        row_targets: np.ndarray,
        ramp_term: np.ndarray,
        anchor_row: np.ndarray | None,
        active_mask: np.ndarray | None,
        frug_key: tuple[float, float, float],
        anchor_bonus_ps: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score one level block; return ``(best, icap_vdd_of_best)``.

        ``gsel`` restricts the block to a gate subset (delta path);
        ``active_mask`` marks which ``(lane, gate)`` entries are live —
        only they participate in the no-eligible-cell check, entries
        outside it merely ride along in the rectangle.  Every arithmetic
        expression matches the per-gate matcher operation for operation,
        so the chosen cells are bitwise those of the scalar walk.
        """
        if gsel is None:
            slope, self_cap = blk.slope, blk.self_cap
            vdd_cells = blk.vdd
            frug = blk.frugality(frug_key)
            gate_ar = blk.gate_ar
            icap_vdd = blk.icap_vdd
            if anchor_row is None:
                ga = None
            else:
                __, ga, apos = blk.anchor_slots(anchor_row)
        else:
            slope, self_cap = blk.slope[gsel], blk.self_cap[gsel]
            vdd_cells = blk.vdd[gsel]
            frug = blk.frugality(frug_key)[gsel]
            gate_ar = np.arange(gsel.size, dtype=np.int64)[np.newaxis, :]
            icap_vdd = blk.icap_vdd[:, gsel]
            if anchor_row is None:
                ga = None
            else:
                positions, __, __ = blk.anchor_slots(anchor_row)
                sub_positions = positions[gsel]
                ga = np.flatnonzero(sub_positions >= 0)
                apos = sub_positions[ga]

        delays = (
            slope[np.newaxis, :, :]
            * (self_cap[np.newaxis, :, :] + loadv[:, :, np.newaxis])
            + ramp_term[np.newaxis, :, np.newaxis]
        )
        # score = |delay - target| + frugality, built in place; the
        # anchor bonus lands before the ineligible fill below, so an
        # ineligible anchor cell still scores inf — exactly the masked
        # arithmetic (and the bit pattern) of the per-gate matcher.
        score = np.abs(delays - row_targets[:, :, np.newaxis])
        score += frug[np.newaxis, :, :]
        if ga is not None and ga.size:
            score[:, ga, apos] -= anchor_bonus_ps
        # Fast path for the common no-constraint case: every group's
        # cell menu shares one VDD floor minimum, so one level-wide
        # comparison decides whether the eligibility mask is all-true
        # (score stays as built — the same values the masked path
        # produces, in fewer kernels).
        if float(vddf.max(initial=0.0)) - 1e-12 > blk.vdd_min_level:
            eligible = (
                vdd_cells[np.newaxis, :, :] >= vddf[:, :, np.newaxis] - 1e-12
            )
            ok = eligible.any(axis=2)
            if not ok.all():
                if active_mask is not None:
                    ok = ok | ~active_mask
                if not ok.all():
                    rows = blk.rows if gsel is None else blk.rows[gsel]
                    bad = int(np.flatnonzero(~ok.all(axis=0))[0])
                    name = self.circuit.indexed().order[rows[bad]]
                    raise OptimizationError(
                        f"no library cell satisfies the VDD floor for gate "
                        f"{name!r}; extend the library's VDD menu"
                    )
            score[~eligible] = np.inf
        best = np.argmin(score, axis=2)
        return best, icap_vdd[:, gate_ar, best]

    def _match_batch_levelwise(
        self,
        targets: np.ndarray,
        ramp_row: np.ndarray,
        anchor_row: np.ndarray | None,
        reference: BatchMatchState | None,
        changed: np.ndarray | None,
        frug_key: tuple[float, float, float],
        anchor_bonus_ps: float,
    ) -> BatchMatchState:
        """The level-batched population matcher.

        One ``(lanes, gates, cells)`` score block per reverse logic
        level replaces the per-gate walk: every successor of a level's
        gates was finalized at a smaller reverse level, so the block
        sees exactly the loads and VDD floors the scalar walk would.
        Fan-out load updates accumulate slot by slot in declaration
        order (a fixed-order segment sum, never ``reduceat``), keeping
        the chosen cells bitwise identical.  The delta fast path scores
        only the rectangle of lanes × gates the dirty wave can reach,
        with untouched entries copied from the reference.
        """
        idx = self.circuit.indexed()
        n_lanes = targets.shape[0]
        plan = self._level_plan()
        cells = self.library.cells()
        rows_all = self._plan_rows
        # Call-wide tensors, one gather each; every level reads a plain
        # slice (the blocks are laid out contiguously in level order).
        targets_all = targets[:, rows_all]
        ramp_all = k.RAMP_DELAY_FRACTION * ramp_row[rows_all]
        loadv_all = np.repeat(self._plan_wire[np.newaxis, :], n_lanes, axis=0)
        vddf_all = np.zeros((n_lanes, rows_all.size))

        if reference is None:
            cell_idx = np.full((n_lanes, idx.n_signals), -1, dtype=np.int64)
            # The chosen input capacitance and supply live stacked in one
            # ``(2, B, V)`` tensor so load accumulation reads and winner
            # write-back each cost a single kernel for both quantities.
            state = np.zeros((2, n_lanes, idx.n_signals))
            input_cap, vdd = state[0], state[1]

            for blk in plan:
                rows = blk.rows
                s, e = blk.span
                loadv = loadv_all[:, s:e]
                vddf = vddf_all[:, s:e]
                for end, fo in blk.slots:
                    loadv[:, :end] += input_cap[:, fo]
                    vddf[:, :end] = np.maximum(vddf[:, :end], vdd[:, fo])
                if blk.out_cols.size:
                    loadv[:, blk.out_cols] += k.LATCH_CAP_FF
                best, chosen = self._score_level(
                    blk,
                    None,
                    loadv,
                    vddf,
                    targets_all[:, s:e],
                    ramp_all[s:e],
                    anchor_row,
                    None,
                    frug_key,
                    anchor_bonus_ps,
                )
                cell_idx[:, rows] = best
                state[:, :, rows] = chosen

            if self.telemetry.enabled:
                pairs = n_lanes * rows_all.size
                self.telemetry.metrics.add("matcher.pairs.rescored", pairs)
                self.telemetry.metrics.add("matcher.pairs.total", pairs)
            return BatchMatchState(
                cells=cells, cell_idx=cell_idx, input_cap=input_cap, vdd=vdd
            )

        shape = (n_lanes, idx.n_signals)
        changed = np.asarray(changed, dtype=bool)
        cell_idx = np.broadcast_to(reference.cell_idx, shape).copy()
        state = np.empty((2, n_lanes, idx.n_signals))
        state[0] = reference.input_cap
        state[1] = reference.vdd
        input_cap, vdd = state[0], state[1]
        dirty = np.zeros(shape, dtype=bool)
        mask_all = changed[:, rows_all]
        track = self.telemetry.enabled
        rescored = 0

        for blk in plan:
            rows = blk.rows
            s, e = blk.span
            # Exact per-lane dirtiness: a (lane, gate) entry rescores
            # iff its own target changed or a successor's chosen cell
            # did — the dirty wave of the scalar walk, one slot slice
            # per fan-out position.
            mask = mask_all[:, s:e]
            for end, fo in blk.slots:
                mask[:, :end] |= dirty[:, fo]
            gsel = np.flatnonzero(mask.any(axis=0))
            if gsel.size == 0:
                continue
            # Mostly-active levels run the slice-based full-level block:
            # scoring the few inactive gates costs less than subsetting
            # every tensor, and their writes are mask-gated anyway.
            if 3 * gsel.size >= 2 * rows.size:
                gsel_idx = None
                rows_g = rows
                sub_mask = mask
                loadv = loadv_all[:, s:e]
                vddf = vddf_all[:, s:e]
                for end, fo in blk.slots:
                    loadv[:, :end] += input_cap[:, fo]
                    vddf[:, :end] = np.maximum(vddf[:, :end], vdd[:, fo])
                if blk.out_cols.size:
                    loadv[:, blk.out_cols] += k.LATCH_CAP_FF
                row_targets = targets_all[:, s:e]
                ramp_term = ramp_all[s:e]
            else:
                gsel_idx = gsel
                rows_g = rows[gsel]
                sub_mask = mask[:, gsel]
                sub_counts = blk.fo_counts[gsel]
                sub_slots = blk.fo_slots[gsel]
                loadv = np.repeat(
                    blk.wire_base[gsel][np.newaxis, :], n_lanes, axis=0
                )
                vddf = np.zeros((n_lanes, gsel.size))
                for slot in range(blk.max_deg):
                    # The fan-out-count sort survives subsetting, so the
                    # gates with a slot-`slot` successor are a prefix.
                    end = int(np.count_nonzero(sub_counts > slot))
                    if end == 0:
                        break
                    fo = sub_slots[:end, slot]
                    loadv[:, :end] += input_cap[:, fo]
                    vddf[:, :end] = np.maximum(vddf[:, :end], vdd[:, fo])
                out_sel = np.flatnonzero(blk.is_out[gsel])
                if out_sel.size:
                    loadv[:, out_sel] += k.LATCH_CAP_FF
                row_targets = targets_all[:, s:e][:, gsel]
                ramp_term = ramp_all[s:e][gsel]

            best, chosen = self._score_level(
                blk,
                gsel_idx,
                loadv,
                vddf,
                row_targets,
                ramp_term,
                anchor_row,
                sub_mask,
                frug_key,
                anchor_bonus_ps,
            )
            previous = cell_idx[:, rows_g]
            new_cells = np.where(sub_mask, best, previous)
            cell_idx[:, rows_g] = new_cells
            state[:, :, rows_g] = np.where(
                sub_mask[np.newaxis], chosen, state[:, :, rows_g]
            )
            dirty[:, rows_g] = sub_mask & (new_cells != previous)
            if track:
                rescored += int(sub_mask.sum())

        if track:
            self.telemetry.metrics.add("matcher.pairs.rescored", rescored)
            self.telemetry.metrics.add(
                "matcher.pairs.total", n_lanes * rows_all.size
            )
        return BatchMatchState(
            cells=cells, cell_idx=cell_idx, input_cap=input_cap, vdd=vdd
        )

    def match_with_timing_batch(
        self,
        targets: np.ndarray,
        input_ramps,
        max_delay_ps: float,
        anchor: ParameterAssignment | None = None,
        repair_rounds: int = 3,
        reference: tuple[np.ndarray, BatchMatchState] | None = None,
    ) -> BatchMatchState:
        """:meth:`match_with_timing` for a population of target vectors.

        Lane ``b`` reproduces the serial flow exactly: the realized
        delays the repair consults come from the batched continuous
        model (bitwise equal to the scalar ``use_tables=False``
        annotation), timing via the batched STA, and the
        shrink-negative-slack update applies the same expressions — so
        the per-round convergence decisions, and therefore the final
        cells, are identical per lane.  ``reference`` is an optional
        ``(ref_targets, ref_state)`` pair enabling the round-0 delta
        fast path; repair rematches always run delta-style against the
        lane's own previous round.
        """
        if max_delay_ps <= 0.0:
            raise OptimizationError(
                f"max_delay_ps must be > 0, got {max_delay_ps}"
            )
        idx = self.circuit.indexed()
        targets = np.array(targets, dtype=np.float64)
        if reference is not None:
            ref_targets, ref_state = reference
            state = self.match_batch(
                targets,
                input_ramps,
                anchor,
                reference=ref_state,
                changed=targets != np.asarray(ref_targets)[np.newaxis, :],
            )
        else:
            state = self.match_batch(targets, input_ramps, anchor)

        gate_row_mask = np.zeros(idx.n_signals, dtype=bool)
        gate_row_mask[idx.gate_rows] = True
        active = np.ones(targets.shape[0], dtype=bool)
        for __r in range(repair_rounds):
            lanes = np.flatnonzero(active)
            if lanes.size == 0:
                break
            if self.telemetry.enabled:
                self.telemetry.metrics.add("matcher.repair_rounds")
            realized = continuous_delay_arrays(
                self.circuit, state.param_arrays(lanes)
            )["delay_ps"]
            timing = analyze_timing_batch(idx, realized)
            ok = timing.delay_ps <= max_delay_ps * 1.001
            active[lanes[ok]] = False
            if ok.all():
                break
            rem = ~ok
            sub = lanes[rem]
            scale = max_delay_ps / timing.delay_ps[rem]
            slack_vs_cap = (
                timing.required_ps[rem] - timing.arrival_ps[rem]
                + max_delay_ps
                - timing.delay_ps[rem][:, np.newaxis]
            )
            shrunk = realized[rem] * scale[:, np.newaxis]
            update = (
                (slack_vs_cap < 0.0)
                & (shrunk < targets[sub])
                & gate_row_mask[np.newaxis, :]
            )
            adjusted = update.any(axis=1)
            active[sub[~adjusted]] = False
            moving = sub[adjusted]
            if moving.size == 0:
                break
            targets[moving] = np.where(
                update[adjusted], shrunk[adjusted], targets[moving]
            )
            partial = self.match_batch(
                targets[moving],
                input_ramps,
                anchor,
                reference=BatchMatchState(
                    cells=state.cells,
                    cell_idx=state.cell_idx[moving],
                    input_cap=state.input_cap[moving],
                    vdd=state.vdd[moving],
                ),
                changed=update[adjusted],
            )
            state.cell_idx[moving] = partial.cell_idx
            state.input_cap[moving] = partial.input_cap
            state.vdd[moving] = partial.vdd
        return state

    def _match_once(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        anchor: ParameterAssignment | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> tuple[ParameterAssignment, dict[str, float]]:
        """One reverse-topological matching pass.

        Returns the assignment and the *realized* per-gate delays under
        the final loads (consistent because successors are fixed before
        their predecessors are matched).
        """
        assignment = ParameterAssignment()
        realized: dict[str, float] = {}
        chosen_input_cap: dict[str, float] = {}
        chosen_vdd: dict[str, float] = {}

        for name in self._reverse_order:
            gate = self.circuit.gate(name)
            target = target_delays.get(name)
            if target is None:
                raise OptimizationError(f"no target delay for gate {name!r}")

            fanouts = self.circuit.fanouts(name)
            load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
            vdd_floor = 0.0
            for successor in fanouts:
                load += chosen_input_cap[successor]
                vdd_floor = max(vdd_floor, chosen_vdd[successor])
            if self.circuit.is_output(name):
                load += k.LATCH_CAP_FF

            arrays = self._cell_arrays(gate.gtype, gate.fanin_count)
            ramp = float(input_ramps.get(name, k.PRIMARY_INPUT_RAMP_PS))
            delays = arrays.delays_ps(load, ramp)
            eligible = arrays.vdd >= vdd_floor - 1e-12
            if not np.any(eligible):
                raise OptimizationError(
                    f"no library cell satisfies VDD >= {vdd_floor} for "
                    f"gate {name!r}; extend the library's VDD menu"
                )
            error = np.abs(delays - float(target))
            frugality = arrays.frugality(
                energy_weight_ps_per_fj, area_weight_ps, leakage_weight_ps_per_uw
            )
            score = np.where(eligible, error + frugality, np.inf)
            if anchor is not None:
                anchor_index = arrays.cell_pos.get(anchor[name], -1)
                if anchor_index >= 0 and eligible[anchor_index]:
                    score[anchor_index] -= anchor_bonus_ps
            best = int(np.argmin(score))
            cell = arrays.cells[best]
            assignment.set(name, cell)
            realized[name] = float(delays[best])
            chosen_input_cap[name] = float(arrays.input_cap[best])
            chosen_vdd[name] = float(arrays.vdd[best])

        return assignment, realized
