"""Delay-assignment to cell-library matching (paper Section 4).

SERTOPT's optimizer works on a continuous delay vector; this module
realizes a delay assignment with actual cells.  Exactly as the paper
describes, the circuit is traversed from primary outputs to primary
inputs: PO loads are fixed (the latch), so PO gates are matched first;
once a gate's cell is chosen its input capacitance is known, which fixes
its predecessors' loads, and so on.  The only constraint is the
no-level-shifter rule: a gate's VDD must be >= every successor's VDD.

Matching is vectorized: for each (gate type, fan-in) the engine
precomputes per-cell drive slopes and capacitances, so evaluating the
whole library for one gate is a handful of numpy operations.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing
from repro.tech.electrical_view import CircuitElectrical
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.library import CellLibrary, CellParams, ParameterAssignment
from repro.units import PS_PER_FF_V_PER_UA


class _CellArrays:
    """Per-(gate type, fan-in) vectorized cell characterization."""

    def __init__(self, gtype: GateType, fanin: int, cells: tuple[CellParams, ...]):
        self.cells = cells
        n = len(cells)
        self.slope = np.empty(n)       # ps per fF of output capacitance
        self.self_cap = np.empty(n)    # fF
        self.input_cap = np.empty(n)   # fF per pin
        self.vdd = np.empty(n)
        self.leak_uw = np.empty(n)
        self.area = np.empty(n)
        for idx, cell in enumerate(cells):
            current = ge.drive_current_ua(
                gtype, fanin, cell.size, cell.length_nm, cell.vdd, cell.vth
            )
            self.slope[idx] = PS_PER_FF_V_PER_UA * cell.vdd / (2.0 * current)
            self.self_cap[idx] = ge.self_capacitance_ff(gtype, fanin, cell.size)
            self.input_cap[idx] = ge.input_capacitance_ff(
                gtype, fanin, cell.size, cell.length_nm
            )
            self.vdd[idx] = cell.vdd
            self.leak_uw[idx] = ge.static_power_uw(
                gtype, fanin, cell.size, cell.length_nm, cell.vdd, cell.vth
            )
            self.area[idx] = ge.area_units(gtype, fanin, cell.size, cell.length_nm)

    def delays_ps(self, load_ff: float, ramp_ps: float) -> np.ndarray:
        """Delay of every cell at this load and input ramp."""
        return (
            self.slope * (self.self_cap + load_ff)
            + k.RAMP_DELAY_FRACTION * ramp_ps
        )


class MatchingEngine:
    """Matches delay assignments onto a discrete cell library."""

    def __init__(self, circuit: Circuit, library: CellLibrary) -> None:
        self.circuit = circuit
        self.library = library
        self._arrays: dict[tuple[GateType, int], _CellArrays] = {}
        self._reverse_order = tuple(
            name for name in circuit.reverse_topological_order()
            if not circuit.gate(name).is_input
        )

    def _cell_arrays(self, gtype: GateType, fanin: int) -> _CellArrays:
        key = (gtype, fanin)
        arrays = self._arrays.get(key)
        if arrays is None:
            arrays = _CellArrays(gtype, fanin, self.library.cells())
            self._arrays[key] = arrays
        return arrays

    def match(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        anchor: ParameterAssignment | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> ParameterAssignment:
        """Pick, for every gate, the eligible cell whose delay is closest
        to its target.

        ``input_ramps`` supplies the expected input transition time per
        gate (the baseline circuit's ramps are a good estimate — ramps
        only contribute a small additive delay term).

        The score is the delay error in ps plus small, explicitly-priced
        frugality terms (switching-energy proxy, area, leakage), so that
        among cells within a picosecond or two of the target the cheaper
        cell wins — without them a gratuitous 1.2 V pick near a primary
        output would cascade the VDD-ordering floor over the whole fan-in
        cone.

        ``anchor`` (typically the baseline assignment) receives a score
        bonus of ``anchor_bonus_ps``: when the target delay is what the
        anchor cell already delivers, matching reproduces the anchor
        instead of wandering across quantization ties, so the
        zero-perturbation point of SERTOPT's search coincides with the
        baseline circuit.
        """
        assignment, __ = self._match_once(
            target_delays,
            input_ramps,
            anchor,
            energy_weight_ps_per_fj,
            area_weight_ps,
            leakage_weight_ps_per_uw,
            anchor_bonus_ps,
        )
        return assignment

    def match_with_timing(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        max_delay_ps: float,
        anchor: ParameterAssignment | None = None,
        repair_rounds: int = 3,
    ) -> ParameterAssignment:
        """Match, then repair timing against ``max_delay_ps``.

        The delay targets handed to SERTOPT's matcher are timing-neutral
        by construction, but the *realized* cells overshoot: the slow
        corner of the library is coarse, and gates asked to speed up may
        already be at the fastest cell.  Each repair round runs static
        timing on the realized delays and shrinks the targets of
        negative-slack gates proportionally, pulling the violating paths
        back under the constraint while leaving slack regions at their
        assigned (glitch-absorbing) delays — the iterative form of the
        paper's "best matching ... that yield delays closest to the
        assigned delays" under its timing constraint.
        """
        if max_delay_ps <= 0.0:
            raise OptimizationError(f"max_delay_ps must be > 0, got {max_delay_ps}")
        targets = dict(target_delays)
        assignment, __ = self._match_once(targets, input_ramps, anchor)
        for __r in range(repair_rounds):
            # Repair against the *true* electrical view, not matching's
            # internal estimate: slow cells also slow their successors
            # through larger output ramps, which the per-gate estimate
            # (built on baseline ramps) cannot see.
            realized = CircuitElectrical(
                self.circuit, assignment, use_tables=False
            ).delay_ps
            report = analyze_timing(self.circuit, realized)
            if report.delay_ps <= max_delay_ps * 1.001:
                break
            scale = max_delay_ps / report.delay_ps
            adjusted = False
            for name in realized:
                slack_vs_cap = (
                    report.slack_ps(name) + max_delay_ps - report.delay_ps
                )
                if slack_vs_cap < 0.0:
                    shrunk = realized[name] * scale
                    if shrunk < targets[name]:
                        targets[name] = shrunk
                        adjusted = True
            if not adjusted:
                break
            assignment, __ = self._match_once(targets, input_ramps, anchor)
        return assignment

    def _match_once(
        self,
        target_delays: Mapping[str, float],
        input_ramps: Mapping[str, float],
        anchor: ParameterAssignment | None = None,
        energy_weight_ps_per_fj: float = 0.6,
        area_weight_ps: float = 0.03,
        leakage_weight_ps_per_uw: float = 5.0,
        anchor_bonus_ps: float = 0.5,
    ) -> tuple[ParameterAssignment, dict[str, float]]:
        """One reverse-topological matching pass.

        Returns the assignment and the *realized* per-gate delays under
        the final loads (consistent because successors are fixed before
        their predecessors are matched).
        """
        assignment = ParameterAssignment()
        realized: dict[str, float] = {}
        chosen_input_cap: dict[str, float] = {}
        chosen_vdd: dict[str, float] = {}

        for name in self._reverse_order:
            gate = self.circuit.gate(name)
            target = target_delays.get(name)
            if target is None:
                raise OptimizationError(f"no target delay for gate {name!r}")

            fanouts = self.circuit.fanouts(name)
            load = k.WIRE_CAP_PER_FANOUT_FF * max(1, len(fanouts))
            vdd_floor = 0.0
            for successor in fanouts:
                load += chosen_input_cap[successor]
                vdd_floor = max(vdd_floor, chosen_vdd[successor])
            if self.circuit.is_output(name):
                load += k.LATCH_CAP_FF

            arrays = self._cell_arrays(gate.gtype, gate.fanin_count)
            ramp = float(input_ramps.get(name, k.PRIMARY_INPUT_RAMP_PS))
            delays = arrays.delays_ps(load, ramp)
            eligible = arrays.vdd >= vdd_floor - 1e-12
            if not np.any(eligible):
                raise OptimizationError(
                    f"no library cell satisfies VDD >= {vdd_floor} for "
                    f"gate {name!r}; extend the library's VDD menu"
                )
            error = np.abs(delays - float(target))
            dynamic_proxy = (arrays.self_cap + arrays.input_cap) * arrays.vdd**2
            frugality = (
                energy_weight_ps_per_fj * dynamic_proxy
                + area_weight_ps * arrays.area
                + leakage_weight_ps_per_uw * arrays.leak_uw
            )
            score = np.where(eligible, error + frugality, np.inf)
            if anchor is not None:
                anchor_cell = anchor[name]
                try:
                    anchor_index = arrays.cells.index(anchor_cell)
                except ValueError:
                    anchor_index = -1
                if anchor_index >= 0 and eligible[anchor_index]:
                    score[anchor_index] -= anchor_bonus_ps
            best = int(np.argmin(score))
            cell = arrays.cells[best]
            assignment.set(name, cell)
            realized[name] = float(delays[best])
            chosen_input_cap[name] = float(arrays.input_cap[best])
            chosen_vdd[name] = float(arrays.vdd[best])

        return assignment, realized
