"""Optimization drivers for SERTOPT.

The paper minimizes the Equation-5 cost with Sequential Quadratic
Programming and notes that "simulated annealing, genetic algorithms or
some other optimization algorithm can also be used".  Because the
matched objective is piecewise-constant in the delay assignment (the
library is finite), the SQP driver uses a finite-difference step large
enough to cross cell boundaries; annealing and a stochastic coordinate
search are provided as the derivative-free alternatives and are the
better default on coarse libraries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.errors import OptimizationError

Objective = Callable[[np.ndarray], float]


@dataclass
class OptimizeResult:
    """Outcome of one optimizer run."""

    x: np.ndarray
    value: float
    evaluations: int
    history: list[float] = field(default_factory=list)
    method: str = ""


class _CountingObjective:
    """Wraps an objective with evaluation counting, caching of the best
    point, and a hard evaluation budget."""

    def __init__(self, objective: Objective, max_evaluations: int) -> None:
        if max_evaluations < 1:
            raise OptimizationError("max_evaluations must be >= 1")
        self._objective = objective
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self.history: list[float] = []
        self.best_x: np.ndarray | None = None
        self.best_value = math.inf

    def __call__(self, x: np.ndarray) -> float:
        if self.evaluations >= self.max_evaluations:
            # Budget exhausted: return the best seen so SQP line searches
            # terminate quietly instead of burning more evaluations.
            return self.best_value
        self.evaluations += 1
        value = float(self._objective(np.asarray(x, dtype=np.float64)))
        self.history.append(value)
        if value < self.best_value:
            self.best_value = value
            self.best_x = np.array(x, dtype=np.float64)
        return value


def minimize_slsqp(
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int = 400,
    fd_step: float = 2.0,
) -> OptimizeResult:
    """SQP (scipy SLSQP) with a coarse finite-difference step.

    ``fd_step`` should be of the order of the delay quantum between
    adjacent library cells (a few ps) so numerical gradients see the
    discrete structure rather than a flat plateau.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    counter = _CountingObjective(objective, max_evaluations)
    counter(x0)
    bounds = [(-bounds_halfwidth, bounds_halfwidth)] * x0.size
    try:
        minimize(
            counter,
            x0,
            method="SLSQP",
            bounds=bounds,
            options={
                "maxiter": max(1, max_evaluations // (x0.size + 2)),
                "eps": fd_step,
                "ftol": 1e-6,
            },
        )
    except OptimizationError:
        raise
    except Exception as exc:  # scipy can fail on degenerate problems
        raise OptimizationError(f"SLSQP failed: {exc}") from exc
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="slsqp",
    )


def minimize_annealing(
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int = 400,
    seed: int = 0,
    initial_step: float | None = None,
    initial_temperature: float | None = None,
) -> OptimizeResult:
    """Simulated annealing with geometric cooling and step shrinking."""
    x0 = np.asarray(x0, dtype=np.float64)
    counter = _CountingObjective(objective, max_evaluations)
    rng = random.Random(seed)
    current_x = x0.copy()
    current_value = counter(current_x)
    step = initial_step if initial_step is not None else bounds_halfwidth / 4.0
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(abs(current_value) * 0.02, 1e-6)
    )
    cooling = 0.96
    while counter.evaluations < max_evaluations:
        # Sparse moves: perturb a few coordinates, not the whole vector —
        # full-dimension Gaussian steps in a 20+-dimensional nullspace
        # are almost always ruinous and waste the evaluation budget.
        proposal = current_x.copy()
        active = max(1, min(x0.size, int(rng.expovariate(1.0 / 2.0)) + 1))
        for dim in rng.sample(range(x0.size), active):
            proposal[dim] += rng.gauss(0.0, step)
        np.clip(proposal, -bounds_halfwidth, bounds_halfwidth, out=proposal)
        value = counter(proposal)
        accept = value <= current_value or (
            temperature > 0.0
            and rng.random() < math.exp((current_value - value) / temperature)
        )
        if accept:
            current_x, current_value = proposal, value
        temperature *= cooling
        step = max(step * 0.995, bounds_halfwidth / 50.0)
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="annealing",
    )


def minimize_coordinate(
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int = 400,
    seed: int = 0,
    step_schedule: Sequence[float] = (0.5, 0.25, 0.1),
) -> OptimizeResult:
    """Stochastic coordinate descent: probe +-step along one coordinate
    at a time, keeping improvements; steps shrink per sweep schedule."""
    x0 = np.asarray(x0, dtype=np.float64)
    counter = _CountingObjective(objective, max_evaluations)
    rng = random.Random(seed)
    current_x = x0.copy()
    current_value = counter(current_x)
    dims = list(range(x0.size))
    for fraction in step_schedule:
        step = bounds_halfwidth * fraction
        rng.shuffle(dims)
        for dim in dims:
            if counter.evaluations >= max_evaluations:
                break
            for direction in (1.0, -1.0):
                probe = current_x.copy()
                probe[dim] = float(
                    np.clip(
                        probe[dim] + direction * step,
                        -bounds_halfwidth,
                        bounds_halfwidth,
                    )
                )
                value = counter(probe)
                if value < current_value:
                    current_x, current_value = probe, value
                    break
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="coordinate",
    )


OPTIMIZERS: dict[str, Callable[..., OptimizeResult]] = {
    "slsqp": minimize_slsqp,
    "annealing": minimize_annealing,
    "coordinate": minimize_coordinate,
}


def run_optimizer(
    method: str,
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int,
    seed: int = 0,
) -> OptimizeResult:
    """Dispatch to a registered optimizer by name."""
    try:
        driver = OPTIMIZERS[method]
    except KeyError:
        raise OptimizationError(
            f"unknown optimizer {method!r}; choose from {sorted(OPTIMIZERS)}"
        ) from None
    if method == "slsqp":
        return driver(objective, x0, bounds_halfwidth, max_evaluations)
    return driver(objective, x0, bounds_halfwidth, max_evaluations, seed=seed)
