"""Optimization drivers for SERTOPT.

The paper minimizes the Equation-5 cost with Sequential Quadratic
Programming and notes that "simulated annealing, genetic algorithms or
some other optimization algorithm can also be used".  Because the
matched objective is piecewise-constant in the delay assignment (the
library is finite), the SQP driver uses a finite-difference step large
enough to cross cell boundaries; annealing and a stochastic coordinate
search are provided as the derivative-free alternatives and are the
better default on coarse libraries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.errors import OptimizationError
from repro.telemetry import resolve

Objective = Callable[[np.ndarray], float]

#: The batched-objective protocol: ``objective_batch(X, base=None)``
#: takes a ``(B, D)`` stack of candidate points and returns their
#: ``(B,)`` objective values.  ``base`` is an optional hint — the point
#: the candidates were derived from (the current search iterate) — that
#: lets implementations run delta-aware evaluation (SERTOPT's batched
#: matcher rescores only the gates a probe can actually move).  The
#: values must equal what the scalar objective returns for the same
#: points; drivers are free to evaluate speculatively, so implementations
#: must not count calls — the driver owns the evaluation budget.
BatchObjective = Callable[..., np.ndarray]


@dataclass
class OptimizeResult:
    """Outcome of one optimizer run."""

    x: np.ndarray
    value: float
    evaluations: int
    history: list[float] = field(default_factory=list)
    method: str = ""


class _CountingObjective:
    """Wraps an objective with evaluation counting, caching of the best
    point, and a hard evaluation budget."""

    def __init__(self, objective: Objective, max_evaluations: int) -> None:
        if max_evaluations < 1:
            raise OptimizationError("max_evaluations must be >= 1")
        self._objective = objective
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self.history: list[float] = []
        self.best_x: np.ndarray | None = None
        self.best_value = math.inf

    def __call__(self, x: np.ndarray) -> float:
        if self.evaluations >= self.max_evaluations:
            # Budget exhausted: return the best seen so SQP line searches
            # terminate quietly instead of burning more evaluations.
            return self.best_value
        self.evaluations += 1
        value = float(self._objective(np.asarray(x, dtype=np.float64)))
        self.history.append(value)
        if value < self.best_value:
            self.best_value = value
            self.best_x = np.array(x, dtype=np.float64)
        return value

    def record(self, x: np.ndarray, value: float) -> float:
        """Consume one precomputed evaluation against the budget.

        The batched drivers evaluate populations speculatively and then
        *replay* them in serial order; each replayed point passes
        through here so ``evaluations``/``history``/best-point tracking
        are exactly what the scalar driver would have produced.  At an
        exhausted budget the value is discarded and the best value is
        returned, mirroring ``__call__``.
        """
        if self.evaluations >= self.max_evaluations:
            return self.best_value
        self.evaluations += 1
        value = float(value)
        self.history.append(value)
        if value < self.best_value:
            self.best_value = value
            self.best_x = np.array(x, dtype=np.float64)
        return value


def minimize_slsqp(
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int = 400,
    fd_step: float = 2.0,
    objective_batch: BatchObjective | None = None,
) -> OptimizeResult:
    """SQP (scipy SLSQP) with a coarse finite-difference step.

    ``fd_step`` should be of the order of the delay quantum between
    adjacent library cells (a few ps) so numerical gradients see the
    discrete structure rather than a flat plateau.

    With ``objective_batch``, the finite-difference gradient is supplied
    as an explicit ``jac``: the ``D + 1`` points of each gradient step
    (the iterate plus one forward probe per dimension) are evaluated in
    a single population call instead of scipy probing them one scalar
    call at a time.  The budget charge per step stays ``D + 1`` — the
    iterate through scipy's ``fun`` call, the ``D`` probes through the
    replay — matching the scalar driver's accounting.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    counter = _CountingObjective(objective, max_evaluations)
    counter(x0)
    bounds = [(-bounds_halfwidth, bounds_halfwidth)] * x0.size
    jac = None
    if objective_batch is not None:

        def jac(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=np.float64)
            # Forward difference, flipped to backward where the forward
            # probe would leave the box — scipy's own bounded FD never
            # evaluates outside the declared bounds, and neither may we.
            steps = np.where(
                x + fd_step <= bounds_halfwidth, fd_step, -fd_step
            )
            points = np.concatenate(
                (x[np.newaxis, :], x[np.newaxis, :] + np.diag(steps))
            )
            values = objective_batch(points, base=x)
            # The iterate itself was already counted by scipy's fun(x)
            # call; its batch value (a cache hit for well-behaved
            # objectives) only anchors the differences — recording it
            # again would charge D+2 budget units for D+1 points.
            f0 = float(values[0])
            grad = np.empty(x.size)
            for dim in range(x.size):
                grad[dim] = (
                    counter.record(points[dim + 1], values[dim + 1]) - f0
                ) / steps[dim]
            if counter.evaluations >= counter.max_evaluations:
                # Budget exhausted mid-gradient: report a flat landscape
                # so SLSQP stops moving instead of chasing stale values.
                grad[:] = 0.0
            return grad

    try:
        minimize(
            counter,
            x0,
            method="SLSQP",
            jac=jac,
            bounds=bounds,
            options={
                "maxiter": max(1, max_evaluations // (x0.size + 2)),
                "eps": fd_step,
                "ftol": 1e-6,
            },
        )
    except OptimizationError:
        raise
    except Exception as exc:  # scipy can fail on degenerate problems
        raise OptimizationError(f"SLSQP failed: {exc}") from exc
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="slsqp",
    )


def minimize_annealing(
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int = 400,
    seed: int = 0,
    initial_step: float | None = None,
    initial_temperature: float | None = None,
    objective_batch: BatchObjective | None = None,
    batch_size: int = 12,
) -> OptimizeResult:
    """Simulated annealing with geometric cooling and step shrinking.

    With ``objective_batch``, proposals are drawn and scored as
    *populations*: up to ``batch_size`` proposals are generated around
    the current point (with the same sparse-move distribution), one
    population call evaluates them, and the Metropolis accept/reject
    sequence replays them in draw order — each proposal counts exactly
    one evaluation, so the budget and best-point semantics are those of
    the scalar loop.  The walk itself is a population variant (later
    proposals of a round are centred on the round's entry point rather
    than on each other), which is a standard annealing batch scheme —
    the method is stochastic either way.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    counter = _CountingObjective(objective, max_evaluations)
    rng = random.Random(seed)
    current_x = x0.copy()
    if objective_batch is not None:
        current_value = counter.record(
            current_x, float(objective_batch(current_x[np.newaxis, :])[0])
        )
    else:
        current_value = counter(current_x)
    step = initial_step if initial_step is not None else bounds_halfwidth / 4.0
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(abs(current_value) * 0.02, 1e-6)
    )
    cooling = 0.96

    def draw_proposal() -> np.ndarray:
        # Sparse moves: perturb a few coordinates, not the whole vector —
        # full-dimension Gaussian steps in a 20+-dimensional nullspace
        # are almost always ruinous and waste the evaluation budget.
        proposal = current_x.copy()
        active = max(1, min(x0.size, int(rng.expovariate(1.0 / 2.0)) + 1))
        for dim in rng.sample(range(x0.size), active):
            proposal[dim] += rng.gauss(0.0, step)
        np.clip(proposal, -bounds_halfwidth, bounds_halfwidth, out=proposal)
        return proposal

    while counter.evaluations < max_evaluations:
        if objective_batch is None:
            proposal = draw_proposal()
            value = counter(proposal)
            pending = [(proposal, value)]
        else:
            count = min(batch_size, max_evaluations - counter.evaluations)
            proposals = [draw_proposal() for __ in range(count)]
            values = objective_batch(np.stack(proposals), base=current_x)
            pending = [
                (proposal, counter.record(proposal, value))
                for proposal, value in zip(proposals, values)
            ]
        for proposal, value in pending:
            accept = value <= current_value or (
                temperature > 0.0
                and rng.random()
                < math.exp((current_value - value) / temperature)
            )
            if accept:
                current_x, current_value = proposal, value
            temperature *= cooling
            step = max(step * 0.995, bounds_halfwidth / 50.0)
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="annealing",
    )


def minimize_coordinate(
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int = 400,
    seed: int = 0,
    step_schedule: Sequence[float] = (0.5, 0.25, 0.1),
    objective_batch: BatchObjective | None = None,
    batch_chunk: int = 8,
    telemetry=None,
) -> OptimizeResult:
    """Stochastic coordinate descent: probe +-step along one coordinate
    at a time, keeping improvements; steps shrink per sweep schedule.

    With ``objective_batch``, the +-delta probes of a sweep — all
    derived from the same current point, hence independent until one is
    accepted — are evaluated as populations of up to ``batch_chunk``
    coordinates and *replayed* in serial order against the budget.  On
    an acceptance the not-yet-replayed speculative values are discarded
    (they were probed from the superseded point) and the sweep resumes
    from the new point, so the visited points, the evaluation count,
    the history and the returned optimum are identical to the scalar
    driver's — only the wall-clock differs.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    if objective_batch is not None:
        return _minimize_coordinate_batched(
            objective,
            objective_batch,
            x0,
            bounds_halfwidth,
            max_evaluations,
            seed,
            step_schedule,
            batch_chunk,
            telemetry=telemetry,
        )
    counter = _CountingObjective(objective, max_evaluations)
    rng = random.Random(seed)
    current_x = x0.copy()
    current_value = counter(current_x)
    dims = list(range(x0.size))
    for fraction in step_schedule:
        step = bounds_halfwidth * fraction
        rng.shuffle(dims)
        for dim in dims:
            if counter.evaluations >= max_evaluations:
                break
            for direction in (1.0, -1.0):
                probe = current_x.copy()
                probe[dim] = float(
                    np.clip(
                        probe[dim] + direction * step,
                        -bounds_halfwidth,
                        bounds_halfwidth,
                    )
                )
                value = counter(probe)
                if value < current_value:
                    current_x, current_value = probe, value
                    break
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="coordinate",
    )


def _minimize_coordinate_batched(
    objective: Objective,
    objective_batch: BatchObjective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int,
    seed: int,
    step_schedule: Sequence[float],
    batch_chunk: int,
    telemetry=None,
) -> OptimizeResult:
    """The population-evaluated twin of the scalar coordinate loop."""
    if batch_chunk < 1:
        raise OptimizationError(f"batch_chunk must be >= 1, got {batch_chunk}")
    tel = resolve(telemetry)
    speculated = 0
    counter = _CountingObjective(objective, max_evaluations)
    rng = random.Random(seed)
    current_x = x0.copy()
    current_value = counter.record(
        current_x, float(objective_batch(current_x[np.newaxis, :])[0])
    )
    dims = list(range(x0.size))
    for fraction in step_schedule:
        step = bounds_halfwidth * fraction
        rng.shuffle(dims)
        position = 0
        while position < len(dims):
            if counter.evaluations >= max_evaluations:
                break
            chunk_dims = dims[position : position + batch_chunk]
            probes: list[np.ndarray] = []
            for dim in chunk_dims:
                for direction in (1.0, -1.0):
                    probe = current_x.copy()
                    probe[dim] = float(
                        np.clip(
                            probe[dim] + direction * step,
                            -bounds_halfwidth,
                            bounds_halfwidth,
                        )
                    )
                    probes.append(probe)
            values = objective_batch(np.stack(probes), base=current_x)
            speculated += len(probes)
            accepted = False
            for j in range(len(chunk_dims)):
                if counter.evaluations >= max_evaluations:
                    # The scalar loop breaks out of the dim sweep here
                    # (the while condition re-checks and ends the sweep).
                    position = len(dims)
                    break
                for d_i in (0, 1):
                    probe_index = 2 * j + d_i
                    value = counter.record(
                        probes[probe_index], values[probe_index]
                    )
                    if value < current_value:
                        current_x = probes[probe_index]
                        current_value = value
                        accepted = True
                        break
                if accepted:
                    # Later speculative probes were derived from the
                    # superseded point — discard them (uncounted) and
                    # resume the sweep from the accepted point.
                    position += j + 1
                    break
            else:
                position += len(chunk_dims)
    if tel.enabled:
        # "- 1": the initial record of the entry point is not a probe.
        replayed = max(0, counter.evaluations - 1)
        tel.metrics.add("optimizer.probes.speculated", speculated)
        tel.metrics.add("optimizer.probes.replayed", replayed)
        tel.metrics.add(
            "optimizer.probes.discarded", max(0, speculated - replayed)
        )
    assert counter.best_x is not None
    return OptimizeResult(
        x=counter.best_x,
        value=counter.best_value,
        evaluations=counter.evaluations,
        history=counter.history,
        method="coordinate",
    )


OPTIMIZERS: dict[str, Callable[..., OptimizeResult]] = {
    "slsqp": minimize_slsqp,
    "annealing": minimize_annealing,
    "coordinate": minimize_coordinate,
}


def run_optimizer(
    method: str,
    objective: Objective,
    x0: np.ndarray,
    bounds_halfwidth: float,
    max_evaluations: int,
    seed: int = 0,
    objective_batch: BatchObjective | None = None,
    probe_batch: int | None = None,
    telemetry=None,
) -> OptimizeResult:
    """Dispatch to a registered optimizer by name.

    ``objective_batch`` (see :data:`BatchObjective`) enables population
    evaluation: the coordinate driver batches the independent +-delta
    probes of each sweep (visiting *identical* points on an identical
    budget), annealing scores proposal populations, and SLSQP evaluates
    its finite-difference gradient points in one call.

    ``probe_batch`` sizes those populations (the coordinate driver's
    probe chunk / annealing's proposal batch; SLSQP's gradient batch is
    fixed at ``D + 1`` by the finite difference).  ``None`` keeps each
    driver's default.  The replay accounting makes the visited points
    independent of the value — only block width, and therefore
    wall-clock, changes.

    ``telemetry`` records one ``optimizer.search`` span around the
    driver plus the ``optimizer.evaluations`` counter (and, for the
    coordinate driver, the speculative-probe budget accounting).
    """
    try:
        driver = OPTIMIZERS[method]
    except KeyError:
        raise OptimizationError(
            f"unknown optimizer {method!r}; choose from {sorted(OPTIMIZERS)}"
        ) from None
    if probe_batch is not None and probe_batch < 1:
        raise OptimizationError(
            f"probe_batch must be >= 1, got {probe_batch}"
        )
    tel = resolve(telemetry)
    with tel.span(
        "optimizer.search",
        method=method,
        dimensions=int(np.asarray(x0).size),
        max_evaluations=max_evaluations,
        batched=objective_batch is not None,
    ):
        if method == "slsqp":
            result = driver(
                objective, x0, bounds_halfwidth, max_evaluations,
                objective_batch=objective_batch,
            )
        else:
            extra: dict = {}
            if probe_batch is not None:
                extra[
                    "batch_chunk" if method == "coordinate" else "batch_size"
                ] = probe_batch
            if method == "coordinate":
                extra["telemetry"] = telemetry
            result = driver(
                objective, x0, bounds_halfwidth, max_evaluations, seed=seed,
                objective_batch=objective_batch, **extra,
            )
    if tel.enabled:
        tel.metrics.add("optimizer.runs")
        tel.metrics.add("optimizer.evaluations", result.evaluations)
    return result
