"""Unreliability accounting (paper Equations 3-4) and report structures.

Latching-window masking makes the probability of a glitch being captured
proportional to its width at the latch (the strike instant is uniform in
the clock cycle), so the expected output widths ``W_ij`` *are* the
capture-probability weights.  Gate size ``Z_i`` scales the particle flux
a gate intercepts, giving the per-gate contribution

    U_i = Z_i * sum_j W_ij                                     (Eq 3)

and the circuit unreliability ``U = sum_i U_i`` (Eq 4).

Both equations are plain reductions; the array path evaluates them with
:func:`gate_contributions` / :func:`total_unreliability` on the dense
``(V, O)`` expected-width matrix (:func:`build_report_from_arrays`
stores the dense Equation-4 total on the report it assembles), while the
name-keyed per-gate view is materialized alongside for every existing
caller.  Dict-summed and dense totals agree to floating-point
reassociation, which the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.electrical_masking import MaskingArrays


@dataclass(frozen=True)
class GateUnreliability:
    """Per-gate soft-error contribution."""

    gate: str
    #: Glitch width generated at this gate's output by the fixed-charge
    #: strike (ps).
    generated_width_ps: float
    #: Gate size Z_i (strike cross-section weight).
    size: float
    #: Expected glitch width W_ij per primary output (ps).
    widths_by_output: dict[str, float] = field(default_factory=dict)

    @property
    def total_output_width_ps(self) -> float:
        return sum(self.widths_by_output.values())

    @property
    def contribution(self) -> float:
        """``U_i`` of Equation 3."""
        return self.size * self.total_output_width_ps


@dataclass(frozen=True)
class UnreliabilityReport:
    """Circuit-level unreliability, with the per-gate breakdown."""

    circuit_name: str
    per_gate: dict[str, GateUnreliability]
    #: Equation-4 total precomputed by the array path's dense reduction
    #: (:func:`total_unreliability`); ``None`` means "sum the dicts".
    dense_total: float | None = None

    @property
    def total(self) -> float:
        """``U`` of Equation 4."""
        if self.dense_total is not None:
            return self.dense_total
        return sum(entry.contribution for entry in self.per_gate.values())

    def contribution(self, gate_name: str) -> float:
        entry = self.per_gate.get(gate_name)
        return 0.0 if entry is None else entry.contribution

    def softest_gates(self, count: int = 10) -> list[GateUnreliability]:
        """Gates with the largest unreliability contributions."""
        ranked = sorted(
            self.per_gate.values(), key=lambda e: e.contribution, reverse=True
        )
        return ranked[:count]

    def improvement_over(self, baseline: "UnreliabilityReport") -> float:
        """Fractional decrease in U versus ``baseline`` (paper Table 1)."""
        base = baseline.total
        if base <= 0.0:
            return 0.0
        return (base - self.total) / base


def build_report(
    circuit_name: str,
    generated_widths: Mapping[str, float],
    sizes: Mapping[str, float],
    expected: Mapping[str, Mapping[str, float]],
) -> UnreliabilityReport:
    """Assemble the report from the electrical-masking pass outputs."""
    per_gate = {
        name: GateUnreliability(
            gate=name,
            generated_width_ps=float(generated_widths[name]),
            size=float(sizes[name]),
            widths_by_output=dict(expected.get(name, {})),
        )
        for name in generated_widths
    }
    return UnreliabilityReport(circuit_name=circuit_name, per_gate=per_gate)


def gate_contributions(
    sizes: np.ndarray, expected_matrix: np.ndarray
) -> np.ndarray:
    """Equation 3 as one reduction: ``U_i = Z_i * sum_j W_ij`` per row."""
    return sizes * expected_matrix.sum(axis=1)


def total_unreliability(contributions: np.ndarray) -> float:
    """Equation 4: ``U = sum_i U_i``."""
    return float(contributions.sum())


def build_report_from_arrays(
    circuit_name: str,
    masking_arrays: "MaskingArrays",
    generated: np.ndarray,
    sizes: np.ndarray,
) -> UnreliabilityReport:
    """The array path's report: same :class:`UnreliabilityReport` view,
    assembled from the dense masking tensors.

    ``widths_by_output`` keeps the reference path's sparsity — an output
    appears exactly when the gate's ``WS`` table has a populated column
    for it — so reports from both paths compare structurally equal.
    """
    idx = masking_arrays.indexed
    expected = masking_arrays.expected
    outputs = idx.circuit.outputs
    per_gate: dict[str, GateUnreliability] = {}
    for row, cols in masking_arrays.populated_columns.items():
        name = idx.order[row]
        per_gate[name] = GateUnreliability(
            gate=name,
            generated_width_ps=float(generated[row]),
            size=float(sizes[row]),
            widths_by_output={
                outputs[col]: float(expected[row, col]) for col in cols
            },
        )
    # Equations 3-4 as the dense reductions; input rows have zero
    # expected width, so reducing over all rows equals the gate sum.
    total = total_unreliability(gate_contributions(sizes, expected))
    return UnreliabilityReport(
        circuit_name=circuit_name, per_gate=per_gate, dense_total=total
    )
