"""Unreliability accounting (paper Equations 3-4) and report structures.

Latching-window masking makes the probability of a glitch being captured
proportional to its width at the latch (the strike instant is uniform in
the clock cycle), so the expected output widths ``W_ij`` *are* the
capture-probability weights.  Gate size ``Z_i`` scales the particle flux
a gate intercepts, giving the per-gate contribution

    U_i = Z_i * sum_j W_ij                                     (Eq 3)

and the circuit unreliability ``U = sum_i U_i`` (Eq 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class GateUnreliability:
    """Per-gate soft-error contribution."""

    gate: str
    #: Glitch width generated at this gate's output by the fixed-charge
    #: strike (ps).
    generated_width_ps: float
    #: Gate size Z_i (strike cross-section weight).
    size: float
    #: Expected glitch width W_ij per primary output (ps).
    widths_by_output: dict[str, float] = field(default_factory=dict)

    @property
    def total_output_width_ps(self) -> float:
        return sum(self.widths_by_output.values())

    @property
    def contribution(self) -> float:
        """``U_i`` of Equation 3."""
        return self.size * self.total_output_width_ps


@dataclass(frozen=True)
class UnreliabilityReport:
    """Circuit-level unreliability, with the per-gate breakdown."""

    circuit_name: str
    per_gate: dict[str, GateUnreliability]

    @property
    def total(self) -> float:
        """``U`` of Equation 4."""
        return sum(entry.contribution for entry in self.per_gate.values())

    def contribution(self, gate_name: str) -> float:
        entry = self.per_gate.get(gate_name)
        return 0.0 if entry is None else entry.contribution

    def softest_gates(self, count: int = 10) -> list[GateUnreliability]:
        """Gates with the largest unreliability contributions."""
        ranked = sorted(
            self.per_gate.values(), key=lambda e: e.contribution, reverse=True
        )
        return ranked[:count]

    def improvement_over(self, baseline: "UnreliabilityReport") -> float:
        """Fractional decrease in U versus ``baseline`` (paper Table 1)."""
        base = baseline.total
        if base <= 0.0:
            return 0.0
        return (base - self.total) / base


def build_report(
    circuit_name: str,
    generated_widths: Mapping[str, float],
    sizes: Mapping[str, float],
    expected: Mapping[str, Mapping[str, float]],
) -> UnreliabilityReport:
    """Assemble the report from the electrical-masking pass outputs."""
    per_gate = {
        name: GateUnreliability(
            gate=name,
            generated_width_ps=float(generated_widths[name]),
            size=float(sizes[name]),
            widths_by_output=dict(expected.get(name, {})),
        )
        for name in generated_widths
    }
    return UnreliabilityReport(circuit_name=circuit_name, per_gate=per_gate)
