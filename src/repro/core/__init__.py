"""The paper's contributions: ASERTA (analysis) and SERTOPT (optimization).

* :class:`repro.core.aserta.AsertaAnalyzer` — Section 3: glitch
  generation from look-up tables, logical masking from sensitization
  probabilities, electrical masking via a one-pass reverse-topological
  propagation of sample glitch widths, latching-window masking by
  width-proportional capture, summed into the circuit "unreliability".
* :class:`repro.core.sertopt.Sertopt` — Section 4: delay-assignment
  variation in the nullspace of the path topology matrix, matched to a
  discrete cell library in reverse topological order, minimizing the
  weighted unreliability/delay/energy/area cost (Equation 5).
"""

from repro.core.aserta import (
    AsertaAnalyzer,
    AsertaBatch,
    AsertaConfig,
    AsertaReport,
)
from repro.core.electrical_masking import (
    ElectricalMaskingResult,
    electrical_masking,
    electrical_masking_many,
    electrical_masking_reference,
)
from repro.core.masking import MaskingStructure, masking_structure
from repro.core.matching import BatchMatchState, MatchingEngine
from repro.core.sertopt import Sertopt, SertoptConfig, SertoptResult
from repro.core.baseline import size_for_speed

__all__ = [
    "AsertaAnalyzer",
    "AsertaBatch",
    "AsertaConfig",
    "AsertaReport",
    "BatchMatchState",
    "ElectricalMaskingResult",
    "MaskingStructure",
    "MatchingEngine",
    "Sertopt",
    "SertoptConfig",
    "SertoptResult",
    "electrical_masking",
    "electrical_masking_many",
    "electrical_masking_reference",
    "masking_structure",
    "size_for_speed",
]
