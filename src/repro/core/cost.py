"""The SERTOPT cost function (paper Equation 5).

    C = W1 U/U_init + W2 T/T_init + W3 E/E_init + W4 A/A_init

All four terms are ratios against the *initial* (baseline) circuit, so
the weights express designer intent directly; the timing term exists
because, as the paper notes, the finite library can leave a small
residual timing violation even for nullspace-only delay moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aserta import (
    DEFAULT_MAX_BATCH_BYTES,
    AsertaAnalyzer,
    AsertaBatch,
    AsertaReport,
)
from repro.errors import OptimizationError
from repro.power.energy import circuit_energy
from repro.power.area import circuit_area
from repro.sta.timing import analyze_timing
from repro.tech.library import ParameterAssignment


@dataclass(frozen=True)
class CostWeights:
    """``(W1, W2, W3, W4)`` of Equation 5.

    The defaults encode the trade-off the paper's Table 1 accepts:
    unreliability dominates, timing matters (the constraint is enforced
    structurally by the nullspace moves, the weight only polices the
    finite-library residual), and energy/area may grow by a factor of
    two if unreliability pays for it.  All weights are dimensionless —
    every Equation-5 term is a ratio against the baseline circuit.

    >>> w = CostWeights()
    >>> (w.unreliability, w.timing, w.energy, w.area)
    (1.0, 0.3, 0.12, 0.06)
    >>> round(w.total_weight, 3)  # the cost of the untouched baseline
    1.48
    """

    unreliability: float = 1.0
    timing: float = 0.30
    energy: float = 0.12
    area: float = 0.06
    #: The paper's timing *constraint*, expressed as a tolerated delay
    #: ratio: violations beyond the cap are charged a steep hinge
    #: penalty, reproducing "meeting the timing constraint" with the
    #: small finite-library excursions Table 1 shows (up to 1.23X).
    timing_cap: float = 1.25
    timing_cap_penalty: float = 4.0

    def __post_init__(self) -> None:
        for label, value in (
            ("unreliability", self.unreliability),
            ("timing", self.timing),
            ("energy", self.energy),
            ("area", self.area),
            ("timing_cap_penalty", self.timing_cap_penalty),
        ):
            if value < 0.0:
                raise OptimizationError(f"weight {label} must be >= 0, got {value}")
        if self.timing_cap < 1.0:
            raise OptimizationError(
                f"timing_cap must be >= 1.0, got {self.timing_cap}"
            )

    @property
    def total_weight(self) -> float:
        return self.unreliability + self.timing + self.energy + self.area


@dataclass(frozen=True)
class Metrics:
    """Absolute U/T/E/A for one assignment."""

    unreliability: float
    delay_ps: float
    energy_fj: float
    area: float


@dataclass(frozen=True)
class CostBreakdown:
    """One cost evaluation: absolute metrics, ratios, weighted total."""

    metrics: Metrics
    unreliability_ratio: float
    delay_ratio: float
    energy_ratio: float
    area_ratio: float
    total: float
    report: AsertaReport

    @property
    def unreliability_reduction(self) -> float:
        """Fractional decrease in U vs the baseline (Table-1 headline)."""
        return 1.0 - self.unreliability_ratio


class CostEvaluator:
    """Evaluates Equation 5 against a fixed baseline."""

    def __init__(
        self,
        analyzer: AsertaAnalyzer,
        baseline: ParameterAssignment,
        weights: CostWeights | None = None,
    ) -> None:
        self.analyzer = analyzer
        self.weights = weights if weights is not None else CostWeights()
        self.baseline_assignment = baseline
        self.baseline_breakdown = self._evaluate_against(baseline, None)
        base = self.baseline_breakdown.metrics
        if base.unreliability <= 0.0:
            raise OptimizationError(
                "baseline unreliability is zero; nothing to optimize"
            )

    def _metrics(self, assignment: ParameterAssignment) -> tuple[Metrics, AsertaReport]:
        report = self.analyzer.analyze(assignment)
        timing = analyze_timing(self.analyzer.circuit, report.electrical.delay_ps)
        energy = circuit_energy(
            self.analyzer.circuit, report.electrical, self.analyzer.probabilities
        )
        area = circuit_area(self.analyzer.circuit, report.electrical)
        metrics = Metrics(
            unreliability=report.total,
            delay_ps=timing.delay_ps,
            energy_fj=energy.total_fj,
            area=area,
        )
        return metrics, report

    def _evaluate_against(
        self, assignment: ParameterAssignment, base: Metrics | None
    ) -> CostBreakdown:
        metrics, report = self._metrics(assignment)
        if base is None:
            ratios = (1.0, 1.0, 1.0, 1.0)
        else:
            ratios = (
                _ratio(metrics.unreliability, base.unreliability),
                _ratio(metrics.delay_ps, base.delay_ps),
                _ratio(metrics.energy_fj, base.energy_fj),
                _ratio(metrics.area, base.area),
            )
        w = self.weights
        total = (
            w.unreliability * ratios[0]
            + w.timing * ratios[1]
            + w.energy * ratios[2]
            + w.area * ratios[3]
            + w.timing_cap_penalty * max(0.0, ratios[1] - w.timing_cap)
        )
        return CostBreakdown(
            metrics=metrics,
            unreliability_ratio=ratios[0],
            delay_ratio=ratios[1],
            energy_ratio=ratios[2],
            area_ratio=ratios[3],
            total=total,
            report=report,
        )

    def evaluate(self, assignment: ParameterAssignment) -> CostBreakdown:
        """Equation-5 cost of ``assignment`` relative to the baseline."""
        return self._evaluate_against(
            assignment, self.baseline_breakdown.metrics
        )

    def evaluate_batch(
        self,
        assignments=None,
        params: dict[str, np.ndarray] | None = None,
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
    ) -> np.ndarray:
        """Equation-5 totals for a population, as a ``(B,)`` array.

        Metrics come from one :meth:`AsertaAnalyzer.analyze_many` pass
        (chunked under ``max_batch_bytes``, a pure execution knob: the
        totals are invariant to it, bit for bit); ratios and the
        weighted sum apply the exact expressions of :meth:`evaluate`,
        so lane ``b`` agrees with the serial cost of assignment ``b``
        to float reassociation (the unreliability and delay terms are
        bit-equal; energy/area sum in dense row order).  No
        :class:`CostBreakdown` (and no per-candidate report) is built —
        this is the batched SERTOPT objective's fast path.
        """
        batch: AsertaBatch = self.analyzer.analyze_many(
            assignments=assignments, params=params,
            max_batch_bytes=max_batch_bytes,
        )
        base = self.baseline_breakdown.metrics
        ratios = (
            _ratio_array(batch.totals, base.unreliability),
            _ratio_array(batch.delay_ps, base.delay_ps),
            _ratio_array(batch.energy_fj, base.energy_fj),
            _ratio_array(batch.area, base.area),
        )
        w = self.weights
        return (
            w.unreliability * ratios[0]
            + w.timing * ratios[1]
            + w.energy * ratios[2]
            + w.area * ratios[3]
            + w.timing_cap_penalty * np.maximum(0.0, ratios[1] - w.timing_cap)
        )


def _ratio(value: float, base: float) -> float:
    if base <= 0.0:
        return 1.0 if value <= 0.0 else float("inf")
    return value / base


def _ratio_array(values: np.ndarray, base: float) -> np.ndarray:
    """Vectorized :func:`_ratio` against one scalar baseline."""
    if base <= 0.0:
        return np.where(values <= 0.0, 1.0, np.inf)
    return values / base
