"""Logical-masking mathematics (paper Section 3.1, Equation 2).

``S_is`` — probability that gate ``s`` is *sensitized* to its fan-in
``i``: every other fan-in holds its non-controlling value (1 for
AND/NAND, 0 for OR/NOR; XOR-class and single-input gates always
propagate).

``pi_isj`` — the share of gate ``i``'s glitch routed through successor
``s`` on the way to output ``j``::

    pi_isj = S_is * P_ij / sum_k S_ik * P_kj        (k over successors of i)

chosen, as the paper requires, so that ``sum_s pi_isj * P_sj = P_ij``
(the normalization Lemma 1 relies on).

Two implementations live here: the scalar, name-keyed functions the
paper-shaped code and the tests read, and :class:`MaskingStructure` —
the same mathematics reduced once over the circuit's
:class:`~repro.circuit.indexed.IndexedCircuit` edge arrays, giving the
dense ``(E, O)`` share matrix the vectorized Section-3.2 sweep consumes.
Everything in the structure is *structural* (it depends on the netlist,
the static probabilities and ``P_ij``, never on a parameter assignment),
so an analyzer builds it once and reuses it for every ``analyze`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.indexed import IndexedCircuit
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError

#: Default cutoff below which an Equation-2 denominator is treated as
#: "no sensitizable route".  On deep chains the product of
#: sensitization probabilities underflows toward (and at double
#: precision often exactly to) zero; dividing by it would blow the
#: shares up to meaningless magnitudes, so routes whose denominator
#: falls at or below the cutoff are dropped instead (they can only
#: *lose* expected width — the Lemma-1 upper bound still holds).
#: User-settable per analysis via ``AsertaAnalyzer(share_epsilon=...)``
#: / ``AsertaConfig.share_epsilon``: raise it to prune weakly-routed
#: edges aggressively, lower it to keep every numerically-representable
#: route at the cost of noisier shares.
DEFAULT_SHARE_EPSILON = 1e-12

#: Backwards-compatible alias (the original private name).
_EPSILON = DEFAULT_SHARE_EPSILON


def sensitization_to_input(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    fanin_name: str,
    gate_name: str,
) -> float:
    """``S_is``: probability that ``gate_name`` passes a glitch arriving
    on ``fanin_name``."""
    gate = circuit.gate(gate_name)
    if fanin_name not in gate.fanins:
        raise AnalysisError(
            f"{fanin_name!r} is not a fan-in of {gate_name!r}"
        )
    if gate.gtype in (GateType.BUF, GateType.NOT, GateType.XOR, GateType.XNOR):
        return 1.0
    product = 1.0
    for other in gate.fanins:
        if other == fanin_name:
            continue
        p_one = probabilities[other]
        if gate.gtype in (GateType.AND, GateType.NAND):
            product *= p_one
        else:  # OR / NOR: non-controlling value is 0
            product *= 1.0 - p_one
    return product


def propagation_shares(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]],
    gate_name: str,
    output_name: str,
    epsilon: float = DEFAULT_SHARE_EPSILON,
) -> dict[str, float]:
    """``pi_isj`` for every successor ``s`` of ``gate_name`` (Equation 2).

    Returns an empty mapping when the gate cannot reach the output
    (``P_ij = 0``) or no successor offers a sensitizable route (the
    denominator falls below ``epsilon``, see
    :data:`DEFAULT_SHARE_EPSILON`).
    """
    p_ij = sensitized_paths.get(gate_name, {}).get(output_name, 0.0)
    if p_ij <= 0.0:
        return {}
    successors = circuit.fanouts(gate_name)
    weights: dict[str, float] = {}
    denominator = 0.0
    for successor in successors:
        s_is = sensitization_to_input(circuit, probabilities, gate_name, successor)
        p_sj = sensitized_paths.get(successor, {}).get(output_name, 0.0)
        weight = s_is * p_sj
        if weight > 0.0:
            weights[successor] = s_is
            denominator += weight
    if denominator <= epsilon:
        return {}
    return {
        successor: s_is * p_ij / denominator
        for successor, s_is in weights.items()
    }


@dataclass(frozen=True)
class MaskingStructure:
    """Dense, assignment-independent form of Equations 1-prep and 2.

    Edge arrays follow ``indexed.edge_src`` / ``indexed.edge_dst`` order
    (CSR by source, successors in :meth:`Circuit.fanouts` order), so
    array reductions accumulate in the same sequence as the scalar
    reference code.
    """

    indexed: IndexedCircuit
    #: ``P_ij`` densified: ``(V, O)``.
    p_matrix: np.ndarray
    #: ``pi_isj`` per edge and output: ``(E, O)``.
    edge_shares: np.ndarray
    #: Edge-id batches for the reverse sweep, grouped by source logic
    #: level in descending order; sources are internal (non-input,
    #: non-PO) signals only, so every batch reads only finished rows.
    sweep_batches: tuple[np.ndarray, ...]


def edge_sensitizations(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    indexed: IndexedCircuit | None = None,
) -> np.ndarray:
    """``S_is`` for every fanout edge, aligned with ``indexed.edge_src``.

    Computed destination-by-destination (each gate's fan-in list is a
    handful of entries) and scattered onto the edge array; this runs once
    per analyzer, not per analysis.
    """
    idx = circuit.indexed() if indexed is None else indexed
    # Missing entries must fail loudly, exactly like the scalar path's
    # probabilities[other] KeyError — a silent 0.0 default would zero
    # the Equation-2 shares and under-report unreliability.
    present = np.zeros(idx.n_signals, dtype=bool)
    for name in probabilities:
        row = idx.index.get(name)
        if row is not None:
            present[row] = True
    if idx.fanin_src.size:
        missing_rows = np.unique(idx.fanin_src[~present[idx.fanin_src]])
        if missing_rows.size:
            names = [idx.order[row] for row in missing_rows[:5]]
            raise AnalysisError(
                f"probabilities missing for fan-in signals {names}"
            )
    prob = idx.gather(probabilities)
    edge_s = np.zeros(idx.n_edges)
    slot = idx.edge_slot
    for s_row in idx.gate_rows:
        gtype = idx.gtypes[s_row]
        fanins = idx.fanins_of(s_row)
        s = int(s_row)
        if gtype in (GateType.BUF, GateType.NOT, GateType.XOR, GateType.XNOR):
            for i_row in fanins:
                edge_s[slot[(int(i_row), s)]] = 1.0
            continue
        factors = (
            prob[fanins]
            if gtype in (GateType.AND, GateType.NAND)
            else 1.0 - prob[fanins]
        )
        # Fan-ins are unique by Gate construction, so position masking
        # is the "all others" product of the scalar path.
        for t, i_row in enumerate(fanins):
            others = np.delete(factors, t)
            edge_s[slot[(int(i_row), s)]] = float(np.prod(others))
    return edge_s


def masking_structure(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]] | None = None,
    indexed: IndexedCircuit | None = None,
    p_matrix: np.ndarray | None = None,
    epsilon: float = DEFAULT_SHARE_EPSILON,
) -> MaskingStructure:
    """Build the dense Equation-2 structure for one circuit.

    ``P_ij`` comes either sparse (``sensitized_paths``, densified here)
    or already dense (``p_matrix`` over ``indexed`` row/column order, as
    the batched structural engine produces it) — exactly one of the two
    must be given.  ``epsilon`` is the route-dropping cutoff
    (:data:`DEFAULT_SHARE_EPSILON`).
    """
    idx = circuit.indexed() if indexed is None else indexed
    if (sensitized_paths is None) == (p_matrix is None):
        raise AnalysisError(
            "pass exactly one of sensitized_paths or p_matrix"
        )
    if p_matrix is not None:
        p = np.asarray(p_matrix, dtype=np.float64)
        if p.shape != (idx.n_signals, idx.n_outputs):
            raise AnalysisError(
                f"p_matrix shape {p.shape} does not match "
                f"({idx.n_signals}, {idx.n_outputs})"
            )
    else:
        assert sensitized_paths is not None
        p = idx.output_matrix(sensitized_paths)
    edge_s = edge_sensitizations(circuit, probabilities, idx)

    # denom[i, j] = sum over successors s of S_is * P_sj (zero-weight
    # terms add exactly 0.0, so this equals the scalar running sum).
    denom = np.zeros((idx.n_signals, idx.n_outputs))
    np.add.at(denom, idx.edge_src, edge_s[:, np.newaxis] * p[idx.edge_dst])

    with np.errstate(divide="ignore", invalid="ignore"):
        shares = (edge_s[:, np.newaxis] * p[idx.edge_src]) / denom[idx.edge_src]
    # The scalar path drops successors with no sensitizable route to j
    # (S_is * P_sj == 0) and whole rows whose denominator underflows.
    shares = np.where(p[idx.edge_dst] > 0.0, shares, 0.0)
    shares = np.where(denom[idx.edge_src] > epsilon, shares, 0.0)

    # The level schedule is pure topology; serve it from the indexed
    # view's cached sweep plan (identical batch order by construction).
    batches, __slots = idx.sweep_index_plan()
    return MaskingStructure(
        indexed=idx,
        p_matrix=p,
        edge_shares=shares,
        sweep_batches=batches,
    )


def verify_share_identity(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]],
    gate_name: str,
    output_name: str,
    epsilon: float = DEFAULT_SHARE_EPSILON,
) -> tuple[float, float]:
    """Returns ``(sum_s pi_isj * P_sj, P_ij)`` — equal by construction.

    Exposed for the property-based tests of the Equation-2 identity the
    paper states ("pi_isj should have the property that
    sum_k pi_ikj P_kj = P_ij").
    """
    shares = propagation_shares(
        circuit, probabilities, sensitized_paths, gate_name, output_name,
        epsilon=epsilon,
    )
    total = 0.0
    for successor, share in shares.items():
        total += share * sensitized_paths.get(successor, {}).get(output_name, 0.0)
    p_ij = sensitized_paths.get(gate_name, {}).get(output_name, 0.0)
    return total, p_ij
