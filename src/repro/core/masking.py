"""Logical-masking mathematics (paper Section 3.1, Equation 2).

``S_is`` — probability that gate ``s`` is *sensitized* to its fan-in
``i``: every other fan-in holds its non-controlling value (1 for
AND/NAND, 0 for OR/NOR; XOR-class and single-input gates always
propagate).

``pi_isj`` — the share of gate ``i``'s glitch routed through successor
``s`` on the way to output ``j``::

    pi_isj = S_is * P_ij / sum_k S_ik * P_kj        (k over successors of i)

chosen, as the paper requires, so that ``sum_s pi_isj * P_sj = P_ij``
(the normalization Lemma 1 relies on).
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError

#: Denominators smaller than this are treated as "no sensitizable route".
_EPSILON = 1e-12


def sensitization_to_input(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    fanin_name: str,
    gate_name: str,
) -> float:
    """``S_is``: probability that ``gate_name`` passes a glitch arriving
    on ``fanin_name``."""
    gate = circuit.gate(gate_name)
    if fanin_name not in gate.fanins:
        raise AnalysisError(
            f"{fanin_name!r} is not a fan-in of {gate_name!r}"
        )
    if gate.gtype in (GateType.BUF, GateType.NOT, GateType.XOR, GateType.XNOR):
        return 1.0
    product = 1.0
    for other in gate.fanins:
        if other == fanin_name:
            continue
        p_one = probabilities[other]
        if gate.gtype in (GateType.AND, GateType.NAND):
            product *= p_one
        else:  # OR / NOR: non-controlling value is 0
            product *= 1.0 - p_one
    return product


def propagation_shares(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]],
    gate_name: str,
    output_name: str,
) -> dict[str, float]:
    """``pi_isj`` for every successor ``s`` of ``gate_name`` (Equation 2).

    Returns an empty mapping when the gate cannot reach the output
    (``P_ij = 0``) or no successor offers a sensitizable route.
    """
    p_ij = sensitized_paths.get(gate_name, {}).get(output_name, 0.0)
    if p_ij <= 0.0:
        return {}
    successors = circuit.fanouts(gate_name)
    weights: dict[str, float] = {}
    denominator = 0.0
    for successor in successors:
        s_is = sensitization_to_input(circuit, probabilities, gate_name, successor)
        p_sj = sensitized_paths.get(successor, {}).get(output_name, 0.0)
        weight = s_is * p_sj
        if weight > 0.0:
            weights[successor] = s_is
            denominator += weight
    if denominator <= _EPSILON:
        return {}
    return {
        successor: s_is * p_ij / denominator
        for successor, s_is in weights.items()
    }


def verify_share_identity(
    circuit: Circuit,
    probabilities: Mapping[str, float],
    sensitized_paths: Mapping[str, Mapping[str, float]],
    gate_name: str,
    output_name: str,
) -> tuple[float, float]:
    """Returns ``(sum_s pi_isj * P_sj, P_ij)`` — equal by construction.

    Exposed for the property-based tests of the Equation-2 identity the
    paper states ("pi_isj should have the property that
    sum_k pi_ikj P_kj = P_ij").
    """
    shares = propagation_shares(
        circuit, probabilities, sensitized_paths, gate_name, output_name
    )
    total = 0.0
    for successor, share in shares.items():
        total += share * sensitized_paths.get(successor, {}).get(output_name, 0.0)
    p_ij = sensitized_paths.get(gate_name, {}).get(output_name, 0.0)
    return total, p_ij
