"""Stable digests and keys for compiled analysis artifacts.

Every expensive derived structure the engine manages — dense ``P_ij``
matrices, :class:`~repro.core.masking.MaskingStructure` instances,
compiled structural schedules, stacked LUT tensors — is identified by a
*content-addressed* key: a SHA-256 digest over the complete set of
inputs that determine the artifact, prefixed with a schema version.
Identical inputs always map to the same key (so a warm cache can serve
the artifact without recomputing it); any change to the netlist, the
estimation protocol, or the serialization layout changes the key (so a
stale artifact can never be served).

The circuit component of every key is
:meth:`repro.circuit.netlist.Circuit.content_digest`, which hashes the
netlist structure and ignores the display name.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.circuit.netlist import Circuit

#: Version of the artifact key/serialization layout.  Bump whenever the
#: meaning or the on-disk encoding of any artifact changes incompatibly:
#: every key embeds it, so old in-memory and on-disk entries simply stop
#: matching instead of being served stale.
ARTIFACT_SCHEMA = 1

#: Artifact kinds the engine produces (used in keys and file names).
KIND_P_MATRIX = "p_matrix"
KIND_STRUCTURE = "masking_structure"
KIND_COMPILED = "compiled_structural"
KIND_INDEXED = "indexed_circuit"
KIND_STACKED_LUT = "stacked_lut"
KIND_SWEEP_PLAN = "sweep_plan"


def canonical_json(payload: Any) -> str:
    """Canonical (sorted, compact) JSON used for every digest."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def artifact_key(kind: str, **fields: Any) -> str:
    """Content-addressed key for one artifact.

    ``fields`` must contain every input the artifact depends on,
    reduced to JSON-stable values (floats, ints, strings, digests).
    """
    payload = {"schema": ARTIFACT_SCHEMA, "kind": kind, **fields}
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return f"{kind}-{digest}"


def circuit_digest(circuit: Circuit) -> str:
    """The netlist content digest (cached on the circuit)."""
    return circuit.content_digest()


def probability_digest(input_probabilities: Mapping[str, float] | float) -> str:
    """Digest of an input-probability specification.

    Accepts the same spec :func:`repro.logicsim.probability.static_probabilities`
    does: a single float applied to every primary input, or a name-keyed
    mapping (missing names default to 0.5 there, so the mapping content
    is hashed as given).
    """
    if isinstance(input_probabilities, Mapping):
        payload: Any = {name: float(p) for name, p in input_probabilities.items()}
    else:
        payload = float(input_probabilities)
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def p_matrix_key(circuit: Circuit, n_vectors: int, seed: int) -> str:
    """Key of the dense ``(V, O)`` sensitized-path probability matrix.

    Deliberately *engine-independent*: the batched and event-driven
    structural simulators are bit-identical by contract (asserted by the
    differential tests), so a matrix computed by either serves both.
    """
    return artifact_key(
        KIND_P_MATRIX,
        circuit=circuit_digest(circuit),
        n_vectors=int(n_vectors),
        seed=int(seed),
    )


def structure_key(
    circuit: Circuit,
    n_vectors: int,
    seed: int,
    input_probabilities: Mapping[str, float] | float,
    epsilon: float,
) -> str:
    """Key of the assignment-independent Equation-2 masking structure."""
    return artifact_key(
        KIND_STRUCTURE,
        circuit=circuit_digest(circuit),
        n_vectors=int(n_vectors),
        seed=int(seed),
        probabilities=probability_digest(input_probabilities),
        epsilon=float(epsilon),
    )


def sweep_plan_key(
    circuit: Circuit,
    n_vectors: int,
    seed: int,
    input_probabilities: Mapping[str, float] | float,
    epsilon: float,
    backend: str,
) -> str:
    """Key of one compiled Section-3.2 sweep plan.

    Everything the underlying masking structure depends on, plus the
    *array backend* axis: a plan resolved for one backend must never be
    served to another (a JIT backend may precompile kernels against its
    own layout), so the backend name is a first-class key field —
    unlike :func:`p_matrix_key`, which is engine-independent because
    both structural estimators are bit-identical by contract.
    """
    return artifact_key(
        KIND_SWEEP_PLAN,
        circuit=circuit_digest(circuit),
        n_vectors=int(n_vectors),
        seed=int(seed),
        probabilities=probability_digest(input_probabilities),
        epsilon=float(epsilon),
        backend=str(backend),
    )


def compiled_key(circuit: Circuit) -> str:
    """Key of the compiled structural schedule (reachability bitsets,
    level/type-group evaluation plan)."""
    return artifact_key(KIND_COMPILED, circuit=circuit_digest(circuit))


def indexed_key(circuit: Circuit) -> str:
    """Key of the dense :class:`~repro.circuit.indexed.IndexedCircuit` view."""
    return artifact_key(KIND_INDEXED, circuit=circuit_digest(circuit))


def stacked_lut_key(axes_digest: str, kind: str, pairs: tuple) -> str:
    """Key of one stacked characterization tensor.

    ``axes_digest`` fingerprints the table grids
    (:meth:`repro.tech.table_builder.TechnologyTables.axes_digest`);
    ``pairs`` is the ``(gate type, fan-in)`` leading axis.
    """
    return artifact_key(
        KIND_STACKED_LUT,
        axes=axes_digest,
        table=kind,
        pairs=[[gtype.value, int(fanin)] for gtype, fanin in pairs],
    )
