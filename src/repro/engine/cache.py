"""Content-addressed artifact cache: in-process LRU + optional disk store.

The cache maps the keys of :mod:`repro.engine.artifacts` to compiled
artifacts.  Two tiers cooperate:

* an **in-process LRU** holding live Python objects (``IndexedCircuit``,
  ``MaskingStructure``, compiled schedules, stacked tensors) — this is
  what makes a warm ``AsertaAnalyzer`` construction skip the structural
  pass inside one process (an analyzer, a campaign worker, a SERTOPT
  inner loop);
* an optional **on-disk store** for array-valued artifacts (``npz``
  files with a JSON metadata header under ``cache_dir``), which lets a
  *new* process — a resumed campaign, a fresh CLI invocation — start
  warm.

Invalidation is purely key-based: keys embed the netlist content digest,
the estimation protocol (vectors, seed, ...) and
:data:`~repro.engine.artifacts.ARTIFACT_SCHEMA`, so editing a netlist or
bumping the schema makes old entries unreachable rather than stale.
On-disk files additionally live under a ``v<schema>`` directory so a
layout change can never be mis-parsed.

Counters (:class:`CacheStats`) are part of the public contract: tests
and benchmarks assert "zero fault-simulation work on a warm analyze"
through them.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.engine.artifacts import ARTIFACT_SCHEMA
from repro.errors import ReproError
from repro.telemetry import NULL_METRICS

_LOG = logging.getLogger(__name__)


class EngineError(ReproError):
    """Artifact cache or engine configuration problem."""


@dataclass
class CacheStats:
    """Counters of one :class:`ArtifactCache` (cumulative)."""

    #: In-memory lookups that found a live entry.
    hits: int = 0
    #: Lookups that found nothing (memory and, when enabled, disk).
    misses: int = 0
    #: Entries stored (memory tier).
    puts: int = 0
    #: Lookups served by loading an on-disk artifact.
    disk_hits: int = 0
    #: Array artifacts written to the disk tier.
    disk_writes: int = 0
    #: Entries dropped by the LRU bound.
    evictions: int = 0
    #: On-disk artifacts deleted by the ``max_disk_bytes`` budget.
    disk_evictions: int = 0
    #: Artifacts promoted into memory by :meth:`ArtifactCache.preload_disk`.
    disk_preloads: int = 0
    #: Per-kind hit/miss counts, keyed by artifact kind.
    by_kind: dict[str, dict[str, int]] = field(default_factory=dict)

    def _bump(self, kind: str, what: str) -> None:
        bucket = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
        bucket[what] += 1

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly view (used by benchmarks and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "disk_preloads": self.disk_preloads,
            "by_kind": {k: dict(v) for k, v in self.by_kind.items()},
        }


def _kind_of(key: str) -> str:
    return key.rsplit("-", 1)[0]


class ArtifactCache:
    """LRU of compiled artifacts, optionally backed by a directory.

    ``max_entries`` bounds the in-memory tier (oldest-used evicted
    first).  ``cache_dir`` enables the disk tier; it is created on first
    write.  The disk tier only ever sees array-valued artifacts stored
    through :meth:`get_or_build_arrays` — live Python objects stay
    in-memory only.

    ``max_disk_bytes`` bounds the disk tier: after every write the
    least-recently-used artifacts (by file mtime; disk hits refresh it)
    are deleted until the tier fits the budget.  Deletion is tolerant of
    concurrent evictors — a file that vanishes mid-scan is simply
    someone else's eviction, not an error — so many processes can share
    one capped directory.  ``None`` (the default) keeps the historical
    unbounded behaviour.
    """

    def __init__(
        self,
        max_entries: int = 128,
        cache_dir: str | os.PathLike | None = None,
        max_disk_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise EngineError(f"max_entries must be >= 1, got {max_entries}")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise EngineError(
                f"max_disk_bytes must be >= 1, got {max_disk_bytes}"
            )
        if max_disk_bytes is not None and cache_dir is None:
            raise EngineError("max_disk_bytes needs a cache_dir to bound")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_disk_bytes = max_disk_bytes
        self.stats = CacheStats()
        #: Optional :class:`repro.telemetry.MetricsRegistry` mirror —
        #: every counter bump also lands there under ``engine.cache.*``
        #: (an :class:`~repro.engine.engine.AnalysisEngine` built with a
        #: telemetry handle wires this up).
        self.metrics = NULL_METRICS
        self._entries: OrderedDict[str, Any] = OrderedDict()

    # ------------------------------------------------------------------
    # In-memory tier
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The live entry for ``key``, or ``None`` (counts a hit/miss)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats._bump(_kind_of(key), "hits")
            self.metrics.add("engine.cache.hits")
            return entry
        self.stats.misses += 1
        self.stats._bump(_kind_of(key), "misses")
        self.metrics.add("engine.cache.misses")
        _LOG.debug("artifact cache miss: %s", key)
        return None

    def put(self, key: str, value: Any) -> None:
        """Store a live entry, evicting the least-recently-used ones."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.puts += 1
        self.metrics.add("engine.cache.puts")
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.metrics.add("engine.cache.evictions")

    def get_or_build(self, key: str, build: Callable[[], Any]) -> Any:
        """Serve ``key`` from memory or build-and-store it."""
        entry = self.get(key)
        if entry is None:
            entry = build()
            self.put(key, entry)
        return entry

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Disk tier (array artifacts)
    # ------------------------------------------------------------------

    def _path_for(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"v{ARTIFACT_SCHEMA}" / f"{key}.npz"

    def load_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load an array artifact from disk (no counters; internal)."""
        path = self._path_for(key)
        if path is None or not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as handle:
                payload = {name: handle[name] for name in handle.files}
        except (OSError, ValueError, zipfile.BadZipFile):
            # A truncated or foreign file is a miss, not a crash: the
            # artifact is simply rebuilt (and rewritten) from scratch.
            _LOG.debug("ignoring unreadable on-disk artifact %s", path)
            return None
        meta = payload.pop("__meta__", None)
        if meta is None:
            return None
        try:
            header = json.loads(bytes(meta.tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if header.get("schema") != ARTIFACT_SCHEMA or header.get("key") != key:
            return None
        return payload

    def store_arrays(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Write an array artifact to disk (atomic rename; best-effort)."""
        path = self._path_for(key)
        if path is None:
            return
        if "__meta__" in arrays:
            raise EngineError("'__meta__' is a reserved artifact array name")
        path.parent.mkdir(parents=True, exist_ok=True)
        header = canonical_header(key)
        payload = dict(arrays)
        payload["__meta__"] = np.frombuffer(header, dtype=np.uint8)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.disk_writes += 1
        self.metrics.add("engine.cache.disk_writes")
        self._enforce_disk_budget(keep=path)

    def _enforce_disk_budget(self, keep: Path | None = None) -> None:
        """Delete LRU artifacts until the disk tier fits the budget.

        ``keep`` (the artifact just written) is never evicted — a cache
        whose budget is smaller than one artifact degrades to "latest
        only" rather than thrashing itself empty.  Missing files during
        the scan or the unlink are tolerated: with several processes
        sharing a directory, a concurrent eviction (or an atomic
        replace) may remove a file first.
        """
        if self.max_disk_bytes is None or self.cache_dir is None:
            return
        entries: list[tuple[float, int, Path]] = []
        for path in self.cache_dir.glob("v*/*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for __, size, __p in entries)
        entries.sort()  # oldest mtime first
        for __, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass  # already gone: a concurrent evictor beat us to it
            except OSError:
                # Deletion genuinely failed (permissions, read-only FS):
                # the bytes are still there, so don't pretend otherwise.
                continue
            total -= size
            self.stats.disk_evictions += 1
            self.metrics.add("engine.cache.disk_evictions")
            _LOG.debug("disk budget eviction: %s (%d bytes)", path, size)

    def preload_disk(self, limit: int | None = None) -> int:
        """Promote on-disk array artifacts into the in-memory tier.

        The warm-handoff primitive for pooled campaign workers: a worker
        forked into a process that has never analyzed anything calls
        this once, pays the ``npz`` deserialization *before* the first
        batch arrives (inside the pool's measured spin-up window, not a
        batch's critical path), and then serves every preloaded artifact
        as an ordinary memory hit.  Most-recently-written artifacts are
        preloaded first so a bounded LRU keeps the hottest ones;
        ``limit`` caps the number of files read (``None`` = all).
        Unreadable or foreign files are skipped, exactly as in
        :meth:`load_arrays`.  Returns the number of artifacts promoted.
        """
        if self.cache_dir is None:
            return 0
        version_dir = self.cache_dir / f"v{ARTIFACT_SCHEMA}"
        paths: list[tuple[float, Path]] = []
        for path in version_dir.glob("*.npz"):
            try:
                paths.append((path.stat().st_mtime, path))
            except OSError:
                continue  # concurrently evicted
        paths.sort(reverse=True)  # newest first
        if limit is not None:
            paths = paths[:limit]
        loaded = 0
        for __, path in paths:
            key = path.name[: -len(".npz")]
            if key in self._entries:
                continue
            arrays = self.load_arrays(key)
            if arrays is None:
                continue
            _freeze(arrays)
            self.put(key, arrays)
            self.stats.disk_preloads += 1
            self.metrics.add("engine.cache.disk_preloads")
            loaded += 1
        return loaded

    def get_or_build_arrays(
        self, key: str, build: Callable[[], dict[str, np.ndarray]]
    ) -> dict[str, np.ndarray]:
        """Serve an array artifact from memory, then disk, else build it.

        A disk hit is promoted into the in-memory LRU; a fresh build is
        stored in both tiers.  Served arrays are marked read-only: one
        ndarray is aliased by every consumer (that is the point of the
        cache), so an accidental in-place write by one analyzer must
        fail loudly instead of silently corrupting all later ones.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats._bump(_kind_of(key), "hits")
            self.metrics.add("engine.cache.hits")
            return entry
        loaded = self.load_arrays(key)
        if loaded is not None:
            self.stats.disk_hits += 1
            self.stats.hits += 1
            self.stats._bump(_kind_of(key), "hits")
            self.metrics.add("engine.cache.hits")
            self.metrics.add("engine.cache.disk_hits")
            _LOG.debug("disk tier hit: %s", key)
            if self.max_disk_bytes is not None:
                path = self._path_for(key)
                try:
                    os.utime(path)  # refresh LRU recency on a disk hit
                except OSError:
                    pass
            _freeze(loaded)
            self.put(key, loaded)
            return loaded
        self.stats.misses += 1
        self.stats._bump(_kind_of(key), "misses")
        self.metrics.add("engine.cache.misses")
        _LOG.debug("artifact cache miss: building %s", key)
        built = build()
        _freeze(built)
        self.put(key, built)
        self.store_arrays(key, built)
        return built


def _freeze(arrays: Mapping[str, np.ndarray]) -> None:
    """Mark every array of an artifact immutable (shared by aliasing)."""
    for value in arrays.values():
        value.setflags(write=False)


def canonical_header(key: str) -> bytes:
    """The JSON metadata header embedded in every on-disk artifact."""
    return json.dumps(
        {"schema": ARTIFACT_SCHEMA, "key": key}, sort_keys=True
    ).encode("utf-8")
