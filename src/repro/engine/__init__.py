"""Structural engine: batched fault simulation + compiled-artifact cache.

The two cooperating halves of the subsystem:

* :mod:`repro.engine.structural` — a level-synchronized, fault-site-
  batched bit-parallel simulator producing the dense ``(V, O)``
  ``P_ij`` matrix bit-identically to the event-driven seed estimator,
  with cone-of-influence masks so untouched regions cost nothing;
* :mod:`repro.engine.cache` / :mod:`repro.engine.artifacts` — a
  content-addressed cache (in-process LRU + optional on-disk ``npz``
  store, versioned keys) for every expensive derived structure, so a
  warm analyzer construction, a resumed campaign or a SERTOPT inner
  loop skips simulation entirely.

:class:`AnalysisEngine` ties them together and is what
``AsertaAnalyzer(engine=...)``, ``Sertopt(engine=...)`` and the
campaign runner plumb through.
"""

from repro.engine.artifacts import (
    ARTIFACT_SCHEMA,
    artifact_key,
    circuit_digest,
    p_matrix_key,
)
from repro.engine.cache import ArtifactCache, CacheStats, EngineError
from repro.engine.engine import (
    STRUCTURAL_ENGINES,
    AnalysisEngine,
    get_default_engine,
    set_default_engine,
)
from repro.engine.structural import (
    CompiledStructuralCircuit,
    sparse_paths_from_matrix,
    structural_matrix,
    structural_matrix_batched,
    structural_matrix_event,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "STRUCTURAL_ENGINES",
    "AnalysisEngine",
    "ArtifactCache",
    "CacheStats",
    "CompiledStructuralCircuit",
    "EngineError",
    "artifact_key",
    "circuit_digest",
    "get_default_engine",
    "p_matrix_key",
    "set_default_engine",
    "sparse_paths_from_matrix",
    "structural_matrix",
    "structural_matrix_batched",
    "structural_matrix_event",
]
