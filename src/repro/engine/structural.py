"""Batched fault-site simulation: the Section-3.1 structural pass.

The seed estimator (:func:`repro.logicsim.sensitization.sensitization_probabilities`)
walks one fault site at a time: flip gate ``i``'s packed values, push an
event-driven overlay through its fanout cone, count output differences.
That is one Python-level heap iteration *per touched gate per site* —
the dominant per-circuit cost once the electrical pass was vectorized.

This module replaces the walk with a **level-synchronized, fault-site-
batched** simulator:

* fault sites are processed in blocks of ``S`` sites; the faulty state
  lives as one ``(S, V, W)`` ``uint64`` *delta* tensor (XOR against the
  fault-free base simulation, 64 vectors per word);
* gates are evaluated level by level through the
  :class:`~repro.circuit.indexed.IndexedCircuit` CSR arrays, one NumPy
  call per ``(level, gate-type/fan-in group)`` — every site in the
  block advances together;
* precomputed **reachability bitsets** (`CompiledStructuralCircuit`)
  mask out gates no site in the block can influence, so regions outside
  the union fanout cone cost nothing;
* a site's own row stays pinned at "complemented" for its lane, exactly
  like the event overlay pins the flipped source.

Because both implementations perform exact zero-delay simulation of the
*same* random vectors (same seed, same packing), the resulting ``P_ij``
counts are **bit-identical** — asserted across every bundled circuit by
``tests/test_engine_structural.py``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import evaluate_words
from repro.circuit.indexed import IndexedCircuit
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.logicsim.bitsim import BitParallelSimulator
from repro.logicsim.vectors import lane_mask, random_input_words
from repro.telemetry import resolve

#: Default ceiling on one block's delta tensor (bytes) — blocks shrink
#: on large circuits so memory stays flat while throughput stays high.
DEFAULT_MAX_BLOCK_BYTES = 1 << 27

#: Hard cap on sites per block (beyond this, gather sizes stop helping).
MAX_BLOCK_SITES = 256

#: Active-(site, gate) pair density below which a (level, group)
#: evaluation switches from the dense ``(sites, gates)`` rectangle to
#: gathered per-pair evaluation.  On wide circuits most gates of a
#: level sit outside most sites' fanout cones, so the rectangle wastes
#: word-ops on pairs whose delta is provably zero; near-dense groups
#: keep the rectangle (contiguous gathers beat fancy indexing there).
SITE_MASK_MAX_DENSITY = 0.5


class CompiledStructuralCircuit:
    """Assignment- and protocol-independent simulation schedule.

    Everything here depends only on the netlist structure, so one
    compiled instance serves every ``(n_vectors, seed)`` estimate of a
    circuit and is a natural citizen of the content-addressed artifact
    cache (keyed by :func:`repro.engine.artifacts.compiled_key`).
    """

    def __init__(self, indexed: IndexedCircuit) -> None:
        idx = indexed
        self.indexed = idx
        n = idx.n_signals
        self.word_count = (n + 63) // 64

        #: Bit position of each row inside the packed site bitsets.
        self.bit_word = np.arange(n, dtype=np.int64) >> 6
        self.bit_mask = np.uint64(1) << (
            np.arange(n, dtype=np.uint64) & np.uint64(63)
        )

        # reach[r] — packed set of source rows that can reach row r
        # (fanin cone of r, own bit included).  One forward pass; each
        # row ORs its fan-ins' bitsets.
        reach = np.zeros((n, self.word_count), dtype=np.uint64)
        for row in range(n):
            fanins = idx.fanins_of(row)
            if fanins.size:
                np.bitwise_or.reduce(reach[fanins], axis=0, out=reach[row])
            reach[row, self.bit_word[row]] |= self.bit_mask[row]
        self.reach = reach

        # Evaluation schedule: for each logic level >= 1, the gate rows
        # grouped by (gate type, fan-in count) with their dense fan-in
        # row matrices — the unit of one vectorized evaluate_words call.
        schedule: list[tuple[int, list[tuple[int, np.ndarray, np.ndarray]]]] = []
        gate_rows = idx.gate_rows
        gate_levels = idx.level[gate_rows]
        for level in np.unique(gate_levels):
            at_level = gate_rows[gate_levels == level]
            entries: list[tuple[int, np.ndarray, np.ndarray]] = []
            for gid in np.unique(idx.group_id[at_level]):
                rows = at_level[idx.group_id[at_level] == gid]
                nfi = idx.group_pairs[gid][1]
                fanin_matrix = idx.fanin_src[
                    idx.fanin_ptr[rows][:, np.newaxis]
                    + np.arange(nfi, dtype=np.int64)
                ]
                entries.append((int(gid), rows, fanin_matrix))
            schedule.append((int(level), entries))
        self.schedule = schedule

    def block_bitmask(self, start: int, stop: int) -> np.ndarray:
        """Packed bitset with the site rows ``[start, stop)`` set."""
        mask = np.zeros(self.word_count, dtype=np.uint64)
        np.bitwise_or.at(
            mask, self.bit_word[start:stop], self.bit_mask[start:stop]
        )
        return mask

    def candidates(self, start: int, stop: int) -> np.ndarray:
        """Rows some site in ``[start, stop)`` can influence (bool ``(V,)``).

        A site row is a candidate only if *another* site reaches it —
        its own value is pinned to the complement, never re-evaluated.
        """
        touched = self.reach & self.block_bitmask(start, stop)
        site_rows = np.arange(start, stop, dtype=np.int64)
        touched[site_rows, self.bit_word[site_rows]] &= ~self.bit_mask[site_rows]
        return touched.any(axis=1)

    def site_matrix(self, start: int, stop: int, rows: np.ndarray) -> np.ndarray:
        """Per-row active-site mask: ``(S, len(rows))`` booleans, true
        where site ``start + s`` reaches gate ``rows[g]``.

        A site that cannot reach a gate leaves every fan-in delta at
        zero, so the faulty evaluation reproduces the base value — the
        (site, gate) pair is provably a no-op.  The site's *own* row is
        excluded (its lane stays pinned to the complement), matching
        :meth:`candidates`.
        """
        site_rows = np.arange(start, stop, dtype=np.int64)
        words = self.reach[rows][:, self.bit_word[site_rows]]
        bits = (words >> (site_rows.astype(np.uint64) & np.uint64(63))) & np.uint64(1)
        mask = bits.astype(bool).T
        mask &= rows[np.newaxis, :] != site_rows[:, np.newaxis]
        return mask


def pick_block_sites(
    n_signals: int, n_words: int, max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES
) -> int:
    """Sites per block so the delta tensor stays under the byte budget."""
    per_site = max(1, n_signals * n_words * 8)
    return int(max(1, min(MAX_BLOCK_SITES, max_block_bytes // per_site)))


def structural_matrix_batched(
    circuit: Circuit,
    n_vectors: int = 10000,
    seed: int = 0,
    simulator: BitParallelSimulator | None = None,
    compiled: CompiledStructuralCircuit | None = None,
    block_sites: int | None = None,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
    telemetry=None,
) -> np.ndarray:
    """Dense ``(V, O)`` estimate of ``P_ij`` by batched fault simulation.

    Bit-identical to the event-driven estimator on the same
    ``(n_vectors, seed)``: row order is the indexed circuit's
    topological order, columns are primary outputs in declaration
    order, and the guaranteed diagonal ``P_jj = 1`` is applied exactly
    as the sparse estimator does.  ``telemetry`` records one
    ``structural.block`` span per fault-site block.
    """
    tel = resolve(telemetry)
    if n_vectors < 1:
        raise SimulationError(f"need at least one vector, got {n_vectors}")
    sim = simulator if simulator is not None else BitParallelSimulator(circuit)
    if sim.circuit is not circuit:
        raise SimulationError("simulator was compiled for a different circuit")
    idx = circuit.indexed()
    if compiled is None:
        compiled = CompiledStructuralCircuit(idx)
    elif compiled.indexed is not idx:
        raise SimulationError(
            "compiled structural schedule belongs to a different circuit"
        )

    inputs = random_input_words(len(circuit.inputs), n_vectors, seed)
    base = sim.simulate(inputs)
    mask = lane_mask(n_vectors)
    n = idx.n_signals
    n_words = base.shape[1]
    if block_sites is None:
        block_sites = pick_block_sites(n, n_words, max_block_bytes)
    if block_sites < 1:
        raise SimulationError(f"block_sites must be >= 1, got {block_sites}")

    counts = np.zeros((n, idx.n_outputs), dtype=np.int64)
    levels = idx.level
    for start in range(0, n, block_sites):
        stop = min(start + block_sites, n)
        with tel.span("structural.block", start=start, stop=stop):
            site_rows = np.arange(start, stop, dtype=np.int64)
            site_levels = levels[site_rows]
            local = site_rows - start

            # Delta against the fault-free base; each site's own row is
            # pinned to "every valid lane complemented".
            delta = np.zeros((stop - start, n, n_words), dtype=np.uint64)
            delta[local, site_rows] = mask

            candidate = compiled.candidates(start, stop)
            min_level = int(site_levels.min())
            for level, entries in compiled.schedule:
                if level <= min_level:
                    continue
                for __, rows, fanin_matrix in entries:
                    active = candidate[rows]
                    if not active.any():
                        continue
                    rows_active = rows[active]
                    fanins = fanin_matrix[active]
                    gtype = idx.gtypes[rows_active[0]]
                    pair_mask = compiled.site_matrix(start, stop, rows_active)
                    # A (site, gate) pair with no reachability is a no-op
                    # (the delta stays zero either way); when such pairs
                    # dominate, evaluate only the live ones.  Both branches
                    # compute identical values for every live pair, so the
                    # result is bit-identical.
                    if (
                        stop - start > 1
                        and pair_mask.mean() <= SITE_MASK_MAX_DENSITY
                    ):
                        s_idx, g_idx = np.nonzero(pair_mask)
                        if s_idx.size == 0:
                            continue
                        pair_fanins = fanins[g_idx]
                        words = [
                            base[pair_fanins[:, t]]
                            ^ delta[s_idx, pair_fanins[:, t]]
                            for t in range(pair_fanins.shape[1])
                        ]
                        faulty = evaluate_words(gtype, words)
                        target_rows = rows_active[g_idx]
                        delta[s_idx, target_rows] = (
                            faulty ^ base[target_rows]
                        ) & mask
                    else:
                        words = [
                            base[fanins[:, t]] ^ delta[:, fanins[:, t]]
                            for t in range(fanins.shape[1])
                        ]
                        faulty = evaluate_words(gtype, words)
                        delta[:, rows_active] = (
                            faulty ^ base[rows_active]
                        ) & mask
                # Sites whose row sits at this level were just re-evaluated
                # under *other* faults; restore their own-lane pin.
                pins = site_rows[site_levels == level]
                if pins.size:
                    delta[pins - start, pins] = mask

            counts[site_rows] = np.bitwise_count(
                delta[:, idx.output_rows]
            ).sum(axis=2)

    p = counts / float(n_vectors)
    p[idx.output_rows, idx.col_of_row[idx.output_rows]] = 1.0
    return p


def structural_matrix_event(
    circuit: Circuit,
    n_vectors: int = 10000,
    seed: int = 0,
    simulator: BitParallelSimulator | None = None,
) -> np.ndarray:
    """Dense ``(V, O)`` matrix from the event-driven seed estimator.

    The escape hatch (``structural_engine="event"``) and the baseline
    the batched engine is differential-tested and benchmarked against.
    """
    from repro.logicsim.sensitization import sensitization_probabilities

    sparse = sensitization_probabilities(
        circuit, n_vectors=n_vectors, seed=seed, simulator=simulator
    )
    return circuit.indexed().output_matrix(sparse)


def structural_matrix(
    circuit: Circuit,
    n_vectors: int = 10000,
    seed: int = 0,
    engine: str = "batched",
    simulator: BitParallelSimulator | None = None,
    compiled: CompiledStructuralCircuit | None = None,
) -> np.ndarray:
    """Dispatch to one structural estimator by name."""
    if engine == "batched":
        return structural_matrix_batched(
            circuit, n_vectors, seed, simulator=simulator, compiled=compiled
        )
    if engine == "event":
        return structural_matrix_event(
            circuit, n_vectors, seed, simulator=simulator
        )
    raise SimulationError(
        f"structural engine must be 'batched' or 'event', got {engine!r}"
    )


def sparse_paths_from_matrix(
    indexed: IndexedCircuit, p_matrix: np.ndarray
) -> dict[str, dict[str, float]]:
    """Sparse ``{gate: {output: P_ij}}`` view of a dense matrix.

    The exact inverse of :meth:`IndexedCircuit.output_matrix` under the
    estimator's sparsity rule (an entry exists iff it is non-zero; the
    ``P_jj = 1`` diagonal is always non-zero), so round-tripping either
    way is lossless.
    """
    outputs = indexed.circuit.outputs
    result: dict[str, dict[str, float]] = {}
    for row, name in enumerate(indexed.order):
        cols = np.flatnonzero(p_matrix[row])
        result[name] = {outputs[col]: float(p_matrix[row, col]) for col in cols}
    return result
