"""The analysis engine: structural simulation + compiled-artifact cache.

:class:`AnalysisEngine` is the handle the rest of the library plumbs
around.  It owns one :class:`~repro.engine.cache.ArtifactCache` and
knows how to *build-or-serve* every structural artifact an analysis
needs:

* the compiled simulation schedule
  (:class:`~repro.engine.structural.CompiledStructuralCircuit`);
* the dense ``P_ij`` matrix — batched by default, event-driven via the
  ``structural="event"`` escape hatch (disk-cacheable: a resumed
  campaign or a fresh CLI run skips the fault simulation entirely);
* the assignment-independent Equation-2 masking structure;
* stacked LUT value tensors, pre-warmed into a
  :class:`~repro.tech.table_builder.TechnologyTables` instance.

One process-wide default engine (:func:`get_default_engine`) backs
every ``AsertaAnalyzer`` that is not handed an explicit engine, which
is what makes a *second* analyzer of the same circuit and protocol —
a SERTOPT run after a campaign, a re-built analyzer in a long-lived
service — perform zero fault-simulation work.
"""

from __future__ import annotations

import logging
import os
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.circuit.netlist import Circuit
from repro.engine import artifacts
from repro.engine.cache import ArtifactCache, EngineError
from repro.engine.structural import (
    CompiledStructuralCircuit,
    sparse_paths_from_matrix,
    structural_matrix_batched,
    structural_matrix_event,
)
from repro.telemetry import resolve

_LOG = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.masking import MaskingStructure
    from repro.logicsim.bitsim import BitParallelSimulator
    from repro.tech.table_builder import TechnologyTables

#: Structural estimator names (the ``structural_engine`` escape hatch).
STRUCTURAL_ENGINES = ("batched", "event")

#: LUT kinds the vectorized electrical annotation gathers through.
_STACKED_KINDS = ("input_cap", "ramp", "delay", "glitch", "static_power")


class AnalysisEngine:
    """Build-or-serve facade over the compiled-artifact cache.

    Analyzers, campaigns and SERTOPT runs that share one engine share
    every sizing-invariant compiled artifact — ``P_ij`` matrices,
    Equation-2 masking structures, compiled structural schedules and
    stacked LUT tensors — keyed by netlist content digest plus the
    estimation protocol.  Pass ``cache_dir`` (a directory path) to add
    a persistent on-disk ``npz`` tier shared across processes, and
    ``max_disk_bytes`` to bound it with LRU-by-mtime eviction.
    Counters (:attr:`structural_sim_runs`, ``stats``) expose how much
    real simulation work the engine has done versus served from cache.
    Pass ``telemetry`` (a :class:`repro.telemetry.Telemetry`) to record
    build spans (``engine.*.build``) and mirror the cache counters into
    its metrics registry under ``engine.cache.*``.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        cache_dir: str | os.PathLike | None = None,
        structural: str = "batched",
        max_entries: int = 128,
        max_disk_bytes: int | None = None,
        telemetry=None,
    ) -> None:
        if structural not in STRUCTURAL_ENGINES:
            raise EngineError(
                f"structural engine must be one of {STRUCTURAL_ENGINES}, "
                f"got {structural!r}"
            )
        if cache is not None and cache_dir is not None:
            raise EngineError("pass either cache or cache_dir, not both")
        if cache is not None and max_disk_bytes is not None:
            raise EngineError(
                "max_disk_bytes configures the engine-owned cache; set it "
                "on the ArtifactCache when passing one in"
            )
        self.cache = (
            cache
            if cache is not None
            else ArtifactCache(
                max_entries=max_entries,
                cache_dir=cache_dir,
                max_disk_bytes=max_disk_bytes,
            )
        )
        self.structural = structural
        #: Fault simulations actually executed (not served from cache).
        self.structural_sim_runs = 0
        self.telemetry = resolve(telemetry)
        if self.telemetry.enabled:
            # Mirror cache counters into the registry as they happen —
            # counters (not gauges), so cross-process merges are sums.
            self.cache.metrics = self.telemetry.metrics

    # ------------------------------------------------------------------
    # Structural artifacts
    # ------------------------------------------------------------------

    def compiled_structural(self, circuit: Circuit) -> CompiledStructuralCircuit:
        """The batched simulation schedule (cached by netlist digest)."""
        key = artifacts.compiled_key(circuit)
        compiled = self.cache.get(key)
        if compiled is None or compiled.indexed.circuit is not circuit:
            # A schedule cached for a *different object* with the same
            # content is structurally valid, but rebinding row arrays
            # across objects buys nothing — compilation is cheap next to
            # simulation — so each live circuit object gets its own.
            with self.telemetry.span(
                "engine.compile_structural", circuit=circuit.name
            ):
                compiled = CompiledStructuralCircuit(circuit.indexed())
            self.cache.put(key, compiled)
        return compiled

    def p_matrix(
        self,
        circuit: Circuit,
        n_vectors: int,
        seed: int,
        structural: str | None = None,
        simulator: "BitParallelSimulator | None" = None,
    ) -> np.ndarray:
        """Dense ``(V, O)`` ``P_ij``, served from cache when possible.

        The key is engine-independent (both estimators are bit-identical
        by contract), so a matrix computed by either implementation —
        or loaded from the disk tier — serves every caller.
        """
        engine = self.structural if structural is None else structural
        if engine not in STRUCTURAL_ENGINES:
            raise EngineError(
                f"structural engine must be one of {STRUCTURAL_ENGINES}, "
                f"got {engine!r}"
            )
        key = artifacts.p_matrix_key(circuit, n_vectors, seed)

        def build() -> dict[str, np.ndarray]:
            self.structural_sim_runs += 1
            self.telemetry.metrics.add("engine.structural_sim_runs")
            _LOG.debug(
                "structural simulation for %s (%d vectors, %s engine)",
                circuit.name, n_vectors, engine,
            )
            with self.telemetry.span(
                "engine.p_matrix.build",
                circuit=circuit.name,
                n_vectors=n_vectors,
                engine=engine,
            ):
                if engine == "batched":
                    matrix = structural_matrix_batched(
                        circuit,
                        n_vectors,
                        seed,
                        simulator=simulator,
                        compiled=self.compiled_structural(circuit),
                        telemetry=self.telemetry,
                    )
                else:
                    matrix = structural_matrix_event(
                        circuit, n_vectors, seed, simulator=simulator
                    )
            return {"p_matrix": matrix}

        return self.cache.get_or_build_arrays(key, build)["p_matrix"]

    def sensitized_paths(
        self, circuit: Circuit, n_vectors: int, seed: int
    ) -> dict[str, dict[str, float]]:
        """Sparse ``{gate: {output: P_ij}}`` view over :meth:`p_matrix`."""
        return sparse_paths_from_matrix(
            circuit.indexed(), self.p_matrix(circuit, n_vectors, seed)
        )

    def masking_structure(
        self,
        circuit: Circuit,
        probabilities: Mapping[str, float],
        n_vectors: int,
        seed: int,
        epsilon: float,
    ) -> "MaskingStructure":
        """The Equation-2 structure over the cached ``P_ij`` matrix."""
        from repro.core.masking import masking_structure

        key = artifacts.structure_key(
            circuit, n_vectors, seed, probabilities, epsilon
        )
        structure = self.cache.get(key)
        if structure is None or (
            structure.indexed.circuit is not circuit
            and structure.indexed.circuit.content_digest()
            != circuit.content_digest()
        ):
            # Content-equal live copies share the cached structure (its
            # row/column order is determined by the netlist content, and
            # the electrical-masking pass accepts digest-equal
            # structures); only a true content mismatch — impossible
            # while keys embed the digest, but cheap to re-check —
            # rebuilds.  The dense share computation is the dominant
            # non-simulation build cost, so rebuilding per live object
            # would thrash warm paths that reload circuits.
            with self.telemetry.span(
                "engine.masking_structure.build", circuit=circuit.name
            ):
                structure = masking_structure(
                    circuit,
                    probabilities,
                    indexed=circuit.indexed(),
                    p_matrix=self.p_matrix(circuit, n_vectors, seed),
                    epsilon=epsilon,
                )
            self.cache.put(key, structure)
        return structure

    def sweep_plan(
        self,
        circuit: Circuit,
        probabilities: Mapping[str, float],
        n_vectors: int,
        seed: int,
        epsilon: float,
        backend: str = "numpy",
        structure: "MaskingStructure | None" = None,
    ):
        """The compiled Section-3.2 sweep plan, served from cache.

        Keyed like the masking structure it compiles *plus a backend
        axis* (:func:`repro.engine.artifacts.sweep_plan_key`): one
        circuit analyzed under two array backends holds two plans.
        ``structure`` short-cuts the structure lookup when the caller
        (an analyzer) already resolved it.  A plan holds only integer
        schedules and dense shares — all determined by the netlist
        content the key embeds — so content-equal live circuit copies
        share one cached plan, exactly like masking structures.
        """
        from repro.core.sweep_plan import sweep_plan_for

        if structure is None:
            structure = self.masking_structure(
                circuit, probabilities, n_vectors, seed, epsilon
            )
        key = artifacts.sweep_plan_key(
            circuit, n_vectors, seed, probabilities, epsilon, backend
        )
        plan = self.cache.get(key)
        if plan is None:
            with self.telemetry.span(
                "engine.sweep_plan.build",
                circuit=circuit.name,
                backend=backend,
            ):
                plan = sweep_plan_for(structure, backend)
            self.cache.put(key, plan)
        return plan

    # ------------------------------------------------------------------
    # Electrical artifacts
    # ------------------------------------------------------------------

    def warm_stacked_tables(
        self, tables: "TechnologyTables", pairs: tuple
    ) -> None:
        """Pre-populate the stacked LUT tensors for one gate population.

        On a cache hit (including the disk tier) the tensors are adopted
        into ``tables`` without evaluating a single grid point; on a
        miss they are built once and stored for the next process.
        """
        if not pairs:
            return
        axes = tables.axes_digest()

        def build_stack(kind: str) -> dict[str, np.ndarray]:
            with self.telemetry.span("engine.stacked_lut.build", kind=kind):
                return {"values": tables.stacked_values(kind, pairs)}

        for kind in _STACKED_KINDS:
            key = artifacts.stacked_lut_key(axes, kind, pairs)
            stacked = self.cache.get_or_build_arrays(
                key, lambda kind=kind: build_stack(kind)
            )["values"]
            tables.adopt_stack(kind, pairs, stacked)

    def warm_start(self, preload_limit: int | None = None) -> int:
        """Adopt whatever the on-disk artifact tier already holds.

        Called by pooled campaign workers during spin-up so that the
        ``P_ij`` matrices and stacked LUT tensors written by earlier
        runs (or by a sibling worker) are memory hits before the first
        batch arrives — the cross-process warm handoff.  A no-op for
        engines without a disk tier.  Returns the number of artifacts
        promoted into memory.
        """
        with self.telemetry.span("engine.warm_start"):
            return self.cache.preload_disk(limit=preload_limit)

    def stats(self) -> dict:
        """Cache counters plus the engine's own simulation counter."""
        snapshot = self.cache.stats.snapshot()
        snapshot["structural_sim_runs"] = self.structural_sim_runs
        return snapshot


_DEFAULT_ENGINE: AnalysisEngine | None = None


def get_default_engine() -> AnalysisEngine:
    """The process-wide engine used when none is passed explicitly.

    Created lazily on first use (in-memory cache only); replace or
    reset it with :func:`set_default_engine`.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = AnalysisEngine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: AnalysisEngine | None) -> AnalysisEngine | None:
    """Replace the process-wide engine; returns the previous one.

    Pass ``None`` to reset (a fresh default is created on next use) —
    used by tests and by long-lived services that want to bound memory.
    """
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
