"""Engineering units and physical constants used throughout the library.

All internal computation uses one consistent unit system so that no
function needs per-call unit bookkeeping:

==============  ==========  =====================================
Quantity        Unit        Notes
==============  ==========  =====================================
time            ps          gate delays, glitch widths, ramps
voltage         V           VDD, Vth, glitch amplitude
capacitance     fF          node, input and load capacitance
current         uA          device on-current, leakage
charge          fC          injected charge (1 fC = 1 fF * 1 V)
energy          fJ          static and dynamic energy
length          nm          gate width and channel length
area            nm^2        gate area (width * length)
==============  ==========  =====================================

The only non-obvious conversion: a current of 1 uA discharging 1 fF
across 1 V takes 1 ns, i.e. 1000 ps.  :data:`PS_PER_FF_V_PER_UA`
captures that factor once.
"""

from __future__ import annotations

import math

#: Multiply (C[fF] * V[V] / I[uA]) by this to obtain a time in ps.
PS_PER_FF_V_PER_UA = 1000.0

#: Boltzmann constant times unit charge: thermal voltage at 300 K, in volts.
THERMAL_VOLTAGE_V = 0.02585

#: Picoseconds per nanosecond, for readable conversions in reports.
PS_PER_NS = 1000.0

#: Femtojoules per picojoule.
FJ_PER_PJ = 1000.0


def charge_fc(capacitance_ff: float, voltage_v: float) -> float:
    """Charge in fC stored on ``capacitance_ff`` at ``voltage_v``."""
    return capacitance_ff * voltage_v


def discharge_time_ps(charge_fc_: float, current_ua: float) -> float:
    """Time in ps for ``current_ua`` to move ``charge_fc_`` of charge."""
    if current_ua <= 0.0:
        return math.inf
    return PS_PER_FF_V_PER_UA * charge_fc_ / current_ua


def dynamic_energy_fj(capacitance_ff: float, vdd_v: float) -> float:
    """Switching energy ``C * VDD^2`` in fJ for a full rail transition."""
    return capacitance_ff * vdd_v * vdd_v


def leakage_energy_fj(leakage_ua: float, vdd_v: float, window_ps: float) -> float:
    """Static energy ``I_leak * VDD * t`` in fJ over a ``window_ps`` window."""
    return leakage_ua * vdd_v * window_ps / PS_PER_FF_V_PER_UA
