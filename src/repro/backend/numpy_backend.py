"""The default array backend: plain NumPy, bitwise identical.

This backend *is* the reference semantics — the kernels it inherits
from :class:`~repro.backend.base.ArrayBackend` are the fused form of
the unfused per-level loop, elementwise identical double for double.
Its declared tolerance is therefore exactly ``0.0``: the conformance
matrix asserts ``np.testing.assert_array_equal`` against the unfused
reference, not an approximate comparison.
"""

from __future__ import annotations

from repro.backend.base import ArrayBackend


class NumpyBackend(ArrayBackend):
    """NumPy default — ``tolerance = 0.0`` (bitwise identity)."""

    name = "numpy"
    tolerance = 0.0
