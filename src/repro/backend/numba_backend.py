"""Optional Numba JIT backend — registered only when numba imports.

The per-level kernel is the one place a JIT genuinely helps: the
live-pair level tensors are a few thousand elements, and a compiled
loop nest removes both the NumPy dispatch and every index/expansion
temporary the array form materializes.  Inside the JIT the fan-out
scatter needs no slot decomposition — a sequential pair loop in
edge-major order *is* the reference ``np.add.at`` accumulation order.

The kernel reads and writes through the same flat-offset addressing
the NumPy backend uses (``ws_flat[offset + bracket index]``), with the
interpolation endpoints resolved per unique ``(destination, output)``
cell via the level's ``pair_cell`` map.  Accuracy: it evaluates
``share * (lo * (1-f) + hi * f)`` with strict IEEE-754 semantics
(``fastmath`` off), so it tracks the NumPy path to the last few ulps;
the backend still declares a small non-zero ``tolerance`` (1e-12
relative) rather than claiming bitwise identity — the documented rule
for every non-NumPy backend, enforced at registration and verified by
the conformance matrix.

This module must import cleanly without numba installed: the container
image pins its dependency set, so the backend is gated on
importability and :func:`register_if_available` is a silent no-op when
the runtime is absent (CI surfaces the skip visibly in the backend
matrix leg).
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover - the baked image has no numba
    numba = None

_BATCH_KERNEL = None
_SINGLE_KERNEL = None


def _build_kernels():  # pragma: no cover - requires numba
    """Compile the level kernels once, on first registration."""
    global _BATCH_KERNEL, _SINGLE_KERNEL
    if _BATCH_KERNEL is not None:
        return

    @numba.njit(cache=False, fastmath=False)
    def batch_kernel(ws_flat, gather, scatter, pair_cell, pair_share,
                     low_c, high_c, frac_c, omf_c):
        n_lanes, n_cells, n_k = low_c.shape
        n_pairs = pair_cell.shape[0]
        for b in range(n_lanes):
            for p in range(n_pairs):
                c = pair_cell[p]
                sh = pair_share[p]
                cell = gather[b, c, 0]
                target = scatter[b, p, 0]
                for m in range(n_k):
                    lo = ws_flat[cell + low_c[b, c, m]]
                    hi = ws_flat[cell + high_c[b, c, m]]
                    ws_flat[target + m] += sh * (
                        lo * omf_c[b, c, m] + hi * frac_c[b, c, m]
                    )

    @numba.njit(cache=False, fastmath=False)
    def single_kernel(ws_flat, gather, scatter, pair_cell, pair_share,
                      low_c, high_c, frac_c, omf_c):
        n_cells, n_k = low_c.shape
        n_pairs = pair_cell.shape[0]
        for p in range(n_pairs):
            c = pair_cell[p]
            sh = pair_share[p]
            cell = gather[c, 0]
            target = scatter[p, 0]
            for m in range(n_k):
                lo = ws_flat[cell + low_c[c, m]]
                hi = ws_flat[cell + high_c[c, m]]
                ws_flat[target + m] += sh * (
                    lo * omf_c[c, m] + hi * frac_c[c, m]
                )

    _BATCH_KERNEL = batch_kernel
    _SINGLE_KERNEL = single_kernel


class NumbaBackend(ArrayBackend):  # pragma: no cover - requires numba
    """JIT-compiled level kernel; declared tolerance 1e-12 relative."""

    name = "numba"
    tolerance = 1e-12

    def sweep_level_batch(
        self, ws_flat, gather, scatter, m_grid, level,
        low_c, high_c, frac_c, omf_c,
    ) -> None:
        _BATCH_KERNEL(
            ws_flat, np.ascontiguousarray(gather),
            np.ascontiguousarray(scatter),
            level.pair_cell, level.pair_share,
            np.ascontiguousarray(low_c), np.ascontiguousarray(high_c),
            np.ascontiguousarray(frac_c), np.ascontiguousarray(omf_c),
        )

    def sweep_level_single(
        self, ws_flat, gather, scatter, m_grid, level,
        low_c, high_c, frac_c, omf_c,
    ) -> None:
        _SINGLE_KERNEL(
            ws_flat, np.ascontiguousarray(gather),
            np.ascontiguousarray(scatter),
            level.pair_cell, level.pair_share,
            np.ascontiguousarray(low_c), np.ascontiguousarray(high_c),
            np.ascontiguousarray(frac_c), np.ascontiguousarray(omf_c),
        )


def register_if_available() -> bool:
    """Register the backend when numba imports; no-op (False) otherwise."""
    if numba is None:
        return False
    _build_kernels()  # pragma: no cover - requires numba
    from repro.backend import register_backend  # pragma: no cover

    register_backend(NumbaBackend(), replace=True)  # pragma: no cover
    return True  # pragma: no cover
