"""The array-backend contract: one hot kernel, an explicit tolerance.

An :class:`ArrayBackend` accelerates exactly the inner step of the
compiled Section-3.2 sweep (:class:`~repro.core.sweep_plan.SweepPlan`):
for one logic level, gather the live successor ``WS`` interpolation
endpoints through precomputed flat offsets, interpolate once per
unique ``(destination, output)`` cell, expand onto the live pairs,
weight with the nonzero Equation-2 shares, and scatter-add onto the
``(source, output)`` targets in the reference accumulation order.
Everything around the kernel — plan compilation, chunking, Equations
3–4 — stays NumPy and backend-agnostic.

The base class *is* the reference implementation: 1-D integer-array
gathers (NumPy's fast indexing path) and in-place arithmetic,
elementwise identical to the unfused per-level loop it replaces.  The
bitwise argument: the flat offsets address exactly the elements the
unfused gathers read; interpolating once per unique cell then copying
onto its pairs produces the same doubles each duplicate pair would
have computed from the same inputs; multiplication is commutative at
the bit level in IEEE-754; ``x *= a; x += y`` produces the same
doubles as ``x * a + y``; and the zero-share work the plan dropped
contributed exact ``+0.0`` terms that cannot change any sum (see the
:mod:`~repro.core.sweep_plan` module docstring).  Subclasses override
:meth:`sweep_level_batch` / :meth:`sweep_level_single` with a fused
JIT or device kernel and declare how far they are allowed to drift
via :attr:`tolerance`.
"""

from __future__ import annotations

import numpy as np


class ArrayBackend:
    """Base backend: NumPy semantics, overridable hot kernel.

    ``name`` identifies the backend in configs, cache keys and the
    ``REPRO_ARRAY_BACKEND`` environment variable.  ``tolerance`` is the
    backend's declared maximum relative deviation from the reference
    sweep: ``0.0`` claims bitwise identity (the NumPy backend's
    contract); non-zero values are honest accuracy declarations the
    conformance matrix enforces as an upper bound.  ``level`` arguments
    are :class:`~repro.core.sweep_plan.PlanLevel` records — everything
    about one logic level that could be precompiled (live-pair
    extraction, cell factorization, share weights, the scatter slot
    decomposition).
    """

    name: str = "base"
    tolerance: float | None = None

    def attenuate_batch(
        self, samples: np.ndarray, delays: np.ndarray
    ) -> np.ndarray:
        """Equation 1 over a population: ``(B, V, k)`` from ``(B, k)``
        samples and ``(B, V)`` delays.  Delegates to the shared NumPy
        kernel; a device backend overrides this to keep the tensor
        resident."""
        from repro.tech.glitch import propagate_width_grid_batch

        return propagate_width_grid_batch(samples, delays)

    def sweep_level_batch(
        self,
        ws_flat: np.ndarray,
        gather: np.ndarray,
        scatter: np.ndarray,
        m_grid: np.ndarray,
        level,
        low_c: np.ndarray,
        high_c: np.ndarray,
        frac_c: np.ndarray,
        omf_c: np.ndarray,
    ) -> None:
        """One sweep level for a ``(B, ...)`` population, in place on
        the raveled ``ws_flat`` view.

        ``gather`` is the ``(B, C, 1)`` flat address of anchor 0 per
        (lane, cell); ``scatter`` the ``(B, P, 1)`` flat address of
        anchor 1 per (lane, pair) target; ``m_grid`` the ``(1, 1, k)``
        inner-sample offsets; ``low_c`` / ``high_c`` / ``frac_c`` /
        ``omf_c`` are the ``(B, C, k)`` bracket indices, interpolation
        fraction and its complement pre-gathered onto this level's
        cells.
        """
        idx = gather + low_c
        t_lo = ws_flat[idx]
        np.add(gather, high_c, out=idx)
        t_hi = ws_flat[idx]
        t_lo *= omf_c
        t_hi *= frac_c
        t_lo += t_hi
        contribution = t_lo[:, level.pair_cell]
        contribution *= level.share_batch
        for pos in level.slots:
            ws_flat[scatter[:, pos] + m_grid] += contribution[:, pos]

    def sweep_level_single(
        self,
        ws_flat: np.ndarray,
        gather: np.ndarray,
        scatter: np.ndarray,
        m_grid: np.ndarray,
        level,
        low_c: np.ndarray,
        high_c: np.ndarray,
        frac_c: np.ndarray,
        omf_c: np.ndarray,
    ) -> None:
        """One sweep level for a single candidate (no batch axis):
        ``gather`` is ``(C, 1)``, ``scatter`` ``(P, 1)``, ``m_grid``
        ``(1, k)`` and the bracket tensors are ``(C, k)``."""
        idx = gather + low_c
        t_lo = ws_flat[idx]
        np.add(gather, high_c, out=idx)
        t_hi = ws_flat[idx]
        t_lo *= omf_c
        t_hi *= frac_c
        t_lo += t_hi
        contribution = t_lo[level.pair_cell]
        contribution *= level.share_single
        for pos in level.slots:
            ws_flat[scatter[pos] + m_grid] += contribution[pos]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, tolerance={self.tolerance})"
