"""Pluggable array backends for the fused Section-3.2 sweep.

The vectorized analysis core is NumPy end to end; this package puts a
*thin* shim under its one hottest kernel — the per-level gather /
interpolate / combine / scatter step the compiled
:class:`~repro.core.sweep_plan.SweepPlan` executes — so the
``(B, V, O, k+1)`` population tensors can ride a JIT (Numba) or a GPU
(CuPy) without the rest of the library knowing.

The contract is the repository's bitwise-differential discipline,
extended with an explicit accuracy axis:

* the ``"numpy"`` backend is the default and is **bitwise identical**
  to the unfused per-level reference loop (``tolerance == 0.0``,
  asserted by the conformance matrix in
  ``tests/test_conformance_matrix.py``);
* every other backend **must declare its tolerance explicitly** at
  registration (:func:`register_backend` rejects a missing one) — the
  conformance suite then verifies the backend against the reference to
  exactly that bound, so "fast but silently different" backends cannot
  exist.

Selection order (first hit wins):

1. an explicit ``backend=`` argument / ``AsertaConfig.array_backend``;
2. the ``REPRO_ARRAY_BACKEND`` environment variable;
3. ``"numpy"``.

Optional backends (Numba, CuPy) register themselves only when their
runtime imports; asking for an unavailable one raises with the list of
backends that *are* available, it never falls back silently.
"""

from __future__ import annotations

import os

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import AnalysisError

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"

_REGISTRY: dict[str, ArrayBackend] = {}


def register_backend(backend: ArrayBackend, *, replace: bool = False) -> None:
    """Register ``backend`` under its :attr:`~ArrayBackend.name`.

    Non-NumPy backends must carry an explicit, finite ``tolerance``
    (``0.0`` claims bitwise identity; anything looser must be declared
    honestly — the conformance matrix holds the backend to it).
    """
    name = backend.name
    if not name or not isinstance(name, str):
        raise AnalysisError("array backend needs a non-empty string name")
    if backend.tolerance is None or backend.tolerance < 0.0:
        raise AnalysisError(
            f"array backend {name!r} must declare a tolerance >= 0.0 "
            "explicitly at registration (0.0 == bitwise identical)"
        )
    if name in _REGISTRY and not replace:
        raise AnalysisError(f"array backend {name!r} is already registered")
    _REGISTRY[name] = backend


def available_backends() -> tuple[str, ...]:
    """Names of every registered (importable) backend."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> ArrayBackend:
    """The registered backend called ``name``; raises listing the
    available ones when it is missing (an optional runtime that did not
    import, or a typo) — never a silent fallback."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise AnalysisError(
            f"array backend {name!r} is not available; "
            f"registered backends: {sorted(_REGISTRY)}"
        )
    return backend


def resolve_backend(name: str | None = None) -> ArrayBackend:
    """Resolve the selection chain: explicit name, then
    ``REPRO_ARRAY_BACKEND``, then the NumPy default."""
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    return get_backend(name)


# The NumPy default always exists.
register_backend(NumpyBackend())

# Optional JIT backend: registers itself only when numba imports.
from repro.backend import numba_backend as _numba_backend  # noqa: E402

_numba_backend.register_if_available()

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
