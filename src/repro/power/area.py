"""Layout area model.

Area is accounted in relative units: transistor count times gate size
times normalized channel length (:func:`repro.tech.gate_electrical.area_units`),
summed over the circuit — the ``A`` term of the paper's Equation-5 cost.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.tech.electrical_view import CircuitElectrical


def circuit_area(circuit: Circuit, elec: CircuitElectrical) -> float:
    """Total relative layout area of all logic gates."""
    return sum(elec.area_units[gate.name] for gate in circuit.gates())
