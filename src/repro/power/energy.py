"""Circuit energy: dynamic (switching) plus static (leakage).

SERTOPT's cost (paper Equation 5) charges total energy
``E = E_dynamic + E_static`` per clock cycle:

* dynamic — each gate's output node dissipates ``C_node VDD^2`` per
  transition, weighted by its switching activity ``2 p (1 - p)``
  (temporal-independence toggle model, probabilities from the logic
  simulator);
* static — leakage power integrated over one clock period; this is the
  term that punishes low-Vth assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.netlist import Circuit
from repro.logicsim.probability import switching_activities
from repro.tech import constants as k
from repro.tech.electrical_view import CircuitElectrical


@dataclass(frozen=True)
class EnergyReport:
    """Per-cycle energy breakdown, fJ."""

    circuit_name: str
    dynamic_fj: float
    static_fj: float
    per_gate_dynamic_fj: dict[str, float]
    per_gate_static_fj: dict[str, float]

    @property
    def total_fj(self) -> float:
        return self.dynamic_fj + self.static_fj


def circuit_energy(
    circuit: Circuit,
    elec: CircuitElectrical,
    probabilities: Mapping[str, float],
) -> EnergyReport:
    """Energy per clock cycle under the given signal probabilities."""
    activities = switching_activities(probabilities)
    per_dynamic: dict[str, float] = {}
    per_static: dict[str, float] = {}
    for gate in circuit.gates():
        name = gate.name
        activity = activities.get(name, 0.0)
        per_dynamic[name] = activity * elec.dynamic_energy_weight_fj(name)
        per_static[name] = (
            elec.static_power_uw[name] * elec.clock_period_ps / 1000.0
        )
    return EnergyReport(
        circuit_name=circuit.name,
        dynamic_fj=sum(per_dynamic.values()),
        static_fj=sum(per_static.values()),
        per_gate_dynamic_fj=per_dynamic,
        per_gate_static_fj=per_static,
    )


def activity_row(indexed, probabilities: Mapping[str, float]) -> np.ndarray:
    """Dense per-row switching activities (zero on rows without one)."""
    return indexed.gather(switching_activities(probabilities))


def circuit_energy_batch(
    indexed,
    arrays: Mapping[str, np.ndarray],
    activities: np.ndarray,
    clock_period_ps: float = k.CLOCK_PERIOD_PS,
) -> np.ndarray:
    """Per-candidate total energy (dynamic + static), fJ, ``(B,)``.

    ``arrays`` carries the batched electrical annotation
    (``node_cap_ff``, ``vdd``, ``static_power_uw`` as ``(B, V)``);
    ``activities`` comes from :func:`activity_row`.  Totals match
    :func:`circuit_energy` to float-reassociation (the dense reductions
    sum in row order rather than dict order).
    """
    rows = indexed.gate_rows
    vdd = arrays["vdd"][:, rows]
    dynamic = (
        activities[rows][np.newaxis, :]
        * (arrays["node_cap_ff"][:, rows] * vdd * vdd)
    ).sum(axis=1)
    static = (
        arrays["static_power_uw"][:, rows] * clock_period_ps / 1000.0
    ).sum(axis=1)
    return dynamic + static
