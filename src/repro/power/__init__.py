"""Energy and area models for the SERTOPT cost function."""

from repro.power.energy import EnergyReport, circuit_energy
from repro.power.area import circuit_area

__all__ = ["EnergyReport", "circuit_energy", "circuit_area"]
