"""Warm vs. cold analysis through the compiled-artifact cache.

The expensive part of an ASERTA analysis is *structural*: the
10k-vector fault-site simulation behind ``P_ij``.  The engine layer
(:mod:`repro.engine`) makes that pass a content-addressed artifact:

* the first analyzer of a circuit runs the batched structural engine
  once (cold);
* every later analyzer of the same netlist content and protocol — in
  this process via the in-memory LRU, or in a *future* process via the
  on-disk store — is served from the cache and performs **zero**
  fault-simulation work;
* editing the netlist changes its content digest, so a stale artifact
  can never be served.

Run:  python examples/warm_cache_analysis.py
"""

import tempfile
import time

from repro import AnalysisEngine, AsertaAnalyzer, AsertaConfig, iscas85_circuit

CONFIG = AsertaConfig(n_vectors=2000, seed=1)


def timed_analyzer(circuit, engine) -> tuple[AsertaAnalyzer, float]:
    started = time.perf_counter()
    analyzer = AsertaAnalyzer(circuit, CONFIG, engine=engine)
    report = analyzer.analyze()
    elapsed = time.perf_counter() - started
    print(
        f"  U = {report.total:.0f}, build+analyze {elapsed * 1e3:7.1f} ms, "
        f"simulations so far: {engine.structural_sim_runs}"
    )
    return analyzer, elapsed


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        circuit = iscas85_circuit("c1908")

        print("cold: first analyzer simulates 2000 vectors x every site")
        engine = AnalysisEngine(cache_dir=cache_dir)
        __, cold_s = timed_analyzer(circuit, engine)

        print("warm (in-memory): same engine, fresh analyzer -> pure hits")
        __, warm_s = timed_analyzer(iscas85_circuit("c1908"), engine)

        print("warm (on disk): brand-new engine, same cache directory")
        fresh_engine = AnalysisEngine(cache_dir=cache_dir)
        __, disk_s = timed_analyzer(iscas85_circuit("c1908"), fresh_engine)
        assert fresh_engine.structural_sim_runs == 0

        print("\nedited netlist: content digest changes -> honest cold run")
        from repro import GateType

        edited = iscas85_circuit("c1908")
        edited.add_gate("monitor", GateType.NOT, [edited.outputs[0]])
        edited.mark_output("monitor")
        timed_analyzer(edited, fresh_engine)
        assert fresh_engine.structural_sim_runs == 1

        print(
            f"\ncold {cold_s * 1e3:.0f} ms -> warm {warm_s * 1e3:.0f} ms "
            f"(memory) / {disk_s * 1e3:.0f} ms (disk)"
        )
        print(f"cache stats: {engine.stats()}")


if __name__ == "__main__":
    main()
