"""Design-space exploration: trade unreliability against energy and area.

Sweeps the Equation-5 cost weights to trace the frontier a designer
actually cares about: how much soft-error tolerance can be bought for
how much energy/area, at a fixed timing constraint.  Also demonstrates
the sizing-only library (the paper's fallback when multi-VDD/multi-Vth
design is infeasible).

Run:  python examples/design_space_exploration.py
"""

from repro import (
    AsertaConfig,
    CellLibrary,
    CostWeights,
    Sertopt,
    SertoptConfig,
    iscas85_circuit,
)
from repro.analysis.reports import format_percent, format_ratio, format_table


def explore(circuit_name: str = "c432") -> None:
    circuit = iscas85_circuit(circuit_name)
    sweeps = [
        ("frugal", CostWeights(energy=0.4, area=0.2)),
        ("balanced", CostWeights()),
        ("max hardening", CostWeights(energy=0.02, area=0.01)),
    ]
    rows = []
    for label, weights in sweeps:
        config = SertoptConfig(
            weights=weights,
            max_evaluations=60,
            aserta=AsertaConfig(n_vectors=1500, seed=0),
        )
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        result = Sertopt(circuit, library=library, config=config).optimize()
        rows.append(
            (
                label,
                format_percent(result.unreliability_reduction),
                format_ratio(result.energy_ratio),
                format_ratio(result.area_ratio),
                format_ratio(result.delay_ratio),
            )
        )

    # The sizing-only fallback: no VDD/Vth freedom at all.
    config = SertoptConfig(
        max_evaluations=60, aserta=AsertaConfig(n_vectors=1500, seed=0)
    )
    result = Sertopt(
        circuit, library=CellLibrary.sizing_only(), config=config
    ).optimize()
    rows.append(
        (
            "sizing only",
            format_percent(result.unreliability_reduction),
            format_ratio(result.energy_ratio),
            format_ratio(result.area_ratio),
            format_ratio(result.delay_ratio),
        )
    )

    print(
        format_table(
            ("strategy", "dU", "energy", "area", "delay"),
            rows,
            title=f"soft-error hardening frontier for {circuit_name}",
        )
    )


if __name__ == "__main__":
    explore()
