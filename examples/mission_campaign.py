"""Mission campaign: one grid, three deployment environments.

Runs a batch campaign over two circuits, three strike energies, three
environments (sea level, avionics, low-Earth orbit) and two design
variants (nominal vs. uniformly up-sized "hardened"), persisting every
scenario to a JSONL store.  A second run against the same store computes
nothing — the resume path — which is how large sweeps are grown
incrementally.

Run:  python examples/mission_campaign.py
"""

import tempfile
from pathlib import Path

from repro.campaign import (
    AVIONICS,
    LEO_SPACE,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    format_runtime_accounting,
    summarize,
)
from repro.tech.library import CellParams, ParameterAssignment


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        circuits=("c17", "c432"),
        charges_fc=(4.0, 8.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS, LEO_SPACE),
        assignments={
            "nominal": ParameterAssignment(),
            "hardened": ParameterAssignment(CellParams(size=2.0)),
        },
        n_vectors=1000,
        seed=1,
    )


def main() -> None:
    store_path = Path(tempfile.gettempdir()) / "repro_mission_campaign.jsonl"
    spec = build_spec()
    print(f"campaign: {spec.size()} scenarios, store: {store_path}\n")

    store = ResultStore(store_path)
    outcome = CampaignRunner(spec, store=store).run()
    summary = summarize(outcome)

    print(summary.format_fit_table(title="mission FIT table"))
    print()
    print(summary.format_best_table())
    print()
    print(format_runtime_accounting(outcome))

    # Re-running the same campaign against the same store is free:
    resumed = CampaignRunner(build_spec(), store=ResultStore(store_path)).run()
    print(
        f"\nresume: {resumed.computed} computed, {resumed.skipped} served "
        f"from the store in {resumed.wall_s:.3f} s"
    )


if __name__ == "__main__":
    main()
