"""Quickstart: estimate a circuit's soft-error unreliability with ASERTA.

Loads the c432-like benchmark, runs the full analysis pipeline
(sensitization simulation, glitch-generation tables, the one-pass
electrical-masking propagation) and prints the circuit's unreliability
together with its ten "softest" gates — the ones a designer would look
at first.

Run:  python examples/quickstart.py
"""

from repro import AsertaAnalyzer, AsertaConfig, iscas85_circuit
from repro.analysis.reports import format_table


def main() -> None:
    circuit = iscas85_circuit("c432")
    print(f"circuit: {circuit!r}")

    # 2000 vectors keeps this snappy; the paper's protocol uses 10 000.
    analyzer = AsertaAnalyzer(circuit, AsertaConfig(n_vectors=2000, seed=1))
    report = analyzer.analyze()

    print(f"total unreliability U = {report.total:.0f} "
          f"(size-weighted ps of expected latched glitch width)")
    print(f"analysis runtime: {report.runtime_s * 1000:.0f} ms\n")

    rows = [
        (entry.gate, entry.generated_width_ps, entry.size, entry.contribution)
        for entry in report.unreliability.softest_gates(10)
    ]
    print(
        format_table(
            ("gate", "generated width (ps)", "size Z_i", "U_i"),
            rows,
            title="ten softest gates (Equation 3 contributions)",
        )
    )


if __name__ == "__main__":
    main()
