"""Validate ASERTA against the transient reference simulator (Fig 3).

Reproduces the paper's accuracy argument: per-gate unreliability from
the fast probabilistic analyzer is plotted (textually) against the slow
vector-accurate reference, for nodes close to the primary outputs, and
the Pearson correlation is reported (paper: 0.96 on c432, 0.9 suite
average).

Run:  python examples/validate_against_reference.py [circuit]
"""

import sys

import numpy as np

from repro import AsertaAnalyzer, AsertaConfig, iscas85_circuit
from repro.analysis.correlation import correlate_reports
from repro.spice import transient_unreliability


def bar(value: float, peak: float, width: int = 40) -> str:
    """Tiny text bar for a value relative to the series maximum."""
    if peak <= 0.0:
        return ""
    return "#" * max(1, int(width * value / peak))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c432"
    circuit = iscas85_circuit(name)

    analyzer = AsertaAnalyzer(circuit, AsertaConfig(n_vectors=3000, seed=7))
    aserta = analyzer.analyze().unreliability
    reference = transient_unreliability(circuit, n_vectors=30, seed=7)

    result = correlate_reports(
        circuit, aserta, reference, max_levels_from_output=5
    )
    peak = float(np.maximum(result.first, result.second).max())
    print(f"{name}: per-gate U_i, ASERTA (A) vs reference (R), "
          f"nodes <= 5 levels from POs\n")
    for index in np.argsort(result.second)[::-1][:15]:
        gate = result.gate_names[index]
        print(f"  {gate:>12}  A {bar(result.first[index], peak):<40}")
        print(f"  {'':>12}  R {bar(result.second[index], peak):<40}")
    print(f"\ncorrelation over {result.n_gates} gates: "
          f"{result.correlation:.3f}   (paper: 0.96 on c432)")


if __name__ == "__main__":
    main()
