"""Harden a combinational circuit with SERTOPT (the paper's Table-1 flow).

Starting from a speed-optimized baseline at the nominal 70 nm operating
point, SERTOPT re-assigns gate sizes, channel lengths, supply voltages
and threshold voltages inside the timing-neutral delay subspace, and
reports the same columns as the paper's Table 1.

Run:  python examples/harden_circuit.py [circuit] [evaluations]
e.g.  python examples/harden_circuit.py c432 120
"""

import sys

from repro import (
    AsertaConfig,
    CellLibrary,
    Sertopt,
    SertoptConfig,
    iscas85_circuit,
)
from repro.analysis.reports import format_percent, format_ratio, format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c432"
    evaluations = int(sys.argv[2]) if len(sys.argv) > 2 else 80

    circuit = iscas85_circuit(name)
    library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
    config = SertoptConfig(
        max_evaluations=evaluations,
        aserta=AsertaConfig(n_vectors=2000, seed=0),
    )

    print(f"optimizing {circuit!r} with {evaluations} cost evaluations...")
    result = Sertopt(circuit, library=library, config=config).optimize()

    print(f"delay subspace: {result.delay_space_info}")
    print(
        format_table(
            ("metric", "value"),
            [
                ("unreliability decrease", format_percent(result.unreliability_reduction)),
                ("area ratio", format_ratio(result.area_ratio)),
                ("energy ratio", format_ratio(result.energy_ratio)),
                ("delay ratio", format_ratio(result.delay_ratio)),
                ("VDDs used", ", ".join(map(str, result.vdds_used()))),
                ("Vths used", ", ".join(map(str, result.vths_used()))),
                ("optimizer evaluations", result.optimizer_result.evaluations),
                ("runtime (s)", f"{result.runtime_s:.1f}"),
            ],
            title=f"SERTOPT result for {name}",
        )
    )

    changed = [
        gate.name
        for gate in circuit.gates()
        if result.optimized_assignment[gate.name]
        != result.baseline_assignment[gate.name]
    ]
    print(f"\n{len(changed)} of {circuit.gate_count} gates re-assigned")


if __name__ == "__main__":
    main()
