"""Benchmark configuration.

Each benchmark regenerates one paper artifact (figure or table) and
asserts its qualitative shape, while pytest-benchmark captures the
runtime.  ``REPRO_BENCH_SCALE`` selects the protocol size:

    REPRO_BENCH_SCALE=fast    (default; CI-friendly)
    REPRO_BENCH_SCALE=medium
    REPRO_BENCH_SCALE=paper   (the paper's protocol: 10 000 vectors,
                               50 reference vectors, full circuit list)
"""

import os

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.named(os.environ.get("REPRO_BENCH_SCALE", "fast"))
