"""TAB1 benchmark — the paper's Table 1 (SERTOPT optimization results).

Regenerates every column: VDD/Vth menus used, area / energy / delay
ratios, and the unreliability decrease by ASERTA and by ASERTA/the
transient reference on 50 shared random vectors.  Absolute numbers live
in EXPERIMENTS.md; the assertions here pin the paper's qualitative
shape:

* most circuits improve by a double-digit percentage,
* the error-correcting c499-like improves the least (paper: 0 %),
* delay ratios stay near 1 (the timing constraint), and
* hardening is paid for in area/energy (ratios >= ~1).
"""

from repro.analysis.reports import format_percent, format_ratio, format_table
from repro.experiments.table1_optimization import PAPER_RESULTS, run_table1


def test_table1_optimization(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_table1(scale), iterations=1, rounds=1
    )

    rows = []
    for row in result.rows:
        paper = PAPER_RESULTS.get(row.circuit)
        rows.append(
            (
                row.circuit,
                ",".join(map(str, row.vdds_used)),
                ",".join(map(str, row.vths_used)),
                format_ratio(row.area_ratio),
                format_ratio(row.energy_ratio),
                format_ratio(row.delay_ratio),
                format_percent(row.du_aserta),
                "-" if row.du_aserta_vectors is None
                else format_percent(row.du_aserta_vectors),
                "-" if row.du_reference_vectors is None
                else format_percent(row.du_reference_vectors),
                "-" if paper is None else format_percent(paper[3]),
            )
        )
    print("\n" + format_table(
        ("Circuit", "VDDs", "Vths", "Area", "Energy", "Delay",
         "dU ASERTA", "dU A@vec", "dU ref@vec", "paper dU"),
        rows,
        title="TAB1 — SERTOPT optimization results",
    ))

    by_name = {row.circuit: row for row in result.rows}
    for row in result.rows:
        assert row.delay_ratio < 1.45          # timing constraint regime
        assert row.du_aserta >= -0.05          # never meaningfully worse
        if row.du_aserta > 0.02:
            assert row.area_ratio >= 0.95      # hardening costs area
    if "c432" in by_name and "c499" in by_name:
        # The paper's headline contrast: c432 improves strongly, the
        # error-correcting c499 barely at all.
        assert by_name["c432"].du_aserta > 0.10
        assert by_name["c499"].du_aserta < by_name["c432"].du_aserta
