"""FIG1 benchmark — inverter glitch-generation sweeps (paper Fig 1)."""

from repro.experiments.fig1_glitch_generation import run_fig1


def test_fig1_glitch_generation(benchmark):
    result = benchmark(run_fig1)
    # Paper Fig 1 shape: every slowing knob widens the generated glitch.
    assert result.series["size"].is_decreasing()
    assert result.series["length_nm"].is_increasing()
    assert result.series["vdd"].is_decreasing()
    assert result.series["vth"].is_increasing()

    print("\nFIG1 generated glitch width (ps), 16 fC strike:")
    for knob, sweep in result.series.items():
        pairs = ", ".join(
            f"{v:g}:{w:.0f}" for v, w in zip(sweep.values, sweep.widths_ps)
        )
        print(f"  {knob:<10} {pairs}")
