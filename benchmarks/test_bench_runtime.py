"""RT benchmark — runtime scaling (paper Section 5 remarks).

Paper (MATLAB): ASERTA 15 s on c432, 200 s on c7552; SERTOPT 20 min and
27 h.  The reproducible shape: ASERTA grows roughly linearly with gate
count, and a single SERTOPT cost evaluation costs about one ASERTA run
(so a few-hundred-evaluation optimization is orders of magnitude more
expensive than one analysis).
"""

from repro.experiments.runtime_scaling import run_runtime_scaling


def test_runtime_scaling(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_runtime_scaling(scale), iterations=1, rounds=1
    )
    print("\nRT — runtime scaling:")
    for row in result.rows:
        print(
            f"  {row.circuit:<6} gates={row.gates:<5} "
            f"P_ij={row.analyzer_init_s:6.2f}s "
            f"ASERTA={row.aserta_analyze_s:6.2f}s "
            f"SERTOPT/eval={row.sertopt_eval_s:6.2f}s"
        )
    rows = sorted(result.rows, key=lambda row: row.gates)
    assert all(row.aserta_analyze_s > 0.0 for row in rows)
    if len(rows) >= 2 and rows[-1].gates > 2 * rows[0].gates:
        # More gates => more analysis work (the near-linear growth);
        # only asserted across a real size gap, where timing noise
        # cannot flip the ordering.
        assert rows[-1].aserta_analyze_s > rows[0].aserta_analyze_s
