"""FIG2 benchmark — inverter glitch-propagation sweeps (paper Fig 2)."""

from repro.experiments.fig2_glitch_propagation import run_fig2


def test_fig2_glitch_propagation(benchmark):
    result = benchmark(run_fig2)
    # Paper Fig 2 shape: every slowing knob narrows the propagated glitch.
    assert result.series["size"].is_increasing()
    assert result.series["length_nm"].is_decreasing()
    assert result.series["vdd"].is_increasing()
    assert result.series["vth"].is_decreasing()

    print(f"\nFIG2 propagated width (ps) for a {result.input_width_ps} ps "
          "input glitch:")
    for knob, sweep in result.series.items():
        pairs = ", ".join(
            f"{v:g}:{w:.0f}" for v, w in zip(sweep.values, sweep.widths_ps)
        )
        print(f"  {knob:<10} {pairs}")
