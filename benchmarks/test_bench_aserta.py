"""ASERTA core benchmarks — analysis hot paths, gated against floors.

Two gated measurements on c432 at the paper-default configuration,
both written into ``BENCH_aserta.json``:

* ``analyze`` — dict-based reference engine vs. the vectorized array
  engine through the same analyzer (one structural pass, identical
  inputs).  Floor: the array path at least 3x faster than the seed
  implementation.
* ``sweep`` — the fused, plan-compiled Section-3.2 population sweep
  (:func:`electrical_masking_many` with a precompiled
  :class:`~repro.core.sweep_plan.SweepPlan`) vs. the unfused per-level
  loop on a 16-lane mixed-assignment population.  Floor: at least 2x,
  asserted only after the two paths are verified *bitwise identical*
  on the exact tensors being timed.

Both gates use the interleaved paired-median protocol (see
``test_bench_telemetry._paired_overhead`` for the full rationale):
timing each side in its own best-of pass lets slow drift — thermal
throttle, host contention under a shared VM — land entirely on
whichever side ran second, which made single-pass speedups jitter by
tens of percent.  Back-to-back single-call pairs, alternating which
side goes first, interleave the two samples at call granularity, and
the per-side *medians* discard preempted outliers; GC is held off so a
collection cannot land inside one call.  A gate miss triggers one
re-measurement before declaring a regression.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from conformance import mixed_assignments
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer
from repro.core.electrical_masking import (
    default_sample_widths_batch,
    electrical_masking_many,
)
from repro.tech.electrical_view import (
    batched_electrical_arrays,
    stack_cell_param_arrays,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_aserta.json"
#: Acceptance floor: vectorized analyze() vs the seed implementation.
MIN_SPEEDUP = 3.0
#: Acceptance floor: fused plan-compiled sweep vs the unfused loop.
MIN_SWEEP_SPEEDUP = 2.0
#: Lanes in the sweep-gate population (the campaign batch sweet spot).
SWEEP_LANES = 16


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _paired_times(before_fn, after_fn, pairs: int) -> tuple[float, float]:
    """``(before_s, after_s)`` medians from interleaved paired sampling.

    ``pairs`` back-to-back single-call pairs, alternating which side of
    the pair goes first so "second call runs warmer" order bias splits
    evenly instead of accumulating on one side; GC is held off for the
    bounded duration so a collection cannot skew one sample.
    """
    before_times: list[float] = []
    after_times: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for index in range(pairs):
            first, second = (
                (before_fn, after_fn) if index % 2 == 0
                else (after_fn, before_fn)
            )
            started = time.perf_counter()
            first()
            middle = time.perf_counter()
            second()
            ended = time.perf_counter()
            if index % 2 == 0:
                before_times.append(middle - started)
                after_times.append(ended - middle)
            else:
                after_times.append(middle - started)
                before_times.append(ended - middle)
    finally:
        if gc_was_enabled:
            gc.enable()
    return _median(before_times), _median(after_times)


def _gated_speedup(
    before_fn, after_fn, pairs: int, floor: float
) -> tuple[float, float, float]:
    """``(speedup, before_s, after_s)``; one re-measurement on a gate
    miss (shared CI runners can jitter a whole pass), keeping whichever
    round measured the higher ratio."""
    before_s, after_s = _paired_times(before_fn, after_fn, pairs)
    if before_s / after_s < floor:
        retry_before, retry_after = _paired_times(before_fn, after_fn, pairs)
        if retry_before / retry_after > before_s / after_s:
            before_s, after_s = retry_before, retry_after
    return before_s / after_s, before_s, after_s


def _merge_bench(updates: dict) -> None:
    """Read-merge-write ``BENCH_aserta.json`` — two tests share the
    file, and either may run (or rerun) first."""
    payload: dict = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
            if isinstance(existing, dict):
                payload = existing
        except (ValueError, OSError):
            payload = {}
    payload.update(updates)
    payload["bench"] = "aserta_analyze"
    payload["unix_time"] = time.time()
    payload["scale"] = os.environ.get("REPRO_BENCH_SCALE", "fast")
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_aserta_vectorization_speedup(benchmark):
    circuit = iscas85_circuit("c432")
    analyzer = AsertaAnalyzer(circuit)  # paper defaults: 10k vectors, 16 fC

    # Warm every lazy cache (LUTs, stacked tensors) for both engines so
    # the measurement compares steady-state analysis cost only.
    reference_report = analyzer.analyze(engine="reference")
    array_report = analyzer.analyze(engine="array")
    assert array_report.total > 0.0
    relative = abs(array_report.total - reference_report.total) / (
        reference_report.total
    )
    assert relative <= 1e-9

    speedup, before_s, after_s = _gated_speedup(
        lambda: analyzer.analyze(engine="reference"),
        lambda: analyzer.analyze(engine="array"),
        pairs=15,
        floor=MIN_SPEEDUP,
    )
    benchmark.pedantic(
        lambda: analyzer.analyze(engine="array"), iterations=5, rounds=3
    )

    _merge_bench(
        {
            "circuit": "c432",
            "config": {
                "n_vectors": analyzer.config.n_vectors,
                "n_sample_widths": analyzer.config.n_sample_widths,
                "charge_fc": analyzer.config.charge_fc,
            },
            "gates": circuit.gate_count,
            "before": {"engine": "reference", "analyze_s": before_s},
            "after": {"engine": "array", "analyze_s": after_s},
            "speedup": speedup,
            "after_analyses_per_s": 1.0 / after_s if after_s > 0 else None,
            "unreliability_total": array_report.total,
            "relative_error_vs_reference": relative,
        }
    )

    print(
        f"\nASERTA c432 analyze: reference {before_s * 1e3:.1f} ms, "
        f"array {after_s * 1e3:.1f} ms -> {speedup:.1f}x "
        f"-> {BENCH_JSON.name}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized analyze() only {speedup:.2f}x faster than the "
        f"reference (acceptance floor {MIN_SPEEDUP}x)"
    )


def test_fused_sweep_speedup(benchmark):
    circuit = iscas85_circuit("c432")
    analyzer = AsertaAnalyzer(circuit)
    idx = analyzer.indexed
    assignments = mixed_assignments(circuit, seed=2005, count=SWEEP_LANES)
    params = stack_cell_param_arrays(idx, assignments)
    arrays = batched_electrical_arrays(
        circuit, analyzer.tables, params, charge_fc=analyzer.config.charge_fc
    )
    delays = arrays["delay_ps"]
    generated = arrays["generated_width_ps"]
    samples = default_sample_widths_batch(
        idx, delays, generated, analyzer.config.n_sample_widths
    )
    plan = analyzer.sweep_plan
    backend = analyzer.backend

    def fused():
        return electrical_masking_many(
            analyzer.structure, delays, generated, samples,
            backend=backend, plan=plan,
        )

    def unfused():
        return electrical_masking_many(
            analyzer.structure, delays, generated, samples,
            backend=backend, plan=plan, fused=False,
        )

    # The gate only means something if the two paths compute the same
    # thing: the NumPy fused sweep's contract is *bitwise* identity on
    # the exact tensors being timed (warms both paths too).
    np.testing.assert_array_equal(fused(), unfused())

    speedup, unfused_s, fused_s = _gated_speedup(
        unfused, fused, pairs=61, floor=MIN_SWEEP_SPEEDUP
    )
    benchmark.pedantic(fused, iterations=5, rounds=3)

    _merge_bench(
        {
            "sweep": {
                "circuit": "c432",
                "lanes": SWEEP_LANES,
                "backend": backend.name,
                "bitwise_identical": True,
                "unfused_s": unfused_s,
                "fused_s": fused_s,
                "speedup": speedup,
                "fused_sweeps_per_s": 1.0 / fused_s if fused_s > 0 else None,
            }
        }
    )

    print(
        f"\nASERTA c432 {SWEEP_LANES}-lane sweep: unfused "
        f"{unfused_s * 1e3:.2f} ms, fused {fused_s * 1e3:.2f} ms -> "
        f"{speedup:.2f}x -> {BENCH_JSON.name}"
    )
    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"fused sweep only {speedup:.2f}x faster than the unfused loop "
        f"(acceptance floor {MIN_SWEEP_SPEEDUP}x)"
    )
