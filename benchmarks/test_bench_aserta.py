"""ASERTA core benchmark — dict-based reference vs. vectorized array path.

Runs ``AsertaAnalyzer.analyze()`` on c432 at the paper-default
configuration through both engines of the same analyzer (one structural
pass, identical inputs) and emits ``BENCH_aserta.json`` with the
before/after timings.  The acceptance bar for the vectorization PR —
the array path at least 3x faster than the seed implementation — is
asserted here, so any future regression of the hot path fails CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_aserta.json"
#: The acceptance floor: vectorized analyze() vs the seed implementation.
MIN_SPEEDUP = 3.0


def _time_engine(analyzer, engine: str, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        analyzer.analyze(engine=engine)
        best = min(best, time.perf_counter() - started)
    return best


def test_aserta_vectorization_speedup(benchmark):
    circuit = iscas85_circuit("c432")
    analyzer = AsertaAnalyzer(circuit)  # paper defaults: 10k vectors, 16 fC

    # Warm every lazy cache (LUTs, stacked tensors) for both engines so
    # the measurement compares steady-state analysis cost only.
    reference_report = analyzer.analyze(engine="reference")
    array_report = analyzer.analyze(engine="array")
    assert array_report.total > 0.0
    relative = abs(array_report.total - reference_report.total) / (
        reference_report.total
    )
    assert relative <= 1e-9

    before_s = _time_engine(analyzer, "reference", repeats=5)
    after_s = _time_engine(analyzer, "array", repeats=15)
    if before_s / after_s < MIN_SPEEDUP:
        # Shared CI runners can jitter a single measurement; re-measure
        # once (best-of across both rounds) before declaring a
        # regression.  Locally the observed ratio is ~11x, so a clean
        # hot path clears the 3x floor with wide margin.
        before_s = min(before_s, _time_engine(analyzer, "reference", repeats=5))
        after_s = min(after_s, _time_engine(analyzer, "array", repeats=15))
    benchmark.pedantic(
        lambda: analyzer.analyze(engine="array"), iterations=5, rounds=3
    )
    speedup = before_s / after_s

    payload = {
        "bench": "aserta_analyze",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "circuit": "c432",
        "config": {
            "n_vectors": analyzer.config.n_vectors,
            "n_sample_widths": analyzer.config.n_sample_widths,
            "charge_fc": analyzer.config.charge_fc,
        },
        "gates": circuit.gate_count,
        "before": {"engine": "reference", "analyze_s": before_s},
        "after": {"engine": "array", "analyze_s": after_s},
        "speedup": speedup,
        "after_analyses_per_s": 1.0 / after_s if after_s > 0 else None,
        "unreliability_total": array_report.total,
        "relative_error_vs_reference": relative,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nASERTA c432 analyze: reference {before_s * 1e3:.1f} ms, "
        f"array {after_s * 1e3:.1f} ms -> {speedup:.1f}x "
        f"-> {BENCH_JSON.name}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized analyze() only {speedup:.2f}x faster than the "
        f"reference (acceptance floor {MIN_SPEEDUP}x)"
    )
