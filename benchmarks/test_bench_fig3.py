"""FIG3 benchmark — ASERTA-vs-reference per-node correlation (paper Fig 3).

Paper numbers: correlation 0.96 on c432 (nodes <= 5 levels from the
POs), average 0.9 over the ISCAS'85 suite.
"""

from repro.experiments.fig3_c432_correlation import run_fig3


def test_fig3_correlation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig3(scale), iterations=1, rounds=1
    )
    print(f"\nFIG3 per-node U_i correlation "
          f"({result.primary.n_gates} gates on {result.primary.circuit_name}):")
    print(f"  {result.primary.circuit_name}: "
          f"{result.primary.correlation:.3f}   (paper: 0.96)")
    for name, corr in result.suite.items():
        print(f"  {name}: {corr:.3f}")
    print(f"  suite average: {result.suite_average:.3f}   (paper: 0.9)")

    # Shape assertion: strong positive correlation, as in the paper.
    assert result.primary.correlation > 0.7
    assert result.suite_average > 0.5
