"""SERTOPT benchmark — serial, per-gate-batched (PR 4) and level-batched.

Three generations of the Section-4 inner loop run on c432 at the
paper-default :class:`SertoptConfig` (150 cost evaluations, 10 000
sensitization vectors, the coordinate driver):

* the serial one-candidate-at-a-time objective
  (``batched_evaluation=False``);
* the PR-4 population pipeline with the per-gate matcher
  (``level_batched_matching=False`` — one ``(lanes, cells)`` score
  block per reverse-topological gate);
* the current default: the level-batched matcher (one
  ``(lanes, gates, cells)`` block per reverse logic level).

Gates:

* **Matcher kernel ≥ 2×** — ``match_batch`` on paper-default candidate
  populations (full pass and the delta-aware dirty-wave pass), per-gate
  vs level-batched, with *bitwise identical* chosen cells.  This is the
  PR-5 tentpole floor over the PR-4 matcher.
* **End-to-end ≥ 4×** — serial objective vs the level-batched default
  (raised from the PR-4 floor of 3×), per-evaluation costs within 1e-9
  relative.
* The two batched flows must visit a **bitwise identical** coordinate
  trajectory (equal ``x``, equal evaluation counts, bit-equal history),
  and the level-batched flow must not regress against the per-gate one
  (≥ 1.15× end to end; the measured ratio is recorded in the JSON).

Emits ``BENCH_sertopt.json`` for the CI benchmark artifact upload and
``docs/performance.md`` regeneration.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.circuit.iscas85 import iscas85_circuit
from repro.core.baseline import size_for_speed
from repro.core.matching import MatchingEngine
from repro.core.sertopt import Sertopt, SertoptConfig
from repro.engine import AnalysisEngine
from repro.experiments.table1_optimization import PAPER_MENUS
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellLibrary

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sertopt.json"
#: Tentpole floor: level-batched vs per-gate ``match_batch`` on
#: paper-default populations (full + delta pass combined).
MIN_MATCH_SPEEDUP = 2.0
#: End-to-end floor: serial objective vs level-batched optimize().
MIN_E2E_SPEEDUP = 4.0
#: Regression floor: the level-batched default must beat the PR-4
#: per-gate-batched flow end to end.
MIN_LEVEL_VS_GATE = 1.15
CIRCUIT = "c432"
#: Lanes of the matcher microbenchmark — the round-0 population of the
#: default coordinate probe chunk (4 dimensions × ± probes).
MATCH_LANES = 8


def _optimize(circuit, library, engine, batched: bool, level: bool):
    config = SertoptConfig(
        batched_evaluation=batched, level_batched_matching=level
    )
    sertopt = Sertopt(circuit, library=library, config=config, engine=engine)
    started = time.perf_counter()
    result = sertopt.optimize()
    return result, time.perf_counter() - started


def _probe_population(circuit, base_targets, seed=0, lanes=MATCH_LANES):
    """Coordinate-probe-shaped delay targets: each lane perturbs a
    handful of gates multiplicatively, like a sparse nullspace move."""
    idx = circuit.indexed()
    rng = np.random.default_rng(seed)
    targets = np.tile(base_targets, (lanes, 1))
    for lane in range(lanes):
        picks = rng.choice(idx.gate_rows, size=6, replace=False)
        targets[lane, picks] *= rng.uniform(0.5, 2.0, picks.size)
    return targets


def _time_matchers(setups, targets, ramps, baseline, changed,
                   repeats=20, rounds=4):
    """Best-of-``rounds`` mean wall of the full and delta match passes,
    per matcher.

    The matchers being compared are timed in *interleaved* rounds with
    alternating order (even round count, so neither side systematically
    runs first): timing each matcher in its own block lets slow drift —
    host contention on a shared runner — land between the blocks and
    skew the speedup ratio by more than the gate's margin, which made
    the ``MIN_MATCH_SPEEDUP`` gate flake at ~1.96x on readings whose
    interleaved re-measure sits at 2.1x.

    Returns ``{key: (full_s, delta_s, full_state, delta_state)}``.
    """
    best = {
        key: [float("inf"), float("inf"), None, None] for key in setups
    }
    order = list(setups)
    for round_index in range(rounds):
        if round_index % 2:
            order = order[::-1]
        for key in order:
            engine, reference = setups[key]
            slot = best[key]
            t0 = time.perf_counter()
            for __r in range(repeats):
                state_full = engine.match_batch(
                    targets, ramps, anchor=baseline
                )
            slot[0] = min(slot[0], (time.perf_counter() - t0) / repeats)
            slot[2] = state_full
            t0 = time.perf_counter()
            for __r in range(repeats):
                state_delta = engine.match_batch(
                    targets, ramps, anchor=baseline,
                    reference=reference, changed=changed,
                )
            slot[1] = min(slot[1], (time.perf_counter() - t0) / repeats)
            slot[3] = state_delta
    return {key: tuple(slot) for key, slot in best.items()}


def test_sertopt_level_batched_speedup(benchmark):
    circuit = iscas85_circuit(CIRCUIT)
    vdds, vths = PAPER_MENUS[CIRCUIT]
    library = CellLibrary.paper_library(vdds=vdds, vths=vths)

    # ------------------------------------------------------------------
    # Matcher kernel: per-gate (PR 4) vs level-batched, bitwise checked.
    # ------------------------------------------------------------------
    baseline = size_for_speed(circuit, library)
    elec = CircuitElectrical(circuit, baseline, use_tables=False)
    idx = circuit.indexed()
    base_targets = idx.gather(elec.delay_ps)
    ramps = dict(elec.input_ramp_ps)
    targets = _probe_population(circuit, base_targets)
    changed = targets != base_targets[np.newaxis, :]

    matcher_setup = {}
    for level in (False, True):
        engine = MatchingEngine(circuit, library, level_batched=level)
        reference = engine.match_batch(
            base_targets[np.newaxis, :], ramps, anchor=baseline
        )
        # Warm the engine's plans before timing.
        engine.match_batch(
            targets, ramps, anchor=baseline,
            reference=reference, changed=changed,
        )
        matcher_setup[level] = (engine, reference)
    matcher = _time_matchers(
        matcher_setup, targets, ramps, baseline, changed
    )
    for slot in (2, 3):  # full-pass and delta-pass states
        np.testing.assert_array_equal(
            matcher[False][slot].cell_idx, matcher[True][slot].cell_idx
        )
        np.testing.assert_array_equal(
            matcher[False][slot].input_cap, matcher[True][slot].input_cap
        )

    def _match_speedup() -> float:
        return (matcher[False][0] + matcher[False][1]) / (
            matcher[True][0] + matcher[True][1]
        )

    match_speedup = _match_speedup()
    if match_speedup < MIN_MATCH_SPEEDUP:
        # Shared runners jitter; re-time once (best of the two passes
        # per side) before declaring a regression — the same wall-clock
        # tolerance the end-to-end gate below applies.  Locally the
        # ratio sits around 2.1-2.2x.
        retried = _time_matchers(
            matcher_setup, targets, ramps, baseline, changed
        )
        for level, (full_s, delta_s, __f, __d) in retried.items():
            first = matcher[level]
            matcher[level] = (
                min(first[0], full_s), min(first[1], delta_s),
                first[2], first[3],
            )
        match_speedup = _match_speedup()

    # ------------------------------------------------------------------
    # End-to-end optimize(): serial vs PR-4 batched vs level-batched,
    # one shared analysis engine so the structural pass is paid once.
    # ------------------------------------------------------------------
    engine = AnalysisEngine()
    _optimize(circuit, library, engine, batched=True, level=True)  # warm

    serial_result, serial_s = _optimize(
        circuit, library, engine, batched=False, level=True
    )
    gate_result, gate_s = _optimize(
        circuit, library, engine, batched=True, level=False
    )
    level_result, level_s = _optimize(
        circuit, library, engine, batched=True, level=True
    )
    if serial_s / level_s < MIN_E2E_SPEEDUP or gate_s / level_s < MIN_LEVEL_VS_GATE:
        # Shared CI runners jitter; best-of-two before declaring a
        # regression.  Locally serial/level is ~6x and gate/level ~1.4x.
        __, serial_s2 = _optimize(circuit, library, engine, False, True)
        __, gate_s2 = _optimize(circuit, library, engine, True, False)
        __, level_s2 = _optimize(circuit, library, engine, True, True)
        serial_s = min(serial_s, serial_s2)
        gate_s = min(gate_s, gate_s2)
        level_s = min(level_s, level_s2)
    e2e_speedup = serial_s / level_s
    level_vs_gate = gate_s / level_s
    benchmark.pedantic(
        lambda: _optimize(circuit, library, engine, batched=True, level=True),
        iterations=1,
        rounds=1,
    )

    # The deterministic coordinate search must visit identical points on
    # an identical budget.  Between the two batched flows the agreement
    # is *bitwise* (the matchers choose identical cells and the rest of
    # the pipeline is shared); against the serial objective the costs
    # agree to 1e-9 relative (energy/area reductions reassociate).
    serial_opt = serial_result.optimizer_result
    gate_opt = gate_result.optimizer_result
    level_opt = level_result.optimizer_result
    assert np.array_equal(gate_opt.x, level_opt.x)
    assert gate_opt.evaluations == level_opt.evaluations
    assert np.array_equal(
        np.array(gate_opt.history), np.array(level_opt.history)
    )
    assert gate_result.unreliability_reduction == (
        level_result.unreliability_reduction
    )
    assert np.array_equal(serial_opt.x, level_opt.x)
    assert serial_opt.evaluations == level_opt.evaluations
    serial_history = np.array(serial_opt.history)
    level_history = np.array(level_opt.history)
    assert serial_history.shape == level_history.shape
    relative = np.abs(serial_history - level_history) / np.abs(serial_history)
    assert float(relative.max()) <= 1e-9

    payload = {
        "bench": "sertopt_optimize",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "note": "paper-default SertoptConfig regardless of scale",
        "circuit": CIRCUIT,
        "config": {
            "optimizer": "coordinate",
            "max_evaluations": SertoptConfig().max_evaluations,
            "n_vectors": SertoptConfig().aserta.n_vectors,
        },
        "gates": circuit.gate_count,
        "evaluations": level_opt.evaluations,
        "before": {"objective": "serial", "optimize_s": serial_s},
        "pr4": {
            "objective": "batched, per-gate matcher",
            "optimize_s": gate_s,
        },
        "after": {
            "objective": "batched, level-batched matcher",
            "optimize_s": level_s,
        },
        "speedup": e2e_speedup,
        "level_vs_gate_speedup": level_vs_gate,
        "matcher": {
            "lanes": MATCH_LANES,
            "gate_full_ms": matcher[False][0] * 1e3,
            "gate_delta_ms": matcher[False][1] * 1e3,
            "level_full_ms": matcher[True][0] * 1e3,
            "level_delta_ms": matcher[True][1] * 1e3,
            "speedup": match_speedup,
        },
        "max_history_relative_difference": float(relative.max()),
        "unreliability_reduction": level_result.unreliability_reduction,
        "delay_ratio": level_result.delay_ratio,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nSERTOPT {CIRCUIT} optimize ({level_opt.evaluations} evals): "
        f"serial {serial_s:.2f} s, per-gate batched {gate_s:.2f} s, "
        f"level-batched {level_s:.2f} s -> {e2e_speedup:.1f}x end-to-end, "
        f"{level_vs_gate:.2f}x over PR-4, matcher {match_speedup:.2f}x "
        f"-> {BENCH_JSON.name}"
    )
    assert match_speedup >= MIN_MATCH_SPEEDUP, (
        f"level-batched match_batch only {match_speedup:.2f}x faster than "
        f"the per-gate matcher (tentpole floor {MIN_MATCH_SPEEDUP}x)"
    )
    assert e2e_speedup >= MIN_E2E_SPEEDUP, (
        f"batched optimize() only {e2e_speedup:.2f}x faster than the serial "
        f"objective (raised acceptance floor {MIN_E2E_SPEEDUP}x)"
    )
    assert level_vs_gate >= MIN_LEVEL_VS_GATE, (
        f"level-batched optimize() only {level_vs_gate:.2f}x faster than "
        f"the PR-4 per-gate matcher flow (floor {MIN_LEVEL_VS_GATE}x)"
    )
