"""SERTOPT benchmark — serial vs population-batched objective.

Runs the full Section-4 ``Sertopt.optimize()`` flow on c432 at the
paper-default :class:`SertoptConfig` (150 cost evaluations, 10 000
sensitization vectors, the coordinate driver) twice over one shared
analysis engine: once with the original one-candidate-at-a-time
objective, once with the batched array pipeline.  The deterministic
coordinate driver must visit identical points — the benchmark asserts
``OptimizeResult.x``/``evaluations`` equality and per-evaluation cost
agreement to 1e-9 relative — and the batched flow must be at least 3x
faster end to end.  Emits ``BENCH_sertopt.json`` for the CI benchmark
artifact upload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.circuit.iscas85 import iscas85_circuit
from repro.core.sertopt import Sertopt, SertoptConfig
from repro.engine import AnalysisEngine
from repro.experiments.table1_optimization import PAPER_MENUS
from repro.tech.library import CellLibrary

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sertopt.json"
#: The acceptance floor: batched end-to-end optimize() vs the serial
#: objective on c432 at paper defaults.
MIN_SPEEDUP = 3.0
CIRCUIT = "c432"


def _optimize(circuit, library, engine, batched: bool):
    config = SertoptConfig(batched_evaluation=batched)  # paper defaults
    sertopt = Sertopt(circuit, library=library, config=config, engine=engine)
    started = time.perf_counter()
    result = sertopt.optimize()
    return result, time.perf_counter() - started


def test_sertopt_batching_speedup(benchmark):
    circuit = iscas85_circuit(CIRCUIT)
    vdds, vths = PAPER_MENUS[CIRCUIT]
    library = CellLibrary.paper_library(vdds=vdds, vths=vths)
    # One shared engine: the sizing-invariant structural pass (P_ij,
    # Equation-2 shares) is paid once and served to both runs, so the
    # measurement compares the optimization inner loops only.
    engine = AnalysisEngine()
    _optimize(circuit, library, engine, batched=True)  # warm artifacts

    serial_result, serial_s = _optimize(circuit, library, engine, batched=False)
    batched_result, batched_s = _optimize(circuit, library, engine, batched=True)
    if serial_s / batched_s < MIN_SPEEDUP:
        # Shared CI runners jitter; best-of-two before declaring a
        # regression.  Locally the observed ratio is ~6x.
        serial_again, serial_s2 = _optimize(circuit, library, engine, False)
        batched_again, batched_s2 = _optimize(circuit, library, engine, True)
        serial_s = min(serial_s, serial_s2)
        batched_s = min(batched_s, batched_s2)
    speedup = serial_s / batched_s
    benchmark.pedantic(
        lambda: _optimize(circuit, library, engine, batched=True),
        iterations=1,
        rounds=1,
    )

    # The deterministic coordinate search must visit identical points on
    # an identical budget; per-evaluation costs agree to 1e-9 relative
    # (the energy/area terms sum in dense row order, everything else is
    # bit-equal).
    serial_opt = serial_result.optimizer_result
    batched_opt = batched_result.optimizer_result
    assert np.array_equal(serial_opt.x, batched_opt.x)
    assert serial_opt.evaluations == batched_opt.evaluations
    serial_history = np.array(serial_opt.history)
    batched_history = np.array(batched_opt.history)
    assert serial_history.shape == batched_history.shape
    relative = np.abs(serial_history - batched_history) / np.abs(serial_history)
    assert float(relative.max()) <= 1e-9
    assert serial_result.unreliability_reduction == (
        batched_result.unreliability_reduction
    )

    payload = {
        "bench": "sertopt_optimize",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "note": "paper-default SertoptConfig regardless of scale",
        "circuit": CIRCUIT,
        "config": {
            "optimizer": "coordinate",
            "max_evaluations": SertoptConfig().max_evaluations,
            "n_vectors": SertoptConfig().aserta.n_vectors,
        },
        "gates": circuit.gate_count,
        "evaluations": serial_opt.evaluations,
        "before": {"objective": "serial", "optimize_s": serial_s},
        "after": {"objective": "batched", "optimize_s": batched_s},
        "speedup": speedup,
        "max_history_relative_difference": float(relative.max()),
        "unreliability_reduction": batched_result.unreliability_reduction,
        "delay_ratio": batched_result.delay_ratio,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nSERTOPT {CIRCUIT} optimize ({serial_opt.evaluations} evals): "
        f"serial {serial_s:.2f} s, batched {batched_s:.2f} s "
        f"-> {speedup:.1f}x -> {BENCH_JSON.name}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched optimize() only {speedup:.2f}x faster than the serial "
        f"objective (acceptance floor {MIN_SPEEDUP}x)"
    )
