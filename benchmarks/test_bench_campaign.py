"""CAMP benchmark — campaign-engine throughput.

Measures scenarios/second for one grid (2 circuits x 3 charges x
2 environments) under four regimes:

* serial, cold — every structural pass and analysis computed, artifacts
  written to a shared on-disk cache;
* parallel, resident pool — a :class:`WorkerPool` forked *cold* before
  the serial run serves the same grid from the artifact cache the
  serial run filled: zero structural simulations in any worker.  This
  is the analysis-as-a-service steady state the pre-forked pool
  exists for, and the regime the ``MIN_PARALLEL_SPEEDUP`` gate holds;
* serial, warm store — everything served from the result store (resume);
* serial, warm artifacts into SQLite — recompute from cached artifacts
  into the SQLite backend, pinning JSONL↔SQLite summary equality.

Emits ``BENCH_campaign.json`` next to the repository root so the
campaign-throughput trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.campaign import (
    AVIONICS,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    WorkerPool,
    clear_analyzer_cache,
    summarize,
)
from repro.circuit import iscas85
from repro.tech.table_builder import reset_default_tables

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

#: Acceptance floor for the resident-pool regime: parallel wall time at
#: 2 workers must beat serial-cold by at least this factor.  The pool
#: serves the grid from warmed artifact caches (zero fault simulations),
#: so the measured ratio is an order of magnitude above this — the
#: generous floor keeps the gate wall-clock-tolerant on noisy shared
#: runners while still catching the 0.56x regression class outright.
MIN_PARALLEL_SPEEDUP = 1.15


def _spec(scale, **overrides) -> CampaignSpec:
    defaults = dict(
        circuits=tuple(scale.circuits[:2]),
        charges_fc=(4.0, 8.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=scale.sensitization_vectors,
        seed=5,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_campaign_throughput(benchmark, scale, tmp_path):
    cache_dir = str(tmp_path / "artifacts")
    spec = _spec(scale, cache_dir=cache_dir)
    store_path = tmp_path / "bench_store.jsonl"

    # Regime staging: the pool is forked FIRST, cold — empty analyzer
    # caches, empty artifact directory — so its spin-up is measured
    # honestly and its workers inherit nothing from the parent.  The
    # serial-cold run then pays the full structural cost and fills the
    # on-disk artifact cache; the resident pool serves the same grid
    # from that cache afterwards, which is the steady-state shape: one
    # campaign (or one warm-up run) pays the build, every later run in
    # the service's lifetime rides it.
    #
    # "Cold" must mean the same thing standalone and inside the full
    # bench suite, so every process-global warm tier is dropped before
    # the fork: the analyzer/engine caches, the parsed-circuit LRU and
    # the shared technology-table singleton (whose lazily built
    # GridTables made an in-suite "cold" pass run ~4x faster than a
    # genuinely cold one, collapsing the committed speedup baseline).
    reset_default_tables()
    iscas85._cached.cache_clear()
    clear_analyzer_cache()
    pool = WorkerPool(workers=2, cache_dir=cache_dir)
    try:
        pool.start()
        pool_available = True
    except Exception:
        pool_available = False

    cold = benchmark.pedantic(
        lambda: CampaignRunner(spec, store=ResultStore(store_path)).run(
            parallel=False
        ),
        iterations=1,
        rounds=1,
    )
    assert cold.computed == spec.size() and cold.skipped == 0
    # Serial reuse accounting is deterministic: one analyzer build per
    # structural group, every further batch of the group a reuse.
    n_groups = len(spec.structural_groups())
    serial_final = cold.batch_stats[-1]
    assert serial_final["analyzer_builds"] == n_groups
    assert serial_final["analyzer_reuses"] == len(cold.batch_stats) - n_groups

    par_started = time.perf_counter()
    par = CampaignRunner(
        spec, store=ResultStore(), max_workers=2, pool=pool
    ).run(parallel=True)
    par_wall = time.perf_counter() - par_started
    assert par.computed == spec.size()
    speedup = cold.wall_s / par.wall_s if par.wall_s else None
    sim_runs = 0
    if par.mode == "parallel":
        assert par.pool_spinup_s == 0.0  # resident: spin-up paid at fork
        # The warm handoff is the whole speedup: every worker serves its
        # structural pass from the artifact cache the serial run wrote —
        # zero fault simulations anywhere in the pool.
        sim_runs = max(s["structural_sim_runs"] for s in par.batch_stats)
        assert sim_runs == 0, par.batch_stats
        # With one batch per structural group, every group's analyzer is
        # built on exactly one worker; a pool-wide total above n_groups
        # would mean a structural pass ran twice.  Keys are the stable
        # w0/w1 labels, not pids, so the committed JSON cannot churn.
        builds = par.analyzer_builds_by_worker()
        assert sum(builds.values()) == n_groups, (builds, n_groups)
        assert set(builds) <= set(pool.worker_labels)
        # The acceptance gate: resident-pool parallel must beat serial
        # cold.  One wall-clock retry absorbs shared-runner jitter
        # before declaring a regression (locally the ratio is ~40x).
        if speedup < MIN_PARALLEL_SPEEDUP:
            retry_started = time.perf_counter()
            retry = CampaignRunner(
                spec, store=ResultStore(), max_workers=2, pool=pool
            ).run(parallel=True)
            par_wall = min(par_wall, time.perf_counter() - retry_started)
            speedup = max(speedup, cold.wall_s / retry.wall_s)
        assert speedup >= MIN_PARALLEL_SPEEDUP, (speedup, cold.wall_s)
    pool.close()
    assert [(r.digest(), r.unreliability_total) for r in par.results] == [
        (r.digest(), r.unreliability_total) for r in cold.results
    ]

    # The amortization threshold: this bench grid is far below
    # PARALLEL_MIN_UNITS analysis units, so auto mode (without a
    # resident pool to ride) must pick serial instead of paying pool
    # spin-up mid-run — the original parallel-slower regression.
    auto = CampaignRunner(spec, store=ResultStore(), max_workers=2).run(
        parallel=None
    )
    assert auto.mode == "serial" and auto.computed == spec.size()

    warm_started = time.perf_counter()
    warm = CampaignRunner(spec, store=ResultStore(store_path)).run(parallel=False)
    warm_wall = time.perf_counter() - warm_started
    # warm.computed == 0 is the semantic resume guarantee; the generous
    # wall-clock margin only catches pathological slowdowns without being
    # flaky on noisy machines where two timings can jitter past each other.
    assert warm.computed == 0 and warm.skipped == spec.size()
    assert warm.wall_s < cold.wall_s * 2

    # Backend equivalence: the same grid recomputed (from warm
    # artifacts) into the SQLite backend must summarize identically to
    # the JSONL store the serial-cold run filled.
    sqlite_path = tmp_path / "bench_store.sqlite"
    sqlite_started = time.perf_counter()
    sqlite_run = CampaignRunner(spec, store=ResultStore(sqlite_path)).run(
        parallel=False
    )
    sqlite_wall = time.perf_counter() - sqlite_started
    assert sqlite_run.computed == spec.size()
    jsonl_summary = summarize(ResultStore(store_path).results())
    sqlite_summary = summarize(ResultStore(sqlite_path).results())
    backends_equal = (
        jsonl_summary.format_fit_table() == sqlite_summary.format_fit_table()
    )
    assert backends_equal

    payload = {
        "bench": "campaign_throughput",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "grid": {
            "circuits": list(spec.circuits),
            "charges_fc": list(spec.charges_fc),
            "environments": [env.name for env in spec.environments],
            "n_vectors": spec.n_vectors,
            "scenarios": spec.size(),
        },
        "serial_cold": {
            "wall_s": cold.wall_s,
            "scenarios_per_s": cold.scenarios_per_second,
        },
        "serial_warm": {
            "wall_s": warm_wall,
            "scenarios_per_s": warm.scenarios_per_second,
            "speedup_vs_cold": cold.wall_s / warm.wall_s if warm.wall_s else None,
        },
        "parallel": {
            "wall_s": par_wall,
            "scenarios_per_s": par.scenarios_per_second,
            "mode": par.mode,  # "serial" when the sandbox cannot fork
            "workers": par.workers,
            "regime": "resident_pool_warm_artifacts",
            "pool_spinup_s": pool.spinup_s if pool_available else None,
            "speedup_vs_serial_cold": speedup,
            "structural_sim_runs": sim_runs,
            "analyzer_builds_by_worker": dict(
                sorted(par.analyzer_builds_by_worker().items())
            ),
        },
        "sqlite_backend": {
            "wall_s": sqlite_wall,
            "summary_equal_to_jsonl": backends_equal,
        },
        # Auto mode stays serial on this sub-threshold grid when no
        # resident pool exists (the parallel-slower regression fix).
        "auto_mode": auto.mode,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nCAMP — {spec.size()} scenarios: "
        f"cold {cold.scenarios_per_second:.2f}/s, "
        f"warm {warm.scenarios_per_second:.0f}/s, "
        f"parallel({par.mode}) {par.scenarios_per_second:.2f}/s "
        f"({(speedup or 0):.1f}x vs cold) -> {BENCH_JSON.name}"
    )
