"""CAMP benchmark — campaign-engine throughput.

Measures scenarios/second for one grid (2 circuits x 3 charges x
2 environments) under three regimes:

* serial, cold store — every structural pass and analysis computed;
* serial, warm store — everything served from the JSONL store (resume);
* parallel — process pool with one batch per structural group.

Emits ``BENCH_campaign.json`` next to the repository root so the
campaign-throughput trajectory is tracked from this PR onward.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.campaign import (
    AVIONICS,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    clear_analyzer_cache,
)
from repro.tech.table_builder import default_tables

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def _spec(scale) -> CampaignSpec:
    return CampaignSpec(
        circuits=tuple(scale.circuits[:2]),
        charges_fc=(4.0, 8.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=scale.sensitization_vectors,
        seed=5,
    )


def test_campaign_throughput(benchmark, scale, tmp_path):
    spec = _spec(scale)
    store_path = tmp_path / "bench_store.jsonl"

    # Symmetric regimes: both cold runs start from a process holding the
    # base technology-table instance but no analyzers and no lazily-built
    # per-charge LUTs.  The parallel regime runs FIRST — forked workers
    # build their caches in their own memory, so the parent stays cold
    # for the serial regime (running it after a serial run would hand the
    # workers every cache for free and fake the comparison).
    default_tables()
    clear_analyzer_cache()
    par_started = time.perf_counter()
    par = CampaignRunner(spec, store=ResultStore(), max_workers=2).run(
        parallel=True
    )
    par_wall = time.perf_counter() - par_started
    assert par.computed == spec.size()
    # Per-worker analyzer reuse is the regression observable (wall-clock
    # on a small grid measures pool startup, not the engine).  With one
    # batch per structural group, every group must be built on exactly
    # one worker — a pool-wide build total above n_groups would mean a
    # group's structural pass ran twice.  (The batch-*ordering* guard —
    # round-robin circuit interleaving so a worker's later chunks hit
    # its warm analyzers — is asserted directly in
    # tests/test_campaign.py::test_batches_interleave_groups.)
    n_groups = len({key.structural_group() for key in spec.scenarios()})
    if par.mode == "parallel":
        builds = par.analyzer_builds_by_worker()
        assert sum(builds.values()) == n_groups, (builds, n_groups)

    clear_analyzer_cache()
    cold = benchmark.pedantic(
        lambda: CampaignRunner(spec, store=ResultStore(store_path)).run(
            parallel=False
        ),
        iterations=1,
        rounds=1,
    )
    assert cold.computed == spec.size() and cold.skipped == 0
    # Serial reuse accounting is deterministic: one analyzer build per
    # structural group, every further batch of the group a reuse.
    serial_final = cold.batch_stats[-1]
    assert serial_final["analyzer_builds"] == n_groups
    assert serial_final["analyzer_reuses"] == len(cold.batch_stats) - n_groups

    # The amortization threshold: this bench grid is far below
    # PARALLEL_MIN_UNITS analysis units, so auto mode must pick serial
    # instead of paying pool startup (the parallel-slower regression).
    auto = CampaignRunner(spec, store=ResultStore(), max_workers=2).run(
        parallel=None
    )
    assert auto.mode == "serial" and auto.computed == spec.size()

    warm_started = time.perf_counter()
    warm = CampaignRunner(spec, store=ResultStore(store_path)).run(parallel=False)
    warm_wall = time.perf_counter() - warm_started
    # warm.computed == 0 is the semantic resume guarantee; the generous
    # wall-clock margin only catches pathological slowdowns without being
    # flaky on noisy machines where two timings can jitter past each other.
    assert warm.computed == 0 and warm.skipped == spec.size()
    assert warm.wall_s < cold.wall_s * 2
    assert [(r.digest(), r.unreliability_total) for r in par.results] == [
        (r.digest(), r.unreliability_total) for r in cold.results
    ]

    payload = {
        "bench": "campaign_throughput",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "grid": {
            "circuits": list(spec.circuits),
            "charges_fc": list(spec.charges_fc),
            "environments": [env.name for env in spec.environments],
            "n_vectors": spec.n_vectors,
            "scenarios": spec.size(),
        },
        "serial_cold": {
            "wall_s": cold.wall_s,
            "scenarios_per_s": cold.scenarios_per_second,
        },
        "serial_warm": {
            "wall_s": warm_wall,
            "scenarios_per_s": warm.scenarios_per_second,
            "speedup_vs_cold": cold.wall_s / warm.wall_s if warm.wall_s else None,
        },
        "parallel": {
            "wall_s": par_wall,
            "scenarios_per_s": par.scenarios_per_second,
            "mode": par.mode,  # "serial" when the sandbox has no pool
            "workers": par.workers,
            "speedup_vs_serial_cold": cold.wall_s / par.wall_s
            if par.wall_s
            else None,
            "analyzer_builds_by_worker": {
                str(pid): builds
                for pid, builds in par.analyzer_builds_by_worker().items()
            },
        },
        # Auto mode stays serial on this sub-threshold grid (the
        # parallel-slower-than-serial regression fix).
        "auto_mode": auto.mode,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nCAMP — {spec.size()} scenarios: "
        f"cold {cold.scenarios_per_second:.2f}/s, "
        f"warm {warm.scenarios_per_second:.0f}/s, "
        f"parallel({par.mode}) {par.scenarios_per_second:.2f}/s "
        f"-> {BENCH_JSON.name}"
    )
