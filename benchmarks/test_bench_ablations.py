"""ABL benchmarks — design-choice ablations and the charge extension.

* ABL-PI: Equation-2 normalization vs the naive S_is*P_sj weighting the
  paper warns against (Section 3.1): the normalized shares keep Lemma 1
  exact; the naive ones drift badly.
* ABL-K: the number of sample glitch widths (paper: 10) — convergence.
* ABL-Q: unreliability vs injected charge (the paper's "future
  versions" look-up-table axis, implemented here).
"""

from repro.experiments.ablations import (
    run_pi_ablation,
    run_sample_count_ablation,
)
from repro.experiments.charge_sweep import run_charge_sweep


def test_ablation_pi_normalization(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_pi_ablation("c432", scale), iterations=1, rounds=1
    )
    print(f"\nABL-PI on {result.circuit}: max wide-glitch deviation "
          f"normalized={result.max_deviation_normalized:.2e}, "
          f"naive={result.max_deviation_naive:.2f} "
          f"(mean {result.mean_deviation_naive:.2f})")
    assert result.max_deviation_normalized < 1e-6
    assert result.max_deviation_naive > 0.10


def test_ablation_sample_count(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_sample_count_ablation("c432", scale=scale),
        iterations=1, rounds=1,
    )
    print(f"\nABL-K on {result.circuit} (reference k={result.reference_k}):")
    for k in sorted(result.totals):
        print(f"  k={k:<3} U={result.totals[k]:12.1f} "
              f"err={result.relative_error(k):.4f}")
    assert result.relative_error(10) < 0.05  # the paper's k=10 suffices


def test_charge_sweep_extension(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_charge_sweep("c432", scale=scale), iterations=1, rounds=1
    )
    print(f"\nABL-Q on {result.circuit}: U vs injected charge (fC):")
    for charge in sorted(result.totals_by_charge):
        print(f"  {charge:6.1f} fC -> U={result.totals_by_charge[charge]:12.1f}")
    assert result.is_nondecreasing()
