"""Telemetry overhead benchmark — the instrumentation must be free
when it is off.

Times ``AsertaAnalyzer.analyze()`` on c432 with telemetry disabled (the
default null-object path) against an uninstrumented replica of the
pre-telemetry analyze body running on the same warmed analyzer, and
gates the overhead at 3%.  The enabled-telemetry cost is measured and
reported in ``BENCH_telemetry.json`` but *not* gated — recording spans
is allowed to cost something; the contract is that not asking for them
costs nothing.  Also exports the example Chrome traces the CI bench job
uploads: a traced c432 ``Sertopt.optimize()`` and a traced two-worker
campaign, each validated and held to the >=90% span-coverage bar.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.campaign import SEA_LEVEL, CampaignRunner, CampaignSpec, ResultStore
from repro.campaign.environments import AVIONICS
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer
from repro.core.electrical_masking import (
    default_sample_widths,
    electrical_masking,
)
from repro.core.sertopt import Sertopt, SertoptConfig
from repro.core.unreliability import build_report_from_arrays
from repro.tech.library import ParameterAssignment
from repro.telemetry import (
    Telemetry,
    chrome_trace,
    span_coverage,
    validate_chrome_trace,
    write_chrome_trace,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_telemetry.json"
TRACE_JSON = REPO_ROOT / "BENCH_telemetry_trace.json"
#: Acceptance gate: disabled telemetry within 3% of the uninstrumented body.
MAX_DISABLED_OVERHEAD = 0.03
#: Acceptance bar for the exported traces (shared with tests).
MIN_COVERAGE = 0.90


def _analyze_baseline(analyzer: AsertaAnalyzer) -> float:
    """The pre-telemetry analyze() body: identical calls, no spans, no
    counters.  Returns the unreliability total so bit-equality against
    the instrumented path can be asserted."""
    assignment = ParameterAssignment()
    elec = analyzer.electrical_view(assignment, vectorized=True)
    sample_widths = default_sample_widths(elec, analyzer.config.n_sample_widths)
    masking = electrical_masking(
        analyzer.circuit,
        elec,
        sample_widths=sample_widths,
        structure=analyzer.structure,
    )
    assert masking.arrays is not None
    arrays = elec.arrays()
    report = build_report_from_arrays(
        analyzer.circuit.name,
        masking.arrays,
        generated=arrays["generated_width_ps"],
        sizes=arrays["size"],
    )
    return report.total


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _paired_overhead(
    base_fn, other_fn, pairs: int
) -> tuple[float, float, float]:
    """``(overhead, base_s, other_s)`` from interleaved paired sampling.

    Timing each side in a separate best-of pass lets slow drift
    (thermal throttle, host CPU contention under a shared VM, a
    background process waking up) land entirely on whichever side ran
    second, which showed up as measured "overheads" of either sign with
    magnitudes at the 3% gate itself.  Instead the two sides are timed
    as ``pairs`` back-to-back single-call pairs — alternating which
    side of the pair goes first, so "second call runs warmer" order
    bias is split evenly rather than accumulating on one side — and
    the overhead is the ratio of the two per-side *medians*.  The
    samples of both sides interleave at call granularity (a few ms),
    far finer than the drift they need to cancel, and the median
    discards preempted outliers; measured spread on a host whose
    absolute timings drifted 25% within one run stays within ~1%,
    where the separate best-of passes spread over +/-3%.  A garbage
    collection landing inside one call would skew its sample, so GC is
    held off for the (bounded) duration.  ``base_s``/``other_s`` are
    the median per-call times, reported for the table.
    """
    base_times: list[float] = []
    other_times: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for index in range(pairs):
            first, second = (
                (base_fn, other_fn) if index % 2 == 0 else (other_fn, base_fn)
            )
            started = time.perf_counter()
            first()
            middle = time.perf_counter()
            second()
            ended = time.perf_counter()
            first_s, second_s = middle - started, ended - middle
            if index % 2 == 0:
                base_times.append(first_s)
                other_times.append(second_s)
            else:
                other_times.append(first_s)
                base_times.append(second_s)
    finally:
        if gc_was_enabled:
            gc.enable()
    base_s = _median(base_times)
    other_s = _median(other_times)
    return other_s / base_s - 1.0, base_s, other_s


def test_disabled_telemetry_overhead_gate(benchmark):
    circuit = iscas85_circuit("c432")
    analyzer = AsertaAnalyzer(circuit)  # no telemetry: the null path

    # Warm every lazy cache, and pin correctness: the instrumented
    # analyze() and the uninstrumented replica must agree bit-for-bit.
    instrumented_total = analyzer.analyze().total
    baseline_total = _analyze_baseline(analyzer)
    assert instrumented_total == baseline_total

    pairs = 250  # ~1.5 s of interleaved samples per measurement
    disabled_overhead, baseline_s, disabled_s = _paired_overhead(
        lambda: _analyze_baseline(analyzer),
        lambda: analyzer.analyze(),
        pairs,
    )
    if disabled_overhead > MAX_DISABLED_OVERHEAD:
        # Shared runners jitter; re-measure once (lower median wins)
        # before declaring a regression.  The real null-path cost is a
        # handful of no-op attribute lookups per analyze() — nanoseconds
        # against a tens-of-milliseconds analysis.
        retry_overhead, rebase_s, redis_s = _paired_overhead(
            lambda: _analyze_baseline(analyzer),
            lambda: analyzer.analyze(),
            pairs,
        )
        disabled_overhead = min(disabled_overhead, retry_overhead)
        baseline_s = min(baseline_s, rebase_s)
        disabled_s = min(disabled_s, redis_s)

    # Enabled cost: reported for the table, never gated.  Paired against
    # the same uninstrumented body (which never touches the handle), so
    # the reported figure gets the same drift cancellation as the gate.
    traced = Telemetry()
    analyzer.telemetry = traced
    try:
        enabled_overhead, __, enabled_s = _paired_overhead(
            lambda: _analyze_baseline(analyzer),
            lambda: analyzer.analyze(),
            pairs,
        )
    finally:
        from repro.telemetry import NULL_TELEMETRY

        analyzer.telemetry = NULL_TELEMETRY
    benchmark.pedantic(lambda: analyzer.analyze(), iterations=3, rounds=3)

    payload = {
        "bench": "telemetry_overhead",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "circuit": "c432",
        "gates": circuit.gate_count,
        "config": {
            "n_vectors": analyzer.config.n_vectors,
            "n_sample_widths": analyzer.config.n_sample_widths,
            "charge_fc": analyzer.config.charge_fc,
        },
        "baseline_analyze_s": baseline_s,
        "disabled_analyze_s": disabled_s,
        "enabled_analyze_s": enabled_s,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "unreliability_total": instrumented_total,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\ntelemetry c432 analyze: baseline {baseline_s * 1e3:.1f} ms, "
        f"disabled {disabled_s * 1e3:.1f} ms ({disabled_overhead:+.1%}), "
        f"enabled {enabled_s * 1e3:.1f} ms ({enabled_overhead:+.1%}) "
        f"-> {BENCH_JSON.name}"
    )
    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-telemetry analyze() is {disabled_overhead:.1%} slower "
        f"than the uninstrumented body (gate {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_traced_c432_optimize_exports_valid_trace():
    """The acceptance scenario: a traced end-to-end c432 optimize()
    exports a valid Chrome trace whose phase spans cover >=90% of the
    wall time.  The trace file is the artifact CI uploads."""
    from repro.core.aserta import AsertaConfig

    tel = Telemetry()
    result = Sertopt(
        iscas85_circuit("c432"),
        config=SertoptConfig(
            max_evaluations=8,
            seed=0,
            aserta=AsertaConfig(n_vectors=1000, seed=0),
        ),
        telemetry=tel,
    ).optimize()
    assert result.optimized.total <= result.baseline.total + 1e-9
    spans = tel.tracer.spans()
    trace = chrome_trace(spans, metadata={"scenario": "c432 optimize"})
    assert validate_chrome_trace(trace) == []
    coverage = span_coverage(spans, "sertopt.optimize")
    assert coverage >= MIN_COVERAGE, f"coverage {coverage:.1%}"
    write_chrome_trace(
        TRACE_JSON, spans, metadata={"scenario": "c432 optimize"}
    )
    print(
        f"\ntraced c432 optimize: {len(spans)} spans, "
        f"coverage {coverage:.1%} -> {TRACE_JSON.name}"
    )


def test_traced_two_worker_campaign_trace_is_valid():
    """A traced campaign forced onto two workers merges every worker's
    span buffer onto one timeline that still validates and covers the
    run (falls back to the serial timeline in pool-less sandboxes —
    the same bars apply either way)."""
    from repro.campaign.runner import clear_analyzer_cache

    tel = Telemetry()
    clear_analyzer_cache()
    spec = CampaignSpec(
        circuits=("c17",),
        charges_fc=(4.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=500,
        seed=3,
        telemetry=tel,
    )
    with CampaignRunner(spec, store=ResultStore(), max_workers=2) as runner:
        outcome = runner.run(parallel=True)
    assert outcome.computed == spec.size()
    spans = tel.tracer.spans()
    assert validate_chrome_trace(chrome_trace(spans)) == []
    coverage = span_coverage(spans, "campaign.run")
    assert coverage >= MIN_COVERAGE, f"coverage {coverage:.1%}"
    if outcome.mode == "parallel":
        # Worker spans really crossed the process boundary...
        assert len({span.pid for span in spans}) >= 2
        # ...and the overhead decomposition is on the same timeline.
        names = {span.name for span in spans}
        assert "campaign.pool_spinup" in names
        assert "campaign.steal" in names
        assert "campaign.stream_recv" in names
    clear_analyzer_cache()
    print(
        f"\ntraced campaign ({outcome.mode}): {len(spans)} spans, "
        f"coverage {coverage:.1%}"
    )
