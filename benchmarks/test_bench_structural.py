"""Structural-engine benchmark — event-driven walk vs. batched simulator.

Runs the Section-3.1 structural pass (the ``P_ij`` estimate) on c5315 —
the circuit the ROADMAP flagged as "seconds per netlist" under the
event-driven walk — through both engines on identical vectors, asserts
the batched path is at least 3x faster *and* bit-identical, then times
the warm path: a second analyzer over a shared artifact cache, whose
construction must perform zero fault-simulation work.  Emits
``BENCH_structural.json`` alongside the other ``BENCH_*.json``
artifacts uploaded by CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.engine import AnalysisEngine
from repro.engine.structural import (
    CompiledStructuralCircuit,
    structural_matrix_batched,
    structural_matrix_event,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_structural.json"
#: The acceptance floor: batched structural pass vs the event-driven
#: seed estimator, cold, on c5315.
MIN_SPEEDUP = 3.0
CIRCUIT = "c5315"
SEED = 0


def test_structural_batching_speedup(benchmark, scale):
    n_vectors = scale.sensitization_vectors
    circuit = iscas85_circuit(CIRCUIT)
    # Compile outside the timed region on both sides: the event path's
    # equivalents (BitParallelSimulator plan, fanout maps) are likewise
    # built once per circuit, and the compiled schedule is a cached
    # artifact in production.
    compiled = CompiledStructuralCircuit(circuit.indexed())

    def run_batched() -> np.ndarray:
        return structural_matrix_batched(
            circuit, n_vectors, seed=SEED, compiled=compiled
        )

    batched_p = run_batched()
    event_p = structural_matrix_event(circuit, n_vectors, seed=SEED)
    np.testing.assert_array_equal(batched_p, event_p)

    def best_of(fn, repeats: int) -> float:
        best = float("inf")
        for __ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    event_s = best_of(
        lambda: structural_matrix_event(circuit, n_vectors, seed=SEED), 2
    )
    batched_s = best_of(run_batched, 3)
    if event_s / batched_s < MIN_SPEEDUP:
        # Re-measure once before declaring a regression (shared CI
        # runners jitter); locally the observed ratio is ~6x.
        event_s = min(
            event_s,
            best_of(
                lambda: structural_matrix_event(circuit, n_vectors, seed=SEED),
                2,
            ),
        )
        batched_s = min(batched_s, best_of(run_batched, 3))
    speedup = event_s / batched_s
    benchmark.pedantic(run_batched, iterations=1, rounds=3)

    # Warm path: a fresh analyzer over a shared engine must build with
    # zero fault-simulation work (pure artifact-cache hits).
    engine = AnalysisEngine()
    config = AsertaConfig(n_vectors=n_vectors, seed=SEED)
    started = time.perf_counter()
    cold_analyzer = AsertaAnalyzer(circuit, config, engine=engine)
    cold_build_s = time.perf_counter() - started
    assert engine.structural_sim_runs == 1

    started = time.perf_counter()
    warm_analyzer = AsertaAnalyzer(circuit, config, engine=engine)
    warm_report = warm_analyzer.analyze()
    warm_build_analyze_s = time.perf_counter() - started
    assert engine.structural_sim_runs == 1, "warm analyzer re-simulated"
    assert engine.cache.stats.by_kind["p_matrix"]["hits"] >= 1
    assert warm_report.total > 0.0
    assert warm_report.total == cold_analyzer.analyze().total

    payload = {
        "bench": "structural_pass",
        "unix_time": time.time(),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "circuit": CIRCUIT,
        "n_vectors": n_vectors,
        "seed": SEED,
        "gates": circuit.gate_count,
        "outputs": len(circuit.outputs),
        "before": {"engine": "event", "structural_s": event_s},
        "after": {
            "engine": "batched",
            "structural_s": batched_s,
            # Per-row active-site masks skip (site, gate) pairs outside
            # each site's cone; bit-identical, reflected in the timing.
            "site_masked": True,
        },
        "speedup": speedup,
        "warm": {
            "cold_analyzer_build_s": cold_build_s,
            "warm_build_plus_analyze_s": warm_build_analyze_s,
            "structural_sim_runs": engine.structural_sim_runs,
            "cache": engine.stats(),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nstructural pass {CIRCUIT} ({n_vectors} vectors): "
        f"event {event_s:.2f} s, batched {batched_s:.2f} s "
        f"-> {speedup:.1f}x; warm analyzer build+analyze "
        f"{warm_build_analyze_s * 1e3:.0f} ms (0 simulations) "
        f"-> {BENCH_JSON.name}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched structural pass only {speedup:.2f}x faster than the "
        f"event-driven path (acceptance floor {MIN_SPEEDUP}x)"
    )
    # The warm path must never be slower than a cold structural pass —
    # it does strictly less work (no simulation at all).
    assert warm_build_analyze_s < event_s
