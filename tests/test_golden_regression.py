"""Golden-value regression: the vectorized core must reproduce the seed.

``tests/golden/*.json`` was recorded from the original dict-based
implementation (the pre-vectorization seed) at fixed configurations:
per-gate ``U_i`` contributions, per-output expected widths, circuit
totals and environment-scaled FIT rates.  The array path must agree to
1e-9 relative error — anything looser means the rewrite changed the
mathematics, not just the execution strategy.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.environments import AVIONICS, LEO_SPACE, SEA_LEVEL
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_CIRCUITS = ("c17", "c432")
ENVIRONMENTS = {env.name: env for env in (SEA_LEVEL, AVIONICS, LEO_SPACE)}
#: Maximum relative error against the recorded seed outputs.
RTOL = 1e-9


def _load(name: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))


@pytest.fixture(scope="module", params=GOLDEN_CIRCUITS)
def golden_case(request):
    payload = _load(request.param)
    config = AsertaConfig(**payload["config"])
    analyzer = AsertaAnalyzer(iscas85_circuit(request.param), config)
    return payload, analyzer.analyze()


class TestGoldenRegression:
    def test_total_matches_seed(self, golden_case):
        payload, report = golden_case
        assert report.total == pytest.approx(payload["total"], rel=RTOL)

    def test_sample_widths_match_seed(self, golden_case):
        payload, report = golden_case
        recorded = payload["sample_widths_ps"]
        assert len(recorded) == len(report.masking.sample_widths)
        for want, got in zip(recorded, report.masking.sample_widths):
            assert got == pytest.approx(want, rel=RTOL)

    def test_per_gate_contributions_match_seed(self, golden_case):
        payload, report = golden_case
        per_gate = report.unreliability.per_gate
        assert set(per_gate) == set(payload["per_gate"])
        for name, recorded in payload["per_gate"].items():
            entry = per_gate[name]
            assert entry.size == pytest.approx(recorded["size"], rel=RTOL)
            assert entry.generated_width_ps == pytest.approx(
                recorded["generated_width_ps"], rel=RTOL
            )
            assert entry.contribution == pytest.approx(
                recorded["contribution"], rel=RTOL, abs=1e-12
            )

    def test_per_output_widths_match_seed(self, golden_case):
        payload, report = golden_case
        for name, recorded in payload["per_gate"].items():
            got = report.unreliability.per_gate[name].widths_by_output
            assert set(got) == set(recorded["widths_by_output"])
            for output, width in recorded["widths_by_output"].items():
                assert got[output] == pytest.approx(width, rel=RTOL, abs=1e-12)

    def test_fit_rates_match_seed(self, golden_case):
        payload, report = golden_case
        for env_name, recorded_fit in payload["fit"].items():
            rates = ENVIRONMENTS[env_name].rates(report.total)
            assert rates.fit == pytest.approx(recorded_fit, rel=RTOL)


def test_golden_fixtures_are_complete():
    for name in GOLDEN_CIRCUITS:
        payload = _load(name)
        assert payload["circuit"] == name
        assert payload["per_gate"], name
        assert set(payload["fit"]) == set(ENVIRONMENTS)
