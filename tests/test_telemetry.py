"""Telemetry subsystem: tracer nesting, metric snapshots/diffs,
Chrome-trace export, end-to-end instrumentation coverage, the
cross-process campaign merge and the trace-summary tool."""

from __future__ import annotations

import io
import json
import logging
import pickle
import sys
import threading
from pathlib import Path

import pytest

from repro.campaign import (
    AVIONICS,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
)
from repro.campaign.runner import _evaluate_batch, clear_analyzer_cache
from repro.core.sertopt import Sertopt, SertoptConfig
from repro.telemetry import (
    NULL_METRICS,
    NULL_TELEMETRY,
    NULL_TRACER,
    MetricsRegistry,
    NullTelemetry,
    NullTracer,
    Span,
    Telemetry,
    Tracer,
    aggregate_spans,
    chrome_trace,
    chrome_trace_events,
    enable_console_logging,
    format_report,
    json_summary,
    resolve,
    span_coverage,
    validate_chrome_trace,
    write_chrome_trace,
)

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"


class FakeClock:
    """Deterministic ns clock: each call returns the next scripted tick."""

    def __init__(self, *ticks: int) -> None:
        self._ticks = list(ticks)

    def __call__(self) -> int:
        return self._ticks.pop(0)


def small_traced_spec(tel, **overrides) -> CampaignSpec:
    defaults = dict(
        circuits=("c17",),
        charges_fc=(4.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=200,
        seed=3,
        telemetry=tel,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# ---------------------------------------------------------------- tracer


class TestTracer:
    def test_nesting_and_parentage(self):
        tracer = Tracer(clock=FakeClock(0, 10, 40, 100))
        with tracer.span("outer", phase=1):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # finish order: inner first
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0
        assert (inner.start_ns, inner.end_ns) == (10, 40)
        assert (outer.start_ns, outer.end_ns) == (0, 100)
        assert outer.attrs == {"phase": 1}
        assert outer.duration_ns == 100
        assert len(tracer) == 2

    def test_span_ids_unique_and_clear(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [span.span_id for span in tracer.spans()]
        assert len(set(ids)) == 5
        tracer.clear()
        assert len(tracer) == 0

    def test_record_parents_under_open_span(self):
        tracer = Tracer(clock=FakeClock(0, 1000))
        with tracer.span("execute"):
            tracer.record("pool_spinup", 100, 300, workers=2)
        spinup, execute = tracer.spans()
        assert spinup.parent_id == execute.span_id
        assert (spinup.start_ns, spinup.end_ns) == (100, 300)
        assert spinup.attrs == {"workers": 2}
        # Outside any open span a recorded interval is a root.
        tracer.record("orphan", 5, 6)
        assert tracer.spans()[-1].parent_id == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock(0, 50))
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("propagates")
        (span,) = tracer.spans()
        assert span.end_ns == 50

    def test_sibling_threads_get_independent_stacks(self):
        tracer = Tracer()
        gate = threading.Barrier(2)

        def work(name: str) -> None:
            with tracer.span(name):
                gate.wait(timeout=5)  # both spans provably open at once

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert {span.name for span in spans} == {"t0", "t1"}
        # Concurrent roots, not accidental parent/child.
        assert all(span.parent_id == 0 for span in spans)
        assert len({span.tid for span in spans}) == 2

    def test_span_dict_round_trip(self):
        tracer = Tracer(clock=FakeClock(3, 9))
        with tracer.span("s", key="value"):
            pass
        (span,) = tracer.spans()
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()

    def test_extend_accepts_spans_and_dicts(self):
        source = Tracer(clock=FakeClock(0, 1, 2, 3))
        with source.span("a"):
            pass
        with source.span("b"):
            pass
        sink = Tracer()
        sink.extend([source.spans()[0], source.spans()[1].to_dict()])
        assert [span.name for span in sink.spans()] == ["a", "b"]


class TestNullPaths:
    def test_null_singletons_are_inert(self):
        assert not NULL_TELEMETRY.enabled
        with NULL_TELEMETRY.span("ignored", anything=1):
            pass
        NULL_TELEMETRY.metrics.add("counter")
        NULL_TELEMETRY.tracer.record("x", 0, 1)
        assert len(NULL_TELEMETRY.tracer) == 0
        assert NULL_TELEMETRY.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_METRICS.snapshot()["counters"] == {}

    def test_resolve(self):
        assert resolve(None) is NULL_TELEMETRY
        tel = Telemetry()
        assert resolve(tel) is tel
        assert resolve(NULL_TELEMETRY) is NULL_TELEMETRY


# --------------------------------------------------------------- metrics


class TestMetrics:
    def test_counters_gauges_timers(self):
        metrics = MetricsRegistry()
        metrics.add("calls")
        metrics.add("calls", 4)
        metrics.gauge("depth", 7.0)
        metrics.add_time("phase", 0.25, count=2)
        snap = metrics.snapshot()
        assert snap["counters"]["calls"] == 5
        assert snap["gauges"]["depth"] == 7.0
        assert snap["timers"]["phase"] == {"total_s": 0.25, "count": 2}

    def test_time_context_records_one_sample(self):
        metrics = MetricsRegistry()
        with metrics.time("tick"):
            pass
        bucket = metrics.snapshot()["timers"]["tick"]
        assert bucket["count"] == 1
        assert bucket["total_s"] >= 0.0

    def test_diff_is_exact(self):
        metrics = MetricsRegistry()
        metrics.add("a", 2)
        before = metrics.snapshot()
        metrics.add("a", 3)
        metrics.add("b")
        metrics.gauge("g", 1.5)
        metrics.add_time("t", 0.5)
        delta = MetricsRegistry.diff(before, metrics.snapshot())
        assert delta["counters"] == {"a": 3, "b": 1}
        assert delta["gauges"] == {"g": 1.5}
        assert delta["timers"] == {"t": {"total_s": 0.5, "count": 1}}
        # Self-diff is empty (counters/timers) — snapshots are stable.
        snap = metrics.snapshot()
        again = MetricsRegistry.diff(snap, snap)
        assert again["counters"] == {} and again["timers"] == {}

    def test_merge_folds_shipped_snapshot(self):
        local = MetricsRegistry()
        local.add("shared", 1)
        shipped = MetricsRegistry()
        shipped.add("shared", 2)
        shipped.add("remote_only", 5)
        shipped.add_time("t", 1.0)
        local.merge(shipped.snapshot())
        snap = local.snapshot()
        assert snap["counters"] == {"shared": 3, "remote_only": 5}
        assert snap["timers"]["t"] == {"total_s": 1.0, "count": 1}


# ------------------------------------------------------------- exporters


def _fake_spans():
    """A hand-built two-level tree plus a second-process root."""
    tracer = Tracer(clock=FakeClock(0, 100, 400, 500, 500, 1000))
    with tracer.span("root"):
        with tracer.span("child"):
            pass  # 100..400
        with tracer.span("instant"):
            pass  # 500..500, zero-length
    return tracer.spans()


class TestExporters:
    def test_chrome_events_balanced_and_monotone(self):
        events = chrome_trace_events(_fake_spans())
        assert [e["ph"] for e in events] == ["B", "B", "E", "B", "E", "E"]
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        begins = [e for e in events if e["ph"] == "B"]
        assert [e["name"] for e in begins] == ["root", "child", "instant"]
        # Zero-length spans are widened to 1 ns so viewers render them.
        instant_b = next(e for e in begins if e["name"] == "instant")
        instant_e = events[events.index(instant_b) + 1]
        assert instant_e["ts"] > instant_b["ts"]

    def test_validate_clean_and_dirty(self):
        assert validate_chrome_trace(chrome_trace(_fake_spans())) == []
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "E", "ts": 1, "pid": 1, "tid": 1}]}
        )
        assert problems  # unbalanced E must be reported

    def test_aggregate_self_time(self):
        rows = aggregate_spans(_fake_spans())
        assert rows["root"]["count"] == 1
        assert rows["root"]["total_s"] == pytest.approx(1e-6)
        # Self = 1000 ns minus the 300 ns child (instant contributes 0).
        assert rows["root"]["self_s"] == pytest.approx(700e-9)
        assert rows["child"]["self_s"] == pytest.approx(300e-9)

    def test_span_coverage(self):
        assert span_coverage(_fake_spans(), "root") == pytest.approx(0.3)
        assert span_coverage((), "missing") == 0.0

    def test_json_summary_and_report(self):
        tel = Telemetry()
        tel.tracer.extend(_fake_spans())
        tel.metrics.add("calls", 3)
        summary = json_summary(tel)
        assert {"spans", "metrics"} <= set(summary)
        assert summary["metrics"]["counters"]["calls"] == 3
        report = format_report(tel)
        assert "root" in report and "calls" in report

    def test_write_chrome_trace_file(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", _fake_spans(), metadata={"mode": "test"}
        )
        payload = json.loads(Path(path).read_text())
        assert payload["otherData"]["mode"] == "test"
        assert validate_chrome_trace(payload) == []


# ------------------------------------------- end-to-end instrumentation


class TestTracedOptimize:
    @pytest.fixture(scope="class")
    def traced(self, request):
        from repro.circuit.iscas85 import iscas85_circuit
        from repro.core.aserta import AsertaConfig

        tel = Telemetry()
        opt = Sertopt(
            iscas85_circuit("c17"),
            config=SertoptConfig(
                max_evaluations=6,
                seed=3,
                aserta=AsertaConfig(n_vectors=200, seed=3),
            ),
            telemetry=tel,
        )
        result = opt.optimize()
        return tel, result

    def test_trace_valid_and_covered(self, traced):
        tel, _ = traced
        spans = tel.tracer.spans()
        assert validate_chrome_trace(chrome_trace(spans)) == []
        # Acceptance bar: the phase spans account for >=90% of the
        # optimize() wall time — nothing substantial runs untraced.
        assert span_coverage(spans, "sertopt.optimize") >= 0.90
        names = {span.name for span in spans}
        assert {
            "sertopt.optimize",
            "sertopt.setup",
            "sertopt.delay_space",
            "sertopt.final_match",
            "optimizer.search",
            "matcher.match_batch",
            "aserta.analyze",
        } <= names

    def test_counters_populated(self, traced):
        tel, result = traced
        counters = tel.metrics.snapshot()["counters"]
        assert counters["optimizer.runs"] == 1
        assert (
            counters["optimizer.evaluations"]
            == result.optimizer_result.evaluations
        )
        assert counters["matcher.match_batch.calls"] >= 1
        assert counters["matcher.pairs.total"] >= counters["matcher.pairs.rescored"]
        assert (
            counters["optimizer.probes.speculated"]
            >= counters["optimizer.probes.replayed"]
        )

    def test_disabled_is_silent(self):
        from repro.circuit.iscas85 import iscas85_circuit

        from repro.core.aserta import AsertaConfig

        opt = Sertopt(
            iscas85_circuit("c17"),
            config=SertoptConfig(
                max_evaluations=4,
                seed=3,
                aserta=AsertaConfig(n_vectors=200, seed=3),
            ),
        )
        assert opt.telemetry is NULL_TELEMETRY
        opt.optimize()
        assert len(opt.telemetry.tracer) == 0


# ------------------------------------------------------------- campaigns


class TestCampaignTelemetry:
    def run_traced(self, parallel: bool, **overrides):
        tel = Telemetry()
        clear_analyzer_cache()
        spec = small_traced_spec(tel, **overrides)
        outcome = CampaignRunner(spec, store=ResultStore()).run(parallel=parallel)
        return tel, outcome

    def test_serial_run_traced_end_to_end(self):
        tel, outcome = self.run_traced(parallel=False)
        spans = tel.tracer.spans()
        assert validate_chrome_trace(chrome_trace(spans)) == []
        assert span_coverage(spans, "campaign.run") >= 0.90
        names = {span.name for span in spans}
        assert {
            "campaign.run",
            "campaign.plan",
            "campaign.execute",
            "campaign.batch",
            "campaign.finalize",
            "aserta.analyze",
        } <= names
        counters = tel.metrics.snapshot()["counters"]
        assert counters["campaign.scenarios.computed"] == outcome.computed
        assert counters["campaign.runs"] == 1

    def test_mode_invariant_counters_match_exactly(self):
        """The work metrics are a mode-independent contract: a pooled
        run (or its serial fallback) must count exactly the same
        analyses as the serial run — nothing recomputed, nothing lost
        in the worker merge."""
        invariant = (
            "campaign.scenarios.computed",
            "campaign.analyses.run",
            "campaign.analyses.shared",
            "aserta.analyze.calls",
        )
        tel_serial, _ = self.run_traced(parallel=False)
        tel_pooled, _ = self.run_traced(parallel=True)
        serial = tel_serial.metrics.snapshot()
        pooled = tel_pooled.metrics.snapshot()
        delta = MetricsRegistry.diff(serial, pooled)
        for name in invariant:
            assert serial["counters"][name] > 0
            assert name not in delta["counters"], (
                name,
                serial["counters"].get(name),
                pooled["counters"].get(name),
            )

    def test_worker_ship_path_merges(self):
        """The exact payload a pool worker returns (fresh handle,
        picklable dict) folds into a runner-side handle without span-id
        collisions — exercised directly so it is covered even where the
        sandbox has no process pool."""
        spec = small_traced_spec(None)
        keys = spec.scenarios()
        items = [
            (key, spec.assignments[key.assignment], spec.environment_by_name(key.environment))
            for key in keys
        ]
        clear_analyzer_cache()
        _, stats = _evaluate_batch(
            keys[0].structural_group(), spec.aserta_config(), items,
            ship_telemetry=True,
        )
        payload = stats["telemetry"]
        pickle.dumps(payload)  # must survive the pickle boundary
        tel = Telemetry()
        with tel.span("campaign.run"):
            tel.merge(payload)
        spans = tel.tracer.spans()
        assert validate_chrome_trace(chrome_trace(spans)) == []
        assert "campaign.batch" in {span.name for span in spans}
        assert tel.metrics.snapshot()["counters"]["campaign.batches"] == 1
        # Shipped spans keep their own pid; the runner span keeps ours.
        assert {span.name for span in spans if span.pid == spans[0].pid}

    def test_serial_spans_share_runner_ids_without_collision(self):
        """Serial batches record into the runner's live tracer — span
        ids must stay unique per (pid, id) or the Chrome export would
        interleave B/E pairs."""
        tel, _ = self.run_traced(parallel=False)
        seen = set()
        for span in tel.tracer.spans():
            key = (span.pid, span.span_id)
            assert key not in seen
            seen.add(key)

    def test_pool_fallback_warns(self, monkeypatch, caplog):
        from repro.campaign import pool as pool_mod

        def boom(self):
            raise pool_mod.WorkerPoolError("sandbox denies fork")

        monkeypatch.setattr(pool_mod.WorkerPool, "start", boom)
        # Two charges -> two batches, so the runner actually reaches for
        # the pool (a single batch is clamped to one worker and never
        # tries it).
        spec = small_traced_spec(None)
        with caplog.at_level(logging.WARNING, logger="repro.campaign.runner"):
            outcome = CampaignRunner(
                spec, store=ResultStore(), max_workers=2
            ).run(parallel=True)
        assert outcome.mode == "serial"
        assert outcome.computed == spec.size()
        assert any(
            "falling back to serial" in record.getMessage()
            for record in caplog.records
        )

    def test_telemetry_never_enters_digests(self):
        plain = small_traced_spec(None)
        traced = small_traced_spec(Telemetry())
        assert [key.digest() for key in plain.scenarios()] == [
            key.digest() for key in traced.scenarios()
        ]
        for key in traced.scenarios():
            assert "telemetry" not in key.to_json_dict()


# ---------------------------------------------------------------- logging


class TestConsoleLogging:
    def test_enable_console_logging_captures_debug(self):
        stream = io.StringIO()
        handler = enable_console_logging(logging.DEBUG, stream=stream)
        try:
            logging.getLogger("repro.test_channel").debug("hello from repro")
        finally:
            logging.getLogger("repro").removeHandler(handler)
            logging.getLogger("repro").setLevel(logging.NOTSET)
        assert "hello from repro" in stream.getvalue()

    def test_reenable_replaces_handler(self):
        first = enable_console_logging(logging.INFO, stream=io.StringIO())
        second = enable_console_logging(logging.INFO, stream=io.StringIO())
        root = logging.getLogger("repro")
        try:
            assert first not in root.handlers
            assert second in root.handlers
        finally:
            root.removeHandler(second)
            root.setLevel(logging.NOTSET)

    def test_import_installs_null_handler(self):
        import repro  # noqa: F401 - side effect under test

        root = logging.getLogger("repro")
        assert any(
            isinstance(handler, logging.NullHandler) for handler in root.handlers
        )


# ----------------------------------------------------- trace summary tool


class TestTraceSummaryTool:
    @pytest.fixture()
    def tool(self):
        sys.path.insert(0, str(TOOLS_DIR))
        try:
            import trace_summary

            yield trace_summary
        finally:
            sys.path.remove(str(TOOLS_DIR))

    def test_summarize_matches_aggregate(self, tool, tmp_path):
        spans = _fake_spans()
        path = write_chrome_trace(tmp_path / "t.json", spans)
        rows = tool.summarize_events(tool.load_events(path))
        by_name = {row["name"]: row for row in rows}
        # Same self-time answer as the in-package aggregator (µs vs s),
        # modulo the 1 ns widening the exporter applies to zero-length
        # spans so viewers can render them.
        for name, row in aggregate_spans(spans).items():
            assert by_name[name]["self_us"] == pytest.approx(
                row["self_s"] * 1e6, abs=2e-3
            )
        assert rows[0]["name"] == "root"  # largest self-time first

    def test_main_prints_table(self, tool, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "t.json", _fake_spans())
        assert tool.main([str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "self" in out and "root" in out
        assert len(out.strip().splitlines()) == 3  # header + 2 rows

    def test_main_rejects_garbage(self, tool, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert tool.main([str(bad)]) == 1
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}')
        assert tool.main([str(empty)]) == 1
