"""Tests for SERTOPT's components: delay space, matching, cost, optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.core.baseline import size_for_speed
from repro.core.cost import CostEvaluator, CostWeights
from repro.core.delay_assignment import MIN_DELAY_PS, DelaySpace
from repro.core.matching import MatchingEngine
from repro.core.optimizers import (
    minimize_annealing,
    minimize_coordinate,
    minimize_slsqp,
    run_optimizer,
)
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellLibrary, ParameterAssignment


@pytest.fixture(scope="module")
def c432_space(c432):
    elec = CircuitElectrical(c432, ParameterAssignment(), use_tables=False)
    space = DelaySpace(c432, elec.delay_ps, max_paths=400, seed=0)
    return c432, elec, space


class TestDelaySpace:
    def test_dimension_positive_on_real_circuit(self, c432_space):
        __, __e, space = c432_space
        assert space.dimension > 0

    def test_basis_in_sampled_nullspace(self, c432_space):
        """Every potential-basis direction annihilates the sampled
        topology matrix: T @ N == 0 exactly."""
        __, __e, space = c432_space
        residual = np.abs(space.matrix @ space.basis)
        assert float(residual.max()) < 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_potential_basis_neutral_on_random_circuits(self, seed):
        spec = GeneratorSpec("ns", 5, 3, 40, 5, seed=seed)
        circuit = generate_circuit(spec)
        elec = CircuitElectrical(circuit, ParameterAssignment(), use_tables=False)
        space = DelaySpace(circuit, elec.delay_ps, max_paths=300, seed=seed)
        if space.dimension == 0:
            return
        residual = np.abs(space.matrix @ space.basis)
        assert float(residual.max()) < 1e-9

    def test_unclamped_moves_preserve_circuit_delay(self, c432_space):
        """Small perturbations (no MIN_DELAY clamping) leave every
        sampled path delay — and the circuit delay — unchanged."""
        c432, elec, space = c432_space
        x = np.zeros(space.dimension)
        x[0] = 1.0
        base_delay = analyze_timing(c432, elec.delay_ps).delay_ps
        moved = space.assigned_delays(x)
        if min(moved.values()) > MIN_DELAY_PS:  # no clamp engaged
            assert analyze_timing(c432, moved).delay_ps <= base_delay + 1e-6

    def test_svd_method_also_neutral(self, c432):
        elec = CircuitElectrical(c432, ParameterAssignment(), use_tables=False)
        space = DelaySpace(
            c432, elec.delay_ps, max_paths=200, seed=1, method="svd",
            max_dimension=8,
        )
        if space.dimension:
            x = np.zeros(space.dimension)
            x[0] = 5.0
            assert space.path_delay_residual(x) < 1e-6

    def test_unknown_method_rejected(self, c432):
        elec = CircuitElectrical(c432, ParameterAssignment(), use_tables=False)
        with pytest.raises(OptimizationError):
            DelaySpace(c432, elec.delay_ps, method="magic")

    def test_coefficient_shape_checked(self, c432_space):
        __, __e, space = c432_space
        with pytest.raises(OptimizationError):
            space.delta(np.zeros(space.dimension + 1))

    def test_assigned_delays_clamped_positive(self, c432_space):
        __, __e, space = c432_space
        x = np.full(space.dimension, -1e6)
        delays = space.assigned_delays(x)
        assert min(delays.values()) >= MIN_DELAY_PS

    def test_max_dimension_truncates(self, c432):
        elec = CircuitElectrical(c432, ParameterAssignment(), use_tables=False)
        space = DelaySpace(c432, elec.delay_ps, max_paths=200, max_dimension=3)
        assert space.dimension <= 3

    def test_describe_keys(self, c432_space):
        __, __e, space = c432_space
        info = space.describe()
        assert set(info) == {"gates", "paths", "rank", "dimension"}


class TestMatching:
    def test_anchored_matching_reproduces_baseline(self, c432):
        library = CellLibrary.paper_library()
        baseline = size_for_speed(c432, library)
        elec = CircuitElectrical(c432, baseline, use_tables=False)
        engine = MatchingEngine(c432, library)
        matched = engine.match(
            dict(elec.delay_ps), dict(elec.input_ramp_ps), anchor=baseline
        )
        for gate in c432.gates():
            assert matched[gate.name] == baseline[gate.name]

    def test_matching_approaches_targets(self, c432):
        library = CellLibrary.paper_library()
        baseline = size_for_speed(c432, library)
        elec = CircuitElectrical(c432, baseline, use_tables=False)
        targets = {n: d * 1.5 for n, d in elec.delay_ps.items()}
        engine = MatchingEngine(c432, library)
        matched = engine.match(targets, dict(elec.input_ramp_ps))
        realized = CircuitElectrical(c432, matched, use_tables=False)
        # Median relative error should be modest with the paper library.
        errors = sorted(
            abs(realized.delay_ps[n] - targets[n]) / targets[n]
            for n in targets
        )
        assert errors[len(errors) // 2] < 0.5

    def test_vdd_ordering_respected(self, c432):
        library = CellLibrary.paper_library()
        baseline = size_for_speed(c432, library)
        elec = CircuitElectrical(c432, baseline, use_tables=False)
        engine = MatchingEngine(c432, library)
        matched = engine.match(
            {n: d * 2.0 for n, d in elec.delay_ps.items()},
            dict(elec.input_ramp_ps),
        )
        for gate in c432.gates():
            own = matched[gate.name].vdd
            for successor in c432.fanouts(gate.name):
                assert own >= matched[successor].vdd - 1e-12

    def test_timing_repair_limits_delay(self, c432):
        library = CellLibrary.paper_library()
        baseline = size_for_speed(c432, library)
        elec = CircuitElectrical(c432, baseline, use_tables=False)
        base_delay = analyze_timing(c432, elec.delay_ps).delay_ps
        cap = base_delay * 1.25
        engine = MatchingEngine(c432, library)
        # Ask for a blatantly slow circuit; repair must pull it back.
        slowed = {n: d * 4.0 for n, d in elec.delay_ps.items()}
        repaired = engine.match_with_timing(
            slowed, dict(elec.input_ramp_ps), cap, anchor=baseline
        )
        realized = CircuitElectrical(c432, repaired, use_tables=False)
        achieved = analyze_timing(c432, realized.delay_ps).delay_ps
        assert achieved <= cap * 1.10

    def test_missing_target_rejected(self, c17):
        engine = MatchingEngine(c17, CellLibrary.paper_library())
        with pytest.raises(OptimizationError):
            engine.match({}, {})


class TestCostEvaluator:
    def test_baseline_cost_equals_total_weight(self, c432_analyzer):
        baseline = size_for_speed(c432_analyzer.circuit)
        evaluator = CostEvaluator(c432_analyzer, baseline)
        assert evaluator.baseline_breakdown.total == pytest.approx(
            evaluator.weights.total_weight
        )
        same = evaluator.evaluate(baseline)
        assert same.total == pytest.approx(evaluator.weights.total_weight)
        assert same.unreliability_reduction == pytest.approx(0.0)

    def test_weight_validation(self):
        with pytest.raises(OptimizationError):
            CostWeights(unreliability=-1.0)
        with pytest.raises(OptimizationError):
            CostWeights(timing_cap=0.5)

    def test_timing_cap_penalty_applies(self, c432_analyzer):
        baseline = size_for_speed(c432_analyzer.circuit)
        strict = CostEvaluator(
            c432_analyzer, baseline,
            weights=CostWeights(timing_cap=1.0, timing_cap_penalty=100.0),
        )
        from repro.tech.library import CellParams

        slow = ParameterAssignment(default=CellParams(length_nm=300.0))
        breakdown = strict.evaluate(slow)
        loose = CostEvaluator(
            c432_analyzer, baseline,
            weights=CostWeights(timing_cap=100.0, timing_cap_penalty=100.0),
        ).evaluate(slow)
        assert breakdown.total > loose.total


class TestOptimizers:
    @staticmethod
    def quadratic(x):
        return float(np.sum((x - 1.0) ** 2))

    def test_slsqp_minimizes_smooth(self):
        result = minimize_slsqp(self.quadratic, np.zeros(3), 5.0, 200, fd_step=0.1)
        assert result.value < 0.05
        assert result.method == "slsqp"

    def test_annealing_improves(self):
        result = minimize_annealing(self.quadratic, np.zeros(3), 5.0, 250, seed=1)
        assert result.value < self.quadratic(np.zeros(3))

    def test_coordinate_improves(self):
        result = minimize_coordinate(self.quadratic, np.zeros(3), 5.0, 200, seed=1)
        assert result.value < self.quadratic(np.zeros(3))

    def test_budget_respected(self):
        calls = []

        def counted(x):
            calls.append(1)
            return self.quadratic(x)

        minimize_annealing(counted, np.zeros(2), 1.0, 37, seed=0)
        assert len(calls) <= 37

    def test_best_point_tracked(self):
        result = minimize_annealing(self.quadratic, np.zeros(2), 5.0, 120, seed=3)
        assert self.quadratic(result.x) == pytest.approx(result.value)

    def test_unknown_method_rejected(self):
        with pytest.raises(OptimizationError):
            run_optimizer("magic", self.quadratic, np.zeros(2), 1.0, 10)

    def test_dispatch(self):
        for method in ("slsqp", "annealing", "coordinate"):
            result = run_optimizer(
                method, self.quadratic, np.zeros(2), 5.0, 60, seed=2
            )
            assert result.evaluations <= 60
