"""Tests for the cell library, assignments, and technology tables."""

import pytest

from repro.circuit.gate import GateType
from repro.errors import LibraryError, TableError
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech.library import (
    CellLibrary,
    CellParams,
    NOMINAL_CELL,
    PAPER_LENGTHS_NM,
    ParameterAssignment,
)
from repro.tech.table_builder import TechnologyTables


class TestCellParams:
    def test_nominal_matches_paper_baseline(self):
        assert NOMINAL_CELL.size == 1.0
        assert NOMINAL_CELL.length_nm == 70.0
        assert NOMINAL_CELL.vdd == 1.0
        assert NOMINAL_CELL.vth == 0.2

    def test_invalid_params_rejected(self):
        with pytest.raises(Exception):
            CellParams(vdd=0.2, vth=0.3)
        with pytest.raises(Exception):
            CellParams(size=-1.0)

    def test_params_hashable_and_ordered(self):
        a = CellParams(size=1.0)
        b = CellParams(size=2.0)
        assert a < b
        assert len({a, b, CellParams(size=1.0)}) == 2


class TestCellLibrary:
    def test_paper_library_contents(self):
        library = CellLibrary.paper_library()
        assert library.lengths_nm == PAPER_LENGTHS_NM
        assert 0.8 in library.vdds and 1.2 in library.vdds
        cells = library.cells()
        assert NOMINAL_CELL in cells
        assert all(cell.vdd > cell.vth for cell in cells)

    def test_illegal_combinations_filtered(self):
        library = CellLibrary(
            sizes=(1.0,), lengths_nm=(70.0,), vdds=(0.3, 1.0), vths=(0.2, 0.4)
        )
        for cell in library:
            assert cell.vdd > cell.vth

    def test_vdd_floor_filter(self):
        library = CellLibrary.paper_library()
        for cell in library.cells_with_vdd_at_least(1.2):
            assert cell.vdd >= 1.2
        with pytest.raises(LibraryError):
            library.cells_with_vdd_at_least(99.0)

    def test_sizing_only_library(self):
        library = CellLibrary.sizing_only()
        assert library.vdds == (1.0,)
        assert library.vths == (0.2,)
        assert library.lengths_nm == (70.0,)

    def test_empty_axis_rejected(self):
        with pytest.raises(LibraryError):
            CellLibrary(sizes=())

    def test_len_counts_cells(self):
        library = CellLibrary(
            sizes=(1.0, 2.0), lengths_nm=(70.0,), vdds=(1.0,), vths=(0.2,)
        )
        assert len(library) == 2


class TestParameterAssignment:
    def test_default_and_overrides(self):
        assignment = ParameterAssignment()
        assert assignment["anything"] == NOMINAL_CELL
        cell = CellParams(size=2.0)
        assignment.set("g1", cell)
        assert assignment["g1"] == cell
        assert assignment["other"] == NOMINAL_CELL

    def test_copy_is_independent(self):
        assignment = ParameterAssignment()
        duplicate = assignment.copy()
        duplicate.set("g", CellParams(size=3.0))
        assert assignment["g"] == NOMINAL_CELL

    def test_distinct_voltage_summaries(self):
        assignment = ParameterAssignment()
        assignment.set("a", CellParams(vdd=1.2, vth=0.1))
        assignment.set("b", CellParams(vdd=0.8, vth=0.3))
        assert assignment.distinct_vdds() == (0.8, 1.0, 1.2)
        assert assignment.distinct_vths() == (0.1, 0.2, 0.3)


class TestTechnologyTables:
    def test_lookup_matches_model_at_grid_points(self, tables):
        params = CellParams(size=2.0, length_nm=100.0, vdd=0.8, vth=0.3)
        got = tables.delay_ps(GateType.NAND, 2, params, 2.0, 20.0)
        expected = ge.propagation_delay_ps(
            GateType.NAND, 2, 2.0, 100.0, 0.8, 0.3, 2.0, 20.0
        )
        assert got == pytest.approx(expected, rel=1e-9)

    def test_interpolation_error_small_off_grid(self, tables):
        params = CellParams(size=1.4, length_nm=120.0, vdd=0.9, vth=0.25)
        got = tables.delay_ps(GateType.NOR, 3, params, 1.5, 30.0)
        expected = ge.propagation_delay_ps(
            GateType.NOR, 3, 1.4, 120.0, 0.9, 0.25, 1.5, 30.0
        )
        assert got == pytest.approx(expected, rel=0.15)

    def test_glitch_table_matches_model(self, tables):
        params = CellParams()
        got = tables.generated_width_ps(GateType.NOT, 1, params, 0.8, 16.0)
        from repro.tech.glitch import generated_width_ps

        node_cap = ge.self_capacitance_ff(GateType.NOT, 1, 1.0) + 0.8
        current = ge.drive_current_ua(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2)
        assert got == pytest.approx(
            generated_width_ps(16.0, node_cap, current, 1.0), rel=1e-9
        )

    def test_input_cap_table(self, tables):
        params = CellParams(size=3.0, length_nm=150.0)
        got = tables.input_cap_ff(GateType.XOR, 2, params)
        assert got == pytest.approx(
            ge.input_capacitance_ff(GateType.XOR, 2, 3.0, 150.0), rel=1e-9
        )

    def test_static_power_table(self, tables):
        params = CellParams(vth=0.1)
        got = tables.static_power_uw(GateType.NAND, 2, params)
        assert got == pytest.approx(
            ge.static_power_uw(GateType.NAND, 2, 1.0, 70.0, 1.0, 0.1), rel=1e-9
        )

    def test_dynamic_energy_table(self, tables):
        params = CellParams(size=2.0)
        got = tables.dynamic_energy_fj(GateType.AND, 2, params, 2.0)
        assert got == pytest.approx(
            ge.dynamic_energy_fj(GateType.AND, 2, 2.0, 2.0, 1.0), rel=1e-9
        )

    def test_tables_cached(self, tables):
        before = tables.cached_table_count()
        tables.delay_ps(GateType.NAND, 2, CellParams(), 1.0, 20.0)
        tables.delay_ps(GateType.NAND, 2, CellParams(size=2.0), 1.0, 20.0)
        assert tables.cached_table_count() == max(before, 1) if before else 1

    def test_bad_grid_rejected(self):
        with pytest.raises(TableError):
            TechnologyTables(sizes=(2.0, 1.0))
