"""Tests for static timing analysis and the energy/area models."""

import pytest

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.logicsim.probability import static_probabilities
from repro.power.area import circuit_area
from repro.power.energy import circuit_energy
from repro.sta.timing import analyze_timing, critical_path
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellParams, ParameterAssignment


class TestTiming:
    def test_chain_delay_is_sum(self, chain4):
        delays = {f"n{k}": float(k + 1) for k in range(4)}
        report = analyze_timing(chain4, delays)
        assert report.delay_ps == pytest.approx(10.0)
        assert report.arrival_ps["n3"] == pytest.approx(10.0)

    def test_diamond_takes_longest_branch(self, diamond):
        delays = {"root": 1.0, "top": 5.0, "bottom": 1.0, "out": 1.0}
        report = analyze_timing(diamond, delays)
        assert report.delay_ps == pytest.approx(7.0)

    def test_slack_zero_on_critical_path(self, diamond):
        delays = {"root": 1.0, "top": 5.0, "bottom": 1.0, "out": 1.0}
        report = analyze_timing(diamond, delays)
        for name in ("root", "top", "out"):
            assert report.slack_ps(name) == pytest.approx(0.0)
        assert report.slack_ps("bottom") == pytest.approx(4.0)
        assert report.worst_slack_ps() == pytest.approx(0.0)

    def test_critical_path_extraction(self, diamond):
        delays = {"root": 1.0, "top": 5.0, "bottom": 1.0, "out": 1.0}
        assert critical_path(diamond, delays) == ("root", "top", "out")

    def test_missing_delay_rejected(self, chain4):
        with pytest.raises(AnalysisError):
            analyze_timing(chain4, {"n0": 1.0})

    def test_negative_delay_rejected(self, chain4):
        delays = {f"n{k}": 1.0 for k in range(4)}
        delays["n2"] = -1.0
        with pytest.raises(AnalysisError):
            analyze_timing(chain4, delays)

    def test_multi_output_required_times(self, two_output):
        delays = {"shared": 2.0, "left": 1.0, "right": 4.0}
        report = analyze_timing(two_output, delays)
        assert report.delay_ps == pytest.approx(6.0)
        # 'shared' must feed 'right' (critical); its slack is 0.
        assert report.slack_ps("shared") == pytest.approx(0.0)
        assert report.slack_ps("left") == pytest.approx(3.0)


class TestEnergyArea:
    def test_energy_report_sums(self, c17, nominal):
        view = CircuitElectrical(c17, nominal, use_tables=False)
        probs = static_probabilities(c17)
        report = circuit_energy(c17, view, probs)
        assert report.total_fj == pytest.approx(
            report.dynamic_fj + report.static_fj
        )
        assert report.dynamic_fj == pytest.approx(
            sum(report.per_gate_dynamic_fj.values())
        )
        assert report.total_fj > 0.0

    def test_higher_vdd_costs_energy(self, c17):
        probs = static_probabilities(c17)
        low = ParameterAssignment(default=CellParams(vdd=0.8))
        high = ParameterAssignment(default=CellParams(vdd=1.2))
        e_low = circuit_energy(
            c17, CircuitElectrical(c17, low, use_tables=False), probs
        )
        e_high = circuit_energy(
            c17, CircuitElectrical(c17, high, use_tables=False), probs
        )
        assert e_high.total_fj > e_low.total_fj

    def test_lower_vth_leaks_more(self, c17):
        probs = static_probabilities(c17)
        leaky = ParameterAssignment(default=CellParams(vth=0.1))
        tight = ParameterAssignment(default=CellParams(vth=0.3))
        e_leaky = circuit_energy(
            c17, CircuitElectrical(c17, leaky, use_tables=False), probs
        )
        e_tight = circuit_energy(
            c17, CircuitElectrical(c17, tight, use_tables=False), probs
        )
        assert e_leaky.static_fj > 5.0 * e_tight.static_fj

    def test_constant_node_consumes_no_dynamic_energy(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        out = circuit.add_gate("out", GateType.OR, [a, circuit.add_input("b")])
        circuit.mark_output(out)
        view = CircuitElectrical(circuit, ParameterAssignment(), use_tables=False)
        probs = {"a": 1.0, "b": 1.0, "out": 1.0}  # never toggles
        report = circuit_energy(circuit, view, probs)
        assert report.dynamic_fj == 0.0

    def test_area_matches_view(self, c17, nominal):
        view = CircuitElectrical(c17, nominal, use_tables=False)
        assert circuit_area(c17, view) == pytest.approx(view.total_area())
