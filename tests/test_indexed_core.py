"""Unit tests for the array-core substrate: the indexed netlist view,
vectorized LUT queries (single-table and stacked), the grid form of
Equation 1 and the dense P_ij matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.gate import GateType
from repro.circuit.iscas85 import iscas85_circuit
from repro.logicsim.sensitization import (
    sensitization_matrix,
    sensitization_probabilities,
)
from repro.tech.glitch import propagate_width_array, propagate_width_grid
from repro.tech.library import CellParams
from repro.tech.lut import GridTable, bracket_queries, stacked_lookup
from repro.tech.table_builder import default_tables
from repro.errors import TechnologyError


class TestIndexedCircuit:
    def test_rows_follow_topological_order(self, c432):
        idx = c432.indexed()
        assert idx.order == c432.topological_order()
        assert idx.n_signals == len(c432)
        assert idx.n_gates == c432.gate_count
        for row, name in enumerate(idx.order):
            assert idx.index[name] == row

    def test_masks_and_output_columns(self, c432):
        idx = c432.indexed()
        assert int(idx.is_input.sum()) == len(c432.inputs)
        assert int(idx.is_output.sum()) == len(c432.outputs)
        for col, name in enumerate(c432.outputs):
            row = idx.index[name]
            assert idx.output_col[name] == col
            assert idx.output_rows[col] == row
            assert idx.col_of_row[row] == col

    def test_csr_matches_circuit_adjacency(self, c432):
        idx = c432.indexed()
        for name in c432.signal_names():
            row = idx.index[name]
            fanouts = tuple(idx.order[r] for r in idx.fanouts_of(row))
            assert fanouts == c432.fanouts(name)
            fanins = tuple(idx.order[r] for r in idx.fanins_of(row))
            assert fanins == c432.gate(name).fanins
        assert idx.n_edges == sum(g.fanin_count for g in c432)

    def test_edge_src_is_csr_expansion(self, c17):
        idx = c17.indexed()
        for e in range(idx.n_edges):
            src = idx.edge_src[e]
            assert idx.fanout_ptr[src] <= e < idx.fanout_ptr[src + 1]

    def test_group_ids_partition_gates(self, c432):
        idx = c432.indexed()
        assert np.all(idx.group_id[idx.gate_rows] >= 0)
        assert np.all(idx.group_id[idx.is_input] == -1)
        for gid, (pair, rows) in enumerate(idx.type_groups.items()):
            assert idx.group_pairs[gid] == pair
            for row in rows:
                gate = c432.gate(idx.order[row])
                assert (gate.gtype, gate.fanin_count) == pair
                assert idx.group_id[row] == gid

    def test_gather_scatter_round_trip(self, c17):
        idx = c17.indexed()
        mapping = {name: float(i) for i, name in enumerate(c17.signal_names())}
        dense = idx.gather(mapping)
        assert idx.scatter(dense) == mapping

    def test_view_is_cached_and_invalidated(self, c17):
        first = c17.indexed()
        assert c17.indexed() is first
        c17.mark_output("10")  # mutation clears derived caches
        assert c17.indexed() is not first


class TestVectorizedLookup:
    def _table(self):
        return GridTable(
            [("x", (0.0, 1.0, 2.0)), ("y", (10.0, 20.0))],
            np.arange(6, dtype=np.float64).reshape(3, 2),
        )

    def test_lookup_many_matches_scalar(self):
        table = self._table()
        rng = np.random.default_rng(1)
        xs = rng.uniform(-0.5, 2.5, 64)
        ys = rng.uniform(5.0, 25.0, 64)
        got = table.lookup_many(x=xs, y=ys)
        want = np.array([table.lookup(x=x, y=y) for x, y in zip(xs, ys)])
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_lookup_many_validates_axes(self):
        table = self._table()
        with pytest.raises(Exception):
            table.lookup_many(x=np.ones(3))
        with pytest.raises(Exception):
            table.lookup_many(x=np.ones(3), y=np.ones(3), z=np.ones(3))

    def test_boundary_fraction_ignores_nonfinite_cells(self):
        values = np.array([[1.0, np.inf], [2.0, 3.0]])
        table = GridTable([("x", (0.0, 1.0)), ("y", (0.0, 1.0))], values)
        got = table.lookup_many(x=np.array([0.5]), y=np.array([0.0]))
        assert got[0] == pytest.approx(1.5)

    def test_stacked_lookup_matches_per_table_scalar(self):
        tables = default_tables()
        pairs = ((GateType.NAND, 2), (GateType.NOR, 3), (GateType.NOT, 1))
        stack = tables.stacked_values("delay", pairs)
        rng = np.random.default_rng(7)
        n = 40
        ids = rng.integers(0, len(pairs), n)
        size = rng.uniform(0.5, 4.0, n)
        length = rng.uniform(70.0, 300.0, n)
        vdd = rng.uniform(0.6, 1.2, n)
        vth = rng.uniform(0.1, 0.35, n)
        load = rng.uniform(0.1, 80.0, n)
        ramp = rng.uniform(5.0, 60.0, n)
        brackets = [
            bracket_queries(tables.sizes, size, "size"),
            bracket_queries(tables.lengths_nm, length, "length"),
            bracket_queries(tables.vdds, vdd, "vdd"),
            bracket_queries(tables.vths, vth, "vth"),
            bracket_queries(tables.loads_ff, load, "load"),
            bracket_queries(tables.ramps_ps, ramp, "ramp"),
        ]
        got = stacked_lookup(stack, ids, brackets)
        for q in range(n):
            gtype, fanin = pairs[ids[q]]
            want = tables.delay_ps(
                gtype,
                fanin,
                CellParams(
                    size=size[q], length_nm=length[q], vdd=vdd[q], vth=vth[q]
                ),
                load[q],
                ramp[q],
            )
            assert got[q] == pytest.approx(want, rel=1e-12)

    def test_stacked_values_cached(self):
        tables = default_tables()
        pairs = ((GateType.NAND, 2),)
        assert tables.stacked_values("ramp", pairs) is tables.stacked_values(
            "ramp", pairs
        )


class TestPropagateWidthGrid:
    def test_matches_per_delay_array_form(self):
        samples = np.geomspace(0.5, 400.0, 10)
        delays = np.array([0.0, 3.0, 17.5, 90.0, 240.0])
        grid = propagate_width_grid(samples, delays)
        assert grid.shape == (delays.size, samples.size)
        for row, delay in enumerate(delays):
            np.testing.assert_array_equal(
                grid[row], propagate_width_array(samples, float(delay))
            )

    def test_rejects_negative_inputs(self):
        with pytest.raises(TechnologyError):
            propagate_width_grid(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(TechnologyError):
            propagate_width_grid(np.array([1.0]), np.array([-1.0]))


class TestVectorizedReductions:
    def test_eq3_eq4_reductions_match_report_view(self, c432):
        """gate_contributions / total_unreliability on the dense matrix
        agree with the dict-backed UnreliabilityReport totals."""
        from repro.core.aserta import AsertaAnalyzer, AsertaConfig
        from repro.core.unreliability import (
            gate_contributions,
            total_unreliability,
        )

        analyzer = AsertaAnalyzer(c432, AsertaConfig(n_vectors=300, seed=2))
        report = analyzer.analyze()
        assert report.masking.arrays is not None
        idx = analyzer.indexed
        from repro.tech.library import ParameterAssignment

        sizes = analyzer._sizes_array(ParameterAssignment())
        contributions = gate_contributions(
            sizes, report.masking.arrays.expected
        )
        for row in idx.gate_rows:
            entry = report.unreliability.per_gate[idx.order[row]]
            assert contributions[row] == pytest.approx(
                entry.contribution, rel=1e-9, abs=1e-12
            )
        assert total_unreliability(contributions) == pytest.approx(
            report.total, rel=1e-9
        )


class TestSensitizationMatrix:
    def test_densifies_existing_estimate(self, c17):
        paths = sensitization_probabilities(c17, 400, seed=5)
        dense = sensitization_matrix(c17, sensitized_paths=paths)
        idx = c17.indexed()
        assert dense.shape == (idx.n_signals, idx.n_outputs)
        for name, row_map in paths.items():
            for output, p in row_map.items():
                assert dense[idx.index[name], idx.output_col[output]] == p
        # Everything not in the sparse estimate is zero.
        assert dense.sum() == pytest.approx(
            sum(p for row in paths.values() for p in row.values())
        )

    def test_simulates_when_no_estimate_given(self, c17):
        dense = sensitization_matrix(c17, n_vectors=400, seed=5)
        paths = sensitization_probabilities(c17, 400, seed=5)
        np.testing.assert_array_equal(
            dense, sensitization_matrix(c17, sensitized_paths=paths)
        )
