"""Shared fixtures for the test suite.

Conventions: tests use small vector counts and the shared process-wide
technology tables so the whole suite stays fast; experiments that need
the paper-scale protocol sizes live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.circuit.gate import GateType
from repro.circuit.iscas85 import iscas85_circuit
from repro.circuit.netlist import Circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.tech.library import ParameterAssignment
from repro.tech.table_builder import default_tables


@pytest.fixture(scope="session")
def tables():
    """The shared technology tables (built once per test session)."""
    return default_tables()


@pytest.fixture()
def c17() -> Circuit:
    return iscas85_circuit("c17")


@pytest.fixture(scope="session")
def c432() -> Circuit:
    return iscas85_circuit("c432")


@pytest.fixture()
def chain4() -> Circuit:
    """PI -> four inverters -> PO (no reconvergence, single path)."""
    circuit = Circuit("chain4")
    previous = circuit.add_input("a")
    for index in range(4):
        previous = circuit.add_gate(f"n{index}", GateType.NOT, [previous])
    circuit.mark_output(previous)
    circuit.validate()
    return circuit


@pytest.fixture()
def diamond() -> Circuit:
    """Classic reconvergent diamond: a -> (top, bottom) -> out."""
    circuit = Circuit("diamond")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    root = circuit.add_gate("root", GateType.AND, [a, b])
    top = circuit.add_gate("top", GateType.NOT, [root])
    bottom = circuit.add_gate("bottom", GateType.BUF, [root])
    out = circuit.add_gate("out", GateType.NAND, [top, bottom])
    circuit.mark_output(out)
    circuit.validate()
    return circuit


@pytest.fixture()
def two_output() -> Circuit:
    """Two outputs sharing a cone (exercises per-output bookkeeping)."""
    circuit = Circuit("two_output")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    c = circuit.add_input("c")
    shared = circuit.add_gate("shared", GateType.OR, [a, b])
    left = circuit.add_gate("left", GateType.AND, [shared, c])
    right = circuit.add_gate("right", GateType.NOR, [shared, a])
    circuit.mark_output(left)
    circuit.mark_output(right)
    circuit.validate()
    return circuit


@pytest.fixture(scope="session")
def c17_analyzer() -> AsertaAnalyzer:
    return AsertaAnalyzer(
        iscas85_circuit("c17"), AsertaConfig(n_vectors=2000, seed=9)
    )


@pytest.fixture(scope="session")
def c432_analyzer(c432) -> AsertaAnalyzer:
    return AsertaAnalyzer(c432, AsertaConfig(n_vectors=1500, seed=9))


@pytest.fixture()
def nominal() -> ParameterAssignment:
    return ParameterAssignment()
