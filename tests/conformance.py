"""Reusable reference-vs-fast conformance harness.

Every fast path in the repo is gated by a differential against its slow
reference: the vectorized masking sweep against the dict walk, the
batched structural estimator against the event-driven one, the
level-batched matcher against the per-gate walk, and — since the fused
sweep plan landed — every registered array backend against the unfused
NumPy loop.  The assertions those suites share live here, so
``test_differential``, ``test_batched_core``, ``test_engine_structural``
and the backend matrix (``test_conformance_matrix``) state one contract
in one place.

Comparison discipline:

* ``tolerance == 0.0`` means *bitwise* — ``np.testing.assert_array_equal``,
  no epsilon.  The NumPy backend and every batched/serial pair are held
  to this.
* a positive tolerance is the backend's own declaration (made at
  registration, see :func:`repro.backend.register_backend`); the
  comparison uses it for both ``rtol`` and ``atol``.

This module is deliberately not named ``test_*``: pytest never collects
it, test files import it (the ``tests/`` directory is on ``sys.path``
under pytest's rootdir import mode).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, get_backend
from repro.backend.base import ArrayBackend
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.iscas85 import iscas85_circuit, iscas85_names
from repro.core.electrical_masking import (
    default_sample_widths,
    default_sample_widths_batch,
    electrical_masking,
    electrical_masking_many,
)
from repro.core.matching import MatchingEngine
from repro.engine.structural import (
    structural_matrix_batched,
    structural_matrix_event,
)
from repro.tech.electrical_view import (
    batched_electrical_arrays,
    stack_cell_param_arrays,
)
from repro.tech.library import CellParams, ParameterAssignment

#: Reassociation noise bound for comparisons that cross a float
#: reduction order change (energy/area/cost); everything structural is
#: held to exact equality instead.
RTOL = 1e-9

#: Generator-family circuits for the conformance matrix — one per
#: flavor plus a deep chain (the regime where Equation-2 denominators
#: underflow and routes get dropped).
CONFORMANCE_SPECS = [
    GeneratorSpec("conf-control", 6, 3, 40, 5, seed=2, flavor="control"),
    GeneratorSpec("conf-alu", 8, 4, 70, 6, seed=17, flavor="alu"),
    GeneratorSpec("conf-parity", 5, 2, 30, 4, seed=33, flavor="parity"),
    GeneratorSpec("conf-deep", 4, 2, 48, 12, seed=71, flavor="control"),
]

#: The full conformance circuit axis: every bundled ISCAS-85 netlist
#: plus the generator families.
CONFORMANCE_CIRCUITS = list(iscas85_names()) + [
    spec.name for spec in CONFORMANCE_SPECS
]


def conformance_circuit(name: str):
    """Materialize one circuit of the conformance axis by name."""
    for spec in CONFORMANCE_SPECS:
        if spec.name == name:
            return generate_circuit(spec)
    return iscas85_circuit(name)


def mixed_assignment(circuit, seed: int) -> ParameterAssignment:
    """A non-uniform assignment hitting several table cells per axis."""
    rng = np.random.default_rng(seed)
    assignment = ParameterAssignment()
    for gate in circuit.gates():
        if rng.random() < 0.5:
            continue
        assignment.set(
            gate.name,
            CellParams(
                size=float(rng.choice([0.5, 1.0, 2.0, 3.0])),
                length_nm=float(rng.choice([70.0, 100.0, 150.0])),
                vdd=float(rng.choice([0.8, 1.0, 1.2])),
                vth=float(rng.choice([0.2, 0.3])),
            ),
        )
    return assignment


def mixed_assignments(circuit, seed: int, count: int) -> list[ParameterAssignment]:
    """A population of non-uniform assignments (sparser overrides than
    :func:`mixed_assignment` so lanes differ from each other)."""
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(count):
        assignment = ParameterAssignment()
        for gate in circuit.gates():
            if rng.random() < 0.4:
                continue
            assignment.set(
                gate.name,
                CellParams(
                    size=float(rng.choice([0.5, 1.0, 2.0, 3.0])),
                    length_nm=float(rng.choice([70.0, 100.0, 150.0])),
                    vdd=float(rng.choice([0.8, 1.0, 1.2])),
                    vth=float(rng.choice([0.2, 0.3])),
                ),
            )
        out.append(assignment)
    return out


# ---------------------------------------------------------------------------
# Tolerance-aware array comparison (the backend contract)
# ---------------------------------------------------------------------------


def assert_conforms(
    actual: np.ndarray,
    reference: np.ndarray,
    tolerance: float,
    context: str = "",
) -> None:
    """Backend conformance: bitwise at tolerance 0.0, declared epsilon
    otherwise (applied as both ``rtol`` and ``atol``)."""
    if tolerance == 0.0:
        np.testing.assert_array_equal(actual, reference, err_msg=context)
    else:
        np.testing.assert_allclose(
            actual, reference, rtol=tolerance, atol=tolerance,
            err_msg=context,
        )


def backend_params() -> list:
    """Pytest params for the array-backend axis.

    Every registered backend runs; the JIT (numba) leg is emitted as a
    *visible skip* when the import gate closed — the CI matrix must
    show the leg was considered, never silently shrink.
    """
    registered = available_backends()
    params = [pytest.param(name, id=f"backend-{name}") for name in registered]
    if "numba" not in registered:
        params.append(
            pytest.param(
                "numba",
                id="backend-numba",
                marks=pytest.mark.skip(
                    reason="numba not importable: JIT backend leg skipped"
                ),
            )
        )
    return params


# ---------------------------------------------------------------------------
# Section-3.2 sweep: fused backend vs. the unfused reference loop
# ---------------------------------------------------------------------------


def assert_fused_sweep_conforms_single(
    analyzer, assignment, backend: ArrayBackend | str
) -> None:
    """One-candidate path: the fused plan under ``backend`` against the
    unfused per-level loop, within the backend's declared tolerance."""
    backend = (
        backend if isinstance(backend, ArrayBackend) else get_backend(backend)
    )
    circuit = analyzer.circuit
    elec = analyzer.electrical_view(assignment)
    samples = default_sample_widths(elec, analyzer.config.n_sample_widths)
    reference = electrical_masking(
        circuit, elec, sample_widths=samples,
        structure=analyzer.structure, fused=False,
    )
    fused = electrical_masking(
        circuit, elec, sample_widths=samples,
        structure=analyzer.structure, backend=backend,
    )
    assert reference.arrays is not None and fused.arrays is not None
    tol = backend.tolerance
    assert tol is not None, f"backend {backend.name!r} declared no tolerance"
    assert_conforms(
        fused.arrays.ws, reference.arrays.ws, tol,
        f"{circuit.name}: fused ws vs unfused ({backend.name})",
    )
    assert_conforms(
        fused.arrays.expected, reference.arrays.expected, tol,
        f"{circuit.name}: fused expected vs unfused ({backend.name})",
    )


def assert_fused_sweep_conforms_batch(
    analyzer, assignments, backend: ArrayBackend | str
) -> None:
    """Population path: fused ``electrical_masking_many`` under
    ``backend`` against the unfused batch loop."""
    backend = (
        backend if isinstance(backend, ArrayBackend) else get_backend(backend)
    )
    circuit = analyzer.circuit
    idx = analyzer.indexed
    params = stack_cell_param_arrays(idx, assignments)
    arrays = batched_electrical_arrays(
        circuit, analyzer.tables, params, charge_fc=analyzer.config.charge_fc
    )
    samples = default_sample_widths_batch(
        idx,
        arrays["delay_ps"],
        arrays["generated_width_ps"],
        analyzer.config.n_sample_widths,
    )
    reference = electrical_masking_many(
        analyzer.structure,
        arrays["delay_ps"],
        arrays["generated_width_ps"],
        samples,
        fused=False,
    )
    fused = electrical_masking_many(
        analyzer.structure,
        arrays["delay_ps"],
        arrays["generated_width_ps"],
        samples,
        backend=backend,
    )
    tol = backend.tolerance
    assert tol is not None, f"backend {backend.name!r} declared no tolerance"
    assert_conforms(
        fused, reference, tol,
        f"{circuit.name}: fused batch expected vs unfused ({backend.name})",
    )


# ---------------------------------------------------------------------------
# Masking sweep: vectorized array core vs. the scalar dict reference
# ---------------------------------------------------------------------------


def assert_masking_results_agree(vectorized, reference, rtol=RTOL) -> None:
    """Sample widths, per-(gate, output) tables and expected widths of
    the array pass against the scalar dict walk."""
    np.testing.assert_allclose(
        vectorized.sample_widths, reference.sample_widths, rtol=0
    )
    assert set(reference.tables) == set(vectorized.tables)
    for gate, row in reference.tables.items():
        assert set(row) == set(vectorized.tables[gate]), gate
        for output, table in row.items():
            np.testing.assert_allclose(
                vectorized.tables[gate][output], table,
                rtol=rtol, atol=1e-15, err_msg=f"{gate}->{output}",
            )
    assert set(reference.expected) == set(vectorized.expected)
    for gate, row in reference.expected.items():
        assert set(row) == set(vectorized.expected[gate]), gate
        for output, width in row.items():
            assert vectorized.expected[gate][output] == pytest.approx(
                width, rel=rtol, abs=1e-15
            ), (gate, output)


def assert_reports_agree(arrays_report, reference_report, rtol=RTOL) -> None:
    """Full ``analyze`` reports: total, per-gate sizes, generated widths
    and contributions of the array engine against the reference engine."""
    assert arrays_report.total == pytest.approx(
        reference_report.total, rel=rtol
    )
    ref_gates = reference_report.unreliability.per_gate
    arr_gates = arrays_report.unreliability.per_gate
    assert set(ref_gates) == set(arr_gates)
    for name, entry in ref_gates.items():
        got = arr_gates[name]
        assert got.size == entry.size
        assert got.generated_width_ps == pytest.approx(
            entry.generated_width_ps, rel=rtol, abs=1e-15
        )
        assert set(got.widths_by_output) == set(entry.widths_by_output)
        assert got.contribution == pytest.approx(
            entry.contribution, rel=rtol, abs=1e-15
        )


# ---------------------------------------------------------------------------
# Structural engine: batched fault-site sweep vs. event-driven walk
# ---------------------------------------------------------------------------


def assert_structural_bit_identical(circuit, n_vectors: int, seed: int) -> None:
    """Both structural estimators simulate the same packed vectors, so
    every ``P_ij`` must be *bit-identical* — no tolerance."""
    event = structural_matrix_event(circuit, n_vectors, seed=seed)
    batched = structural_matrix_batched(circuit, n_vectors, seed=seed)
    np.testing.assert_array_equal(batched, event)


# ---------------------------------------------------------------------------
# Matcher: level-batched schedule vs. per-gate walk
# ---------------------------------------------------------------------------


def make_matching_engines(circuit, library):
    """The (per-gate, level-batched) engine pair under one library."""
    return (
        MatchingEngine(circuit, library, level_batched=False),
        MatchingEngine(circuit, library, level_batched=True),
    )


def assert_matcher_states_equal(a, b, context: str = "") -> None:
    """Matched states must be bitwise identical: same cells, same input
    capacitances, same supplies."""
    np.testing.assert_array_equal(a.cell_idx, b.cell_idx, err_msg=context)
    np.testing.assert_array_equal(a.input_cap, b.input_cap, err_msg=context)
    np.testing.assert_array_equal(a.vdd, b.vdd, err_msg=context)
