"""Tests for logical masking (Equation 2) and the electrical-masking pass,
including the paper's Lemma 1 as a property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gate import GateType
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.netlist import Circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.electrical_masking import (
    default_sample_widths,
    electrical_masking,
)
from repro.core.masking import (
    propagation_shares,
    sensitization_to_input,
    verify_share_identity,
)
from repro.errors import AnalysisError
from repro.logicsim.probability import static_probabilities
from repro.logicsim.sensitization import sensitization_probabilities
from repro.tech.library import ParameterAssignment


class TestSensitizationToInput:
    def test_and_gate_uses_other_inputs_one_probability(self, two_output):
        probs = static_probabilities(two_output)
        s = sensitization_to_input(two_output, probs, "shared", "left")
        assert s == pytest.approx(probs["c"])

    def test_nor_gate_uses_zero_probability(self, two_output):
        probs = static_probabilities(two_output)
        s = sensitization_to_input(two_output, probs, "shared", "right")
        assert s == pytest.approx(1.0 - probs["a"])

    def test_single_input_always_sensitized(self, chain4):
        probs = static_probabilities(chain4)
        assert sensitization_to_input(chain4, probs, "n0", "n1") == 1.0

    def test_xor_always_sensitized(self):
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        y = circuit.add_gate("y", GateType.XOR, [a, b])
        circuit.mark_output(y)
        probs = static_probabilities(circuit, 0.9)
        assert sensitization_to_input(circuit, probs, "a", "y") == 1.0

    def test_non_fanin_rejected(self, chain4):
        probs = static_probabilities(chain4)
        with pytest.raises(AnalysisError):
            sensitization_to_input(chain4, probs, "n0", "n3")


class TestEquationTwo:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_share_identity_holds(self, seed):
        """The paper's stated normalization: sum_s pi_isj P_sj = P_ij."""
        spec = GeneratorSpec("eq2", 6, 3, 50, 5, seed=seed)
        circuit = generate_circuit(spec)
        probs = static_probabilities(circuit)
        paths = sensitization_probabilities(circuit, 600, seed=seed)
        checked = 0
        for gate in circuit.gates():
            for out in circuit.outputs:
                total, p_ij = verify_share_identity(
                    circuit, probs, paths, gate.name, out
                )
                if total > 0.0:  # identity applies when a route exists
                    assert total == pytest.approx(p_ij, rel=1e-9)
                    checked += 1
        assert checked > 0

    def test_shares_empty_when_unreachable(self, two_output):
        probs = static_probabilities(two_output)
        paths = sensitization_probabilities(two_output, 400, seed=1)
        assert propagation_shares(two_output, probs, paths, "c", "right") == {}

    def test_shares_nonnegative_and_route_restricted(self, c432):
        probs = static_probabilities(c432)
        paths = sensitization_probabilities(c432, 500, seed=2)
        some = 0
        for gate in list(c432.gates())[:40]:
            for out in c432.outputs:
                shares = propagation_shares(c432, probs, paths, gate.name, out)
                for successor, value in shares.items():
                    assert value >= 0.0
                    assert successor in c432.fanouts(gate.name)
                some += len(shares)
        assert some > 0


class TestElectricalMaskingPass:
    def _run(self, circuit, n_vectors=500, seed=3, n_samples=10):
        analyzer = AsertaAnalyzer(
            circuit, AsertaConfig(n_vectors=n_vectors, seed=seed)
        )
        elec = analyzer.electrical_view(ParameterAssignment())
        samples = default_sample_widths(elec, n_samples)
        result = electrical_masking(
            circuit, elec, analyzer.probabilities,
            analyzer.sensitized_paths, samples,
        )
        return analyzer, elec, result

    def test_po_gate_table_is_identity(self, c17):
        __, elec, result = self._run(c17)
        for out in c17.outputs:
            np.testing.assert_allclose(
                result.tables[out][out], result.sample_widths
            )
            assert result.expected[out][out] == pytest.approx(
                elec.generated_width_ps[out]
            )

    def test_expected_widths_bounded_by_generated(self, c17):
        """No pass can widen a glitch (Equation 1 never amplifies) and
        probabilistic weighting only shrinks expectations."""
        __, elec, result = self._run(c17)
        for gate in c17.gates():
            for out, value in result.expected[gate.name].items():
                assert value <= elec.generated_width_ps[gate.name] + 1e-6

    def test_lemma1_wide_glitch(self, c432):
        """Lemma 1: the widest sample arrives with expected width
        ww * P_ij (up to interpolation in the final lookup)."""
        analyzer, elec, result = self._run(c432, n_vectors=1500)
        wide = result.sample_widths[-1]
        paths = analyzer.sensitized_paths
        checked = 0
        for gate in c432.gates():
            if c432.is_output(gate.name):
                continue
            for out, table in result.tables.get(gate.name, {}).items():
                p_ij = paths[gate.name].get(out, 0.0)
                if p_ij > 0.0:
                    assert table[-1] == pytest.approx(wide * p_ij, rel=1e-6)
                    checked += 1
        assert checked > 50

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_lemma1_on_random_circuits(self, seed):
        spec = GeneratorSpec("lem", 5, 2, 30, 4, seed=seed)
        circuit = generate_circuit(spec)
        analyzer = AsertaAnalyzer(
            circuit, AsertaConfig(n_vectors=400, seed=seed)
        )
        elec = analyzer.electrical_view(ParameterAssignment())
        samples = default_sample_widths(elec, 8)
        result = electrical_masking(
            circuit, elec, analyzer.probabilities,
            analyzer.sensitized_paths, samples,
        )
        wide = samples[-1]
        for gate in circuit.gates():
            if circuit.is_output(gate.name):
                continue
            for out, table in result.tables.get(gate.name, {}).items():
                p_ij = analyzer.sensitized_paths[gate.name].get(out, 0.0)
                if p_ij > 0.0:
                    assert table[-1] == pytest.approx(wide * p_ij, rel=1e-6)

    def test_sample_widths_must_increase(self, c17, c17_analyzer):
        elec = c17_analyzer.electrical_view(ParameterAssignment())
        with pytest.raises(AnalysisError):
            electrical_masking(
                c17, elec, c17_analyzer.probabilities,
                c17_analyzer.sensitized_paths, np.array([5.0, 5.0]),
            )

    def test_default_sample_widths_span_regimes(self, c17, c17_analyzer):
        elec = c17_analyzer.electrical_view(ParameterAssignment())
        samples = default_sample_widths(elec, 10)
        assert len(samples) == 10
        assert samples[0] <= min(elec.delay_ps.values())
        assert samples[-1] >= 2.0 * max(elec.delay_ps.values())
        assert samples[-1] >= max(elec.generated_width_ps.values())
