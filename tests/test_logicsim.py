"""Tests for packed vectors, the bit-parallel simulator, probabilities
and the P_ij sensitization estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gate import GateType
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.logicsim.bitsim import BitParallelSimulator
from repro.logicsim.probability import (
    simulated_probabilities,
    static_probabilities,
    switching_activities,
)
from repro.logicsim.sensitization import (
    observability,
    sensitization_probabilities,
)
from repro.logicsim.vectors import (
    lane_mask,
    pack_vectors,
    popcount,
    random_input_words,
    unpack_words,
    word_count,
)


class TestVectors:
    def test_word_count(self):
        assert word_count(1) == 1
        assert word_count(64) == 1
        assert word_count(65) == 2

    def test_lane_mask_counts(self):
        mask = lane_mask(70)
        assert popcount(mask) == 70

    def test_random_words_tail_zeroed(self):
        words = random_input_words(3, 70, seed=1)
        assert words.shape == (3, 2)
        tail = words[:, -1] & ~lane_mask(70)[-1]
        assert not tail.any()

    def test_pack_unpack_round_trip(self):
        rng = np.random.default_rng(0)
        vectors = rng.random((100, 7)) < 0.5
        packed = pack_vectors(vectors)
        unpacked = unpack_words(packed, 100)
        assert np.array_equal(vectors, unpacked)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            word_count(0)
        with pytest.raises(SimulationError):
            random_input_words(0, 10)
        with pytest.raises(SimulationError):
            pack_vectors(np.zeros((0, 3), dtype=bool))


class TestBitSim:
    def test_c17_known_vector(self, c17):
        sim = BitParallelSimulator(c17)
        values = sim.simulate_one(
            {"1": True, "2": True, "3": False, "6": True, "7": False}
        )
        # Hand-computed c17 response.
        assert values["10"] is (not (True and False))
        assert values["11"] is (not (False and True))
        assert values["22"] == (not (values["10"] and values["16"]))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300),
           vec_seed=st.integers(min_value=0, max_value=300))
    def test_bitparallel_matches_scalar(self, seed, vec_seed):
        """64-lane simulation agrees with one-vector-at-a-time simulation."""
        spec = GeneratorSpec("eq", 6, 3, 40, 5, seed=seed)
        circuit = generate_circuit(spec)
        sim = BitParallelSimulator(circuit)
        n_vectors = 8
        inputs = random_input_words(6, n_vectors, seed=vec_seed)
        values = sim.simulate(inputs)
        booleans = unpack_words(inputs, n_vectors)
        for v in range(n_vectors):
            assignment = {
                name: bool(booleans[v][i])
                for i, name in enumerate(circuit.inputs)
            }
            scalar = sim.simulate_one(assignment)
            for name in circuit.signal_names():
                lane = bool(
                    int(values[sim.index[name], v // 64]) >> (v % 64) & 1
                )
                assert lane == scalar[name], name

    def test_shape_mismatch_rejected(self, c17):
        sim = BitParallelSimulator(c17)
        with pytest.raises(SimulationError):
            sim.simulate(np.zeros((2, 1), dtype=np.uint64))

    def test_missing_input_rejected(self, c17):
        sim = BitParallelSimulator(c17)
        with pytest.raises(SimulationError):
            sim.simulate_one({"1": True})

    def test_output_values_view(self, c17):
        sim = BitParallelSimulator(c17)
        values, __ = sim.simulate_random(64, seed=0)
        outs = sim.output_values(values)
        assert outs.shape == (2, 1)


class TestStaticProbabilities:
    def test_inverter_chain(self, chain4):
        probs = static_probabilities(chain4, 0.7)
        assert probs["a"] == 0.7
        assert probs["n0"] == pytest.approx(0.3)
        assert probs["n1"] == pytest.approx(0.7)

    def test_and_or_gates(self, two_output):
        probs = static_probabilities(two_output, 0.5)
        assert probs["shared"] == pytest.approx(0.75)  # OR of two 0.5
        assert probs["left"] == pytest.approx(0.375)   # AND with 0.5

    def test_xor_probability(self):
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        y = circuit.add_gate("y", GateType.XOR, [a, b])
        circuit.mark_output(y)
        probs = static_probabilities(circuit, {"a": 0.3, "b": 0.8})
        assert probs["y"] == pytest.approx(0.3 * 0.2 + 0.8 * 0.7)

    def test_exact_on_fanout_free_tree(self):
        """On a tree the independence assumption is exact: compare with
        Monte-Carlo."""
        circuit = Circuit()
        ins = [circuit.add_input(f"i{k}") for k in range(4)]
        left = circuit.add_gate("l", GateType.AND, ins[:2])
        right = circuit.add_gate("r", GateType.OR, ins[2:])
        out = circuit.add_gate("o", GateType.NAND, [left, right])
        circuit.mark_output(out)
        static = static_probabilities(circuit)
        simulated = simulated_probabilities(circuit, 30000, seed=2)
        assert static["o"] == pytest.approx(simulated["o"], abs=0.02)

    def test_invalid_probability_rejected(self, chain4):
        with pytest.raises(SimulationError):
            static_probabilities(chain4, 1.5)

    def test_switching_activities(self):
        acts = switching_activities({"a": 0.5, "b": 1.0})
        assert acts["a"] == pytest.approx(0.5)
        assert acts["b"] == 0.0


class TestSensitization:
    def test_po_diagonal_is_one(self, c17):
        paths = sensitization_probabilities(c17, 500, seed=1)
        for out in c17.outputs:
            assert paths[out][out] == 1.0

    def test_inverter_chain_fully_observable(self, chain4):
        paths = sensitization_probabilities(chain4, 200, seed=1)
        po = chain4.outputs[0]
        for index in range(4):
            assert paths[f"n{index}"][po] == 1.0

    def test_blocked_gate_unobservable(self):
        """A gate ANDed with constant-0 can never be observed."""
        circuit = Circuit()
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        zero = circuit.add_gate("zero", GateType.XOR, [a, a2 := circuit.add_input("a2")])
        victim = circuit.add_gate("victim", GateType.NOT, [b])
        out = circuit.add_gate("out", GateType.AND, [victim, zero])
        circuit.mark_output(out)
        # Force a2 == a so "zero" is 0: use identical columns.
        sim = BitParallelSimulator(circuit)
        inputs = random_input_words(3, 256, seed=3)
        inputs[sim.input_rows.tolist().index(sim.index["a2"])] = inputs[0]
        # Can't force through the public API; instead verify on honest
        # random vectors that P(victim -> out) <= P(zero == 1).
        paths = sensitization_probabilities(circuit, 2000, seed=3)
        probs = simulated_probabilities(circuit, 2000, seed=3)
        assert paths["victim"].get("out", 0.0) <= probs["zero"] + 0.05

    def test_structurally_unreachable_pairs_absent(self, two_output):
        paths = sensitization_probabilities(two_output, 500, seed=1)
        assert "left" not in paths.get("right", {})
        # 'c' feeds only 'left'.
        assert "right" not in paths["c"]

    def test_estimates_close_to_exact_on_diamond(self, diamond):
        """Exact P for the diamond: flipping 'root' always flips 'out'
        (one branch inverts, the other buffers a NAND -> XOR-like)."""
        paths = sensitization_probabilities(diamond, 4000, seed=5)
        # out = NAND(NOT(root), BUF(root)) -- flipping root flips
        # exactly one of the two NAND inputs; compute truth: root=0 ->
        # NAND(1,0)=1; root=1 -> NAND(0,1)=1 ... output constant 1!
        # Glitches on root are therefore logically masked: P ~ 0.
        assert paths["root"].get("out", 0.0) == 0.0

    def test_more_vectors_reduce_noise(self, c432):
        many_a = sensitization_probabilities(c432, 3000, seed=2)
        many_b = sensitization_probabilities(c432, 3000, seed=3)
        pair = next(
            (g.name, out)
            for g in c432.gates()
            for out in c432.outputs
            if 0.2 < many_a[g.name].get(out, 0.0) < 0.8
        )
        gate, out = pair
        spread_many = abs(
            many_a[gate].get(out, 0.0) - many_b[gate].get(out, 0.0)
        )
        assert spread_many < 0.1

    def test_observability_summary(self, c17):
        paths = sensitization_probabilities(c17, 500, seed=1)
        obs = observability(paths)
        assert all(0.0 <= value <= 1.0 for value in obs.values())
        for out in c17.outputs:
            assert obs[out] == 1.0

    def test_simulator_circuit_mismatch_rejected(self, c17, chain4):
        sim = BitParallelSimulator(chain4)
        with pytest.raises(SimulationError):
            sensitization_probabilities(c17, 100, simulator=sim)
