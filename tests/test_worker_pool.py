"""The pre-forked campaign worker pool: lifecycle, resident reuse
across runs, dynamic stealing stats, streaming persistence, measured
telemetry spans, and failure demotion."""

from __future__ import annotations

import os

import pytest

from repro.campaign import (
    AVIONICS,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    WorkerPool,
    WorkerPoolBroken,
    WorkerPoolError,
)
from repro.campaign.runner import clear_analyzer_cache
from repro.telemetry import Telemetry


def pool_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        circuits=("c17", "c432"),
        charges_fc=(4.0, 8.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=200,
        seed=3,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def run_parallel_or_skip(runner: CampaignRunner, **kwargs):
    outcome = runner.run(parallel=True, **kwargs)
    if outcome.mode != "parallel":
        pytest.skip("worker pool unavailable in this sandbox")
    return outcome


def comparable(outcome):
    """Result identity minus ``analyze_runtime_s`` (wall-clock noise)."""
    return [
        (r.digest(), r.unreliability_total, r.fit, r.mission_upset_probability)
        for r in outcome.results
    ]


class TestPoolLifecycle:
    def test_validation(self):
        with pytest.raises(WorkerPoolError):
            WorkerPool(workers=0)

    def test_labels_and_started_flag(self):
        pool = WorkerPool(workers=3)
        assert pool.worker_labels == ("w0", "w1", "w2")
        assert not pool.started
        assert pool.spinup_s == 0.0
        pool.close()  # closing an unstarted pool is fine

    def test_start_is_idempotent_and_measured(self):
        with WorkerPool(workers=2) as pool:
            try:
                first = pool.start()
            except WorkerPoolError:
                pytest.skip("cannot fork in this sandbox")
            assert first > 0.0
            assert pool.started
            assert pool.start() == first  # no second fork
            assert set(pool.preloaded_by_worker) == {"w0", "w1"}

    def test_close_is_idempotent(self):
        pool = WorkerPool(workers=2)
        try:
            pool.start()
        except WorkerPoolError:
            pytest.skip("cannot fork in this sandbox")
        pool.close()
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.start()  # a closed pool stays closed


class TestResidentPool:
    def test_runner_reuses_its_pool_across_runs(self):
        clear_analyzer_cache()
        with CampaignRunner(
            pool_spec(), store=ResultStore(), max_workers=2
        ) as runner:
            first = run_parallel_or_skip(runner)
            assert first.pool_spinup_s > 0.0  # forked inside this run
            pool = runner.pool
            assert pool is not None and pool.started
            runner.store = ResultStore()  # fresh store: same work again
            second = run_parallel_or_skip(runner)
            assert runner.pool is pool  # same resident pool
            assert second.pool_spinup_s == 0.0  # spin-up amortized away
            assert second.computed == pool_spec().size()
        assert runner.pool is None  # close() tore the owned pool down
        clear_analyzer_cache()

    def test_shared_pool_is_not_closed_by_runner(self):
        spec = pool_spec()
        pool = WorkerPool(workers=2, cache_dir=spec.cache_dir)
        try:
            pool.start()
        except WorkerPoolError:
            pytest.skip("cannot fork in this sandbox")
        with pool:
            with CampaignRunner(
                spec, store=ResultStore(), max_workers=2, pool=pool
            ) as first_runner:
                a = run_parallel_or_skip(first_runner)
            assert pool.started  # caller owns the lifetime, not the runner
            with CampaignRunner(
                spec, store=ResultStore(), max_workers=2, pool=pool
            ) as second_runner:
                b = run_parallel_or_skip(second_runner)
            assert a.pool_spinup_s == 0.0  # started before either run
            assert b.pool_spinup_s == 0.0
            assert comparable(a) == comparable(b)

    def test_resident_pool_waives_auto_mode_threshold(self, monkeypatch):
        """Auto mode refuses small grids because pool spin-up dominates
        them — but a resident, already-started pool has no spin-up left
        to pay, so it is used (given real CPUs to use it on)."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        spec = pool_spec()
        store = ResultStore()
        with CampaignRunner(spec, store=store, max_workers=2) as runner:
            units = runner._pending_units(list(spec.scenarios()))
            assert units < runner.parallel_min_units  # below the threshold
            cold = runner.run()  # auto: serial, pool never started
            assert cold.mode == "serial"
            try:
                runner.pool = WorkerPool(2, cache_dir=spec.cache_dir)
                runner._owns_pool = True
                runner.pool.start()
            except WorkerPoolError:
                pytest.skip("cannot fork in this sandbox")
            runner.store = ResultStore()
            warm = runner.run()  # auto again: resident pool wins now
            assert warm.mode == "parallel"


class TestStreamingAndStats:
    def test_parallel_batches_stream_into_store(self, tmp_path):
        """Every freshly computed result is persisted by the time run()
        returns, and parallel batch stats carry the pool's measured
        stealing/shipping fields keyed by stable worker labels."""
        clear_analyzer_cache()
        spec = pool_spec()
        store = ResultStore(tmp_path / "store.jsonl")
        with CampaignRunner(spec, store=store, max_workers=2) as runner:
            outcome = run_parallel_or_skip(runner)
        assert len(ResultStore(tmp_path / "store.jsonl")) == spec.size()
        labels = set()
        for stats in outcome.batch_stats:
            assert stats["worker"] in ("w0", "w1")
            labels.add(stats["worker"])
            assert stats["steal_wait_ns"] >= 0
            assert stats["sent_at_ns"] <= stats["received_at_ns"]
            assert stats["ended_at_ns"] <= stats["sent_at_ns"]
        assert labels  # at least one worker computed something
        builds = outcome.analyzer_builds_by_worker()
        assert set(builds) <= {"w0", "w1"}
        clear_analyzer_cache()

    def test_serial_batches_are_labeled_main(self):
        outcome = CampaignRunner(pool_spec(), store=ResultStore()).run(
            parallel=False
        )
        assert set(outcome.analyzer_builds_by_worker()) == {"main"}

    def test_measured_spans_replace_reconstructed_ones(self):
        """The traced parallel run records *measured* pool_spinup /
        steal / stream_recv spans; the reconstructed result_recv
        estimate is gone."""
        tel = Telemetry()
        spec = pool_spec(telemetry=tel)
        with CampaignRunner(spec, store=ResultStore(), max_workers=2) as r:
            run_parallel_or_skip(r)
        names = {span.name for span in tel.tracer.spans()}
        assert "campaign.pool_spinup" in names  # pool started in-run
        assert "campaign.steal" in names
        assert "campaign.stream_recv" in names
        assert "campaign.result_recv" not in names
        spans = {span.name: span for span in tel.tracer.spans()}
        assert spans["campaign.steal"].attrs["worker"].startswith("w")

    def test_resident_pool_records_no_spinup_span(self):
        tel = Telemetry()
        spec = pool_spec(telemetry=tel)
        with CampaignRunner(spec, store=ResultStore(), max_workers=2) as r:
            run_parallel_or_skip(r)  # forks: spinup span recorded once
            before = sum(
                1 for s in tel.tracer.spans()
                if s.name == "campaign.pool_spinup"
            )
            r.store = ResultStore()
            run_parallel_or_skip(r)  # resident: no new spinup span
            after = sum(
                1 for s in tel.tracer.spans()
                if s.name == "campaign.pool_spinup"
            )
        assert before == after == 1


class TestFailureModes:
    def test_worker_exception_reraises_in_parent(self):
        spec = pool_spec(circuits=("c17",), charges_fc=(4.0, 8.0))
        runner = CampaignRunner(spec, store=ResultStore(), max_workers=2)
        batches = runner._batches(list(spec.scenarios()), workers=2)
        group, config, items, cache_dir = batches[0]
        bogus = (("no-such-circuit",) + group[1:], config, items, cache_dir)
        with WorkerPool(workers=2) as pool:
            try:
                pool.start()
            except WorkerPoolError:
                pytest.skip("cannot fork in this sandbox")
            with pytest.raises(Exception) as excinfo:
                list(pool.run_batches([bogus]))
            assert "no-such-circuit" in str(excinfo.value)
            # The pool survives an analysis error: the workers are
            # alive and the next (valid) batch still runs.
            index, results, stats = next(iter(pool.run_batches(batches[:1])))
            assert index == 0 and results

    def test_dead_pool_demotes_remaining_batches_to_serial(self):
        """A pool whose workers died mid-campaign finishes the run
        in-process instead of failing it (or recomputing streamed
        results)."""
        clear_analyzer_cache()
        spec = pool_spec()
        pool = WorkerPool(workers=2, cache_dir=spec.cache_dir)
        try:
            pool.start()
        except WorkerPoolError:
            pytest.skip("cannot fork in this sandbox")
        for process in pool._processes:
            process.terminate()
        for process in pool._processes:
            process.join(timeout=10.0)
        store = ResultStore()
        with CampaignRunner(
            spec, store=store, max_workers=2, pool=pool
        ) as runner:
            outcome = runner.run(parallel=True)
            assert runner.pool is None  # broken pool was dropped
        assert outcome.computed == spec.size()
        assert len(store) == spec.size()
        serial = CampaignRunner(spec, store=ResultStore()).run(parallel=False)
        assert comparable(outcome) == comparable(serial)
        clear_analyzer_cache()

    def test_run_batches_on_dead_pool_raises_broken(self):
        pool = WorkerPool(workers=1)
        try:
            pool.start()
        except WorkerPoolError:
            pytest.skip("cannot fork in this sandbox")
        for process in pool._processes:
            process.terminate()
        for process in pool._processes:
            process.join(timeout=10.0)
        spec = pool_spec(circuits=("c17",))
        runner = CampaignRunner(spec, store=ResultStore())
        batches = runner._batches(list(spec.scenarios()), workers=1)
        with pytest.raises(WorkerPoolBroken):
            list(pool.run_batches(batches))
