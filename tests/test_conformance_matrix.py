"""The backend-conformance matrix (fused sweep plan gate).

Every axis that promises equivalence with a reference implementation is
re-asserted here through one shared harness (:mod:`conformance`):

* **array backend** — the fused Section-3.2 sweep plan under every
  registered backend against the unfused reference loop, across *all*
  bundled ISCAS-85 circuits and the generator families, one-candidate
  and population paths both.  The NumPy backend is held to bitwise
  identity (tolerance 0.0); other backends compare within the tolerance
  they declared at registration.  An unimportable JIT backend shows as
  a skip, never as silent shrinkage of the matrix.
* **engine** — ``analyze(engine="array")`` against the scalar
  reference walk (small circuits: the dict walk is the slow seed path).
* **structural_engine** — the config axis end-to-end: an analyzer
  pinned to the event-driven estimator produces the same ``P_ij`` and
  the same totals as the batched default, bit for bit.
* **level_batched** — the level-batched matcher schedule against the
  per-gate walk.

Registry contract tests live at the bottom: tolerance declaration is
mandatory, unknown backends fail loudly listing what is registered, and
the environment variable participates in resolution exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance import (
    CONFORMANCE_CIRCUITS,
    CONFORMANCE_SPECS,
    assert_fused_sweep_conforms_batch,
    assert_fused_sweep_conforms_single,
    assert_matcher_states_equal,
    assert_reports_agree,
    backend_params,
    conformance_circuit,
    make_matching_engines,
    mixed_assignment,
    mixed_assignments,
)
from repro.backend import (
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.base import ArrayBackend
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.errors import AnalysisError
from repro.tech.library import CellLibrary

N_VECTORS = 64
SEED = 7

#: Circuits small enough for the scalar dict-walk reference engine.
SMALL_CIRCUITS = ["c17", "c432", "c499"] + [s.name for s in CONFORMANCE_SPECS]


@pytest.fixture(scope="session")
def analyzer_cache():
    """One analyzer per conformance circuit, shared across the matrix
    (the structural simulation is the expensive part; every axis test
    reuses it)."""
    cache: dict[str, AsertaAnalyzer] = {}

    def get(name: str, **overrides) -> AsertaAnalyzer:
        key = name + repr(sorted(overrides.items()))
        analyzer = cache.get(key)
        if analyzer is None:
            analyzer = AsertaAnalyzer(
                conformance_circuit(name),
                AsertaConfig(
                    n_vectors=N_VECTORS, seed=SEED, n_sample_widths=6,
                    **overrides,
                ),
            )
            cache[key] = analyzer
        return analyzer

    return get


class TestArrayBackendAxis:
    """Fused plan vs. unfused loop, full circuit axis, every backend."""

    @pytest.mark.parametrize("backend", backend_params())
    @pytest.mark.parametrize("name", CONFORMANCE_CIRCUITS)
    def test_single_candidate_conforms(self, name, backend, analyzer_cache):
        analyzer = analyzer_cache(name)
        assignment = mixed_assignment(analyzer.circuit, seed=13)
        assert_fused_sweep_conforms_single(analyzer, assignment, backend)

    @pytest.mark.parametrize("backend", backend_params())
    @pytest.mark.parametrize("name", CONFORMANCE_CIRCUITS)
    def test_population_conforms(self, name, backend, analyzer_cache):
        analyzer = analyzer_cache(name)
        assignments = mixed_assignments(analyzer.circuit, seed=11, count=2)
        assert_fused_sweep_conforms_batch(analyzer, assignments, backend)

    @pytest.mark.parametrize("backend", backend_params())
    def test_analyzer_config_selects_backend(self, backend, analyzer_cache):
        """``AsertaConfig(array_backend=...)`` reaches the sweep and
        conforms end-to-end: totals against the default-backend
        analyzer within the declared tolerance."""
        default = analyzer_cache("c432")
        selected = analyzer_cache("c432", array_backend=backend)
        assert selected.backend.name == backend
        assignment = mixed_assignment(selected.circuit, seed=29)
        total = selected.analyze(assignment).total
        reference = default.analyze(assignment).total
        tol = get_backend(backend).tolerance
        if tol == 0.0:
            assert total == reference
        else:
            assert total == pytest.approx(reference, rel=tol, abs=tol)


class TestEngineAxis:
    """Array engine vs. the scalar reference walk (the seed path)."""

    @pytest.mark.parametrize("name", SMALL_CIRCUITS)
    def test_reports_agree(self, name, analyzer_cache):
        analyzer = analyzer_cache(name)
        assignment = mixed_assignment(analyzer.circuit, seed=17)
        assert_reports_agree(
            analyzer.analyze(assignment, engine="array"),
            analyzer.analyze(assignment, engine="reference"),
        )


class TestStructuralEngineAxis:
    """The config axis end-to-end: event-driven vs. batched P_ij."""

    @pytest.mark.parametrize("name", SMALL_CIRCUITS)
    def test_p_matrix_and_totals_bitwise(self, name, analyzer_cache):
        batched = analyzer_cache(name)
        event = analyzer_cache(name, structural_engine="event")
        np.testing.assert_array_equal(event.p_matrix, batched.p_matrix)
        assignment = mixed_assignment(batched.circuit, seed=19)
        assert event.analyze(assignment).total == batched.analyze(
            assignment
        ).total


class TestLevelBatchedAxis:
    """Level-batched matcher schedule vs. the per-gate walk."""

    LIBRARY = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2,))

    @pytest.mark.parametrize("name", SMALL_CIRCUITS)
    def test_match_batch_bitwise(self, name):
        circuit = conformance_circuit(name)
        idx = circuit.indexed()
        rng = np.random.default_rng(23)
        targets = rng.uniform(0.5, 400.0, size=(3, idx.n_signals))
        gate_eng, level_eng = make_matching_engines(circuit, self.LIBRARY)
        assert_matcher_states_equal(
            gate_eng.match_batch(targets, {}, anchor=None),
            level_eng.match_batch(targets, {}, anchor=None),
            name,
        )


class TestBackendRegistry:
    """The registration/resolution contract of :mod:`repro.backend`."""

    def test_numpy_always_registered_and_bitwise(self):
        assert "numpy" in available_backends()
        assert get_backend("numpy").tolerance == 0.0

    def test_unknown_backend_fails_listing_registered(self):
        with pytest.raises(AnalysisError, match="numpy"):
            get_backend("cupy-nonexistent")

    def test_tolerance_declaration_is_mandatory(self):
        class Undeclared(ArrayBackend):
            name = "undeclared-test-backend"
            tolerance = None

        with pytest.raises(AnalysisError, match="tolerance"):
            register_backend(Undeclared())

        class Negative(ArrayBackend):
            name = "negative-test-backend"
            tolerance = -1e-9

        with pytest.raises(AnalysisError, match="tolerance"):
            register_backend(Negative())

    def test_duplicate_registration_rejected_without_replace(self):
        class Impostor(ArrayBackend):
            name = "numpy"
            tolerance = 0.5

        with pytest.raises(AnalysisError, match="registered"):
            register_backend(Impostor())
        # ... and the real backend is untouched.
        assert get_backend("numpy").tolerance == 0.0

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
        with pytest.raises(AnalysisError):
            resolve_backend(None)
        # An explicit name wins over the environment.
        assert resolve_backend("numpy").name == "numpy"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert resolve_backend(None).name == "numpy"

    def test_config_rejects_blank_backend(self):
        with pytest.raises(AnalysisError):
            AsertaConfig(array_backend="   ")

    def test_unknown_backend_fails_at_analyzer_construction(self):
        with pytest.raises(AnalysisError):
            AsertaAnalyzer(
                conformance_circuit("c17"),
                AsertaConfig(n_vectors=32, array_backend="fortran-77"),
            )
