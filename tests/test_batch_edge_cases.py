"""Edge cases of the population entry points (``analyze_many``,
``evaluate_batch``) around the fused sweep plan.

The plan is compiled once per (circuit, backend) and cached on the
masking structure and in the artifact cache — so the cases that could
plausibly poison or bypass that cache are pinned here: degenerate
population sizes, populations larger than the memory-capped chunk,
duplicate candidates sharing lanes, and in-place mutation of an
assignment object between calls (the plan must depend on the netlist
only, never on any assignment it has seen).
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance import mixed_assignments
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.baseline import size_for_speed
from repro.core.cost import CostEvaluator
from repro.errors import AnalysisError
from repro.tech.library import CellParams, ParameterAssignment


@pytest.fixture(scope="module")
def analyzer():
    return AsertaAnalyzer(
        iscas85_circuit("c432"),
        AsertaConfig(n_vectors=128, seed=7, n_sample_widths=6),
    )


@pytest.fixture(scope="module")
def evaluator(analyzer):
    return CostEvaluator(analyzer, size_for_speed(analyzer.circuit))


class TestPopulationSizes:
    def test_empty_population_fails_loudly(self, analyzer, evaluator):
        with pytest.raises(AnalysisError):
            analyzer.analyze_many([])
        with pytest.raises(AnalysisError):
            analyzer.analyze_many(
                params={
                    field: np.empty((0, analyzer.indexed.n_signals))
                    for field in ("size", "length_nm", "vdd", "vth")
                }
            )
        with pytest.raises(AnalysisError):
            evaluator.evaluate_batch([])

    def test_single_lane_equals_serial(self, analyzer, evaluator):
        assignment = mixed_assignments(analyzer.circuit, seed=3, count=1)[0]
        batch = analyzer.analyze_many([assignment])
        assert len(batch) == 1
        assert batch.totals[0] == analyzer.analyze(assignment).total
        total = evaluator.evaluate_batch([assignment])
        assert total.shape == (1,)
        assert total[0] == pytest.approx(
            evaluator.evaluate(assignment).total, rel=1e-9
        )

    def test_population_wider_than_chunk(self, analyzer):
        """``max_batch_bytes=1`` forces one-lane chunks, so every lane
        crosses a chunk boundary; totals must not notice."""
        assignments = mixed_assignments(analyzer.circuit, seed=5, count=6)
        whole = analyzer.analyze_many(assignments)
        sliced = analyzer.analyze_many(assignments, max_batch_bytes=1)
        np.testing.assert_array_equal(sliced.totals, whole.totals)
        for lane, assignment in enumerate(assignments):
            assert whole.totals[lane] == analyzer.analyze(assignment).total


class TestDuplicateCandidates:
    def test_duplicate_lanes_are_bitwise_equal(self, analyzer):
        """The same assignment object in several lanes: all its lanes
        agree with each other and with the serial analysis."""
        a, b = mixed_assignments(analyzer.circuit, seed=9, count=2)
        batch = analyzer.analyze_many([a, b, a, a])
        serial = analyzer.analyze(a).total
        assert batch.totals[0] == serial
        assert batch.totals[2] == serial
        assert batch.totals[3] == serial
        assert batch.totals[1] == analyzer.analyze(b).total


class TestMutationBetweenCalls:
    def test_mutating_a_candidate_does_not_poison_the_plan(self, analyzer):
        """``ParameterAssignment`` is mutable; the compiled plan (and
        the masking structure it hangs off) must be assignment-free, so
        mutating a previously-analyzed object changes *that lane only*
        on the next call — and reverting it restores the original
        totals bit for bit."""
        mutated, control = mixed_assignments(analyzer.circuit, seed=13, count=2)
        gate = next(analyzer.circuit.gates()).name
        original_cell = mutated[gate]
        before = analyzer.analyze_many([mutated, control])
        plan_before = analyzer.sweep_plan

        mutated.set(gate, CellParams(size=3.0, vdd=0.8))
        after = analyzer.analyze_many([mutated, control])
        # The plan is reused, not silently rebuilt per call...
        assert analyzer.sweep_plan is plan_before
        # ... the untouched lane is bit-stable across the mutation...
        assert after.totals[1] == before.totals[1]
        # ... the mutated lane tracks the mutation (fresh serial run)...
        assert after.totals[0] == analyzer.analyze(mutated).total
        assert after.totals[0] != before.totals[0]
        # ... and reverting restores the original totals exactly.
        mutated.set(gate, original_cell)
        reverted = analyzer.analyze_many([mutated, control])
        np.testing.assert_array_equal(reverted.totals, before.totals)

    def test_mutation_between_param_array_calls(self, analyzer):
        """The raw ``params`` entry point: mutating the caller's arrays
        in place between calls must likewise only affect later calls'
        inputs, never cached state."""
        from repro.tech.electrical_view import stack_cell_param_arrays

        assignments = mixed_assignments(analyzer.circuit, seed=17, count=2)
        params = stack_cell_param_arrays(analyzer.indexed, assignments)
        before = analyzer.analyze_many(params=params)
        row = analyzer.indexed.gate_rows[0]
        params["size"][0, row] *= 2.0
        after = analyzer.analyze_many(params=params)
        assert after.totals[1] == before.totals[1]
        assert after.totals[0] != before.totals[0]
