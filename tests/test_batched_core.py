"""Differential tests for the candidate-population (batched) pipeline.

Every batched layer — electrical annotation, continuous-model delays,
static timing, the Section-3.2 masking sweep, ``analyze_many``, batched
matching with and without the delta fast path, and the batched cost —
is compared lane by lane against its one-candidate counterpart.  The
contract is strict: matched cells, unreliability totals and timing are
*bit-identical* (the batched SERTOPT trajectory equivalence rests on
exactly this), while energy/area/cost agree to 1e-9 relative (dense
reductions re-associate the sums).
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance import (
    RTOL,
    assert_matcher_states_equal as _assert_states_equal,
    make_matching_engines as _make_engines,
    mixed_assignments as _mixed_assignments,
)
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.iscas85 import iscas85_circuit, iscas85_names
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.baseline import size_for_speed
from repro.core.cost import CostEvaluator
from repro.core.electrical_masking import (
    default_sample_widths,
    default_sample_widths_batch,
    electrical_masking,
    electrical_masking_many,
)
from repro.core.matching import MatchingEngine
from repro.errors import AnalysisError, OptimizationError
from repro.sta.timing import analyze_timing, analyze_timing_batch
from repro.tech.electrical_view import (
    CircuitElectrical,
    batched_electrical_arrays,
    cell_param_arrays,
    continuous_delay_arrays,
    stack_cell_param_arrays,
)
from repro.tech.library import CellLibrary, ParameterAssignment

SPECS = [
    GeneratorSpec("batch-control", 6, 3, 40, 5, seed=2, flavor="control"),
    GeneratorSpec("batch-alu", 8, 4, 70, 6, seed=17, flavor="alu"),
    GeneratorSpec("batch-parity", 5, 2, 30, 4, seed=33, flavor="parity"),
]
ISCAS = ["c17", "c432", "c499"]


def _circuits():
    for name in ISCAS:
        yield name, iscas85_circuit(name)
    for spec in SPECS:
        yield spec.name, generate_circuit(spec)


@pytest.fixture(
    params=ISCAS + [s.name for s in SPECS],
    ids=ISCAS + [s.name for s in SPECS],
    scope="module",
)
def case(request):
    circuits = dict(_circuits())
    circuit = circuits[request.param]
    analyzer = AsertaAnalyzer(circuit, AsertaConfig(n_vectors=256, seed=7))
    assignments = _mixed_assignments(circuit, seed=11, count=4)
    return circuit, analyzer, assignments


class TestBatchedElectrical:
    def test_table_annotation_lanes_bitwise(self, case):
        circuit, analyzer, assignments = case
        params = stack_cell_param_arrays(circuit.indexed(), assignments)
        batch = batched_electrical_arrays(circuit, analyzer.tables, params)
        for lane, assignment in enumerate(assignments):
            single = analyzer.electrical_view(assignment).arrays()
            for field in ("delay_ps", "generated_width_ps", "node_cap_ff",
                          "static_power_uw", "area_units", "load_ff"):
                np.testing.assert_array_equal(
                    batch[field][lane], single[field], err_msg=field
                )

    def test_continuous_delays_lanes_bitwise(self, case):
        circuit, __a, assignments = case
        idx = circuit.indexed()
        params = stack_cell_param_arrays(idx, assignments)
        batch = continuous_delay_arrays(circuit, params)["delay_ps"]
        for lane, assignment in enumerate(assignments):
            scalar = CircuitElectrical(circuit, assignment, use_tables=False)
            np.testing.assert_array_equal(
                batch[lane], idx.gather(scalar.delay_ps)
            )

    def test_single_lane_equals_population_lane(self, case):
        """Lane values are independent of batch size (the property that
        lets the optimizer mix B=1 and B=16 calls freely)."""
        circuit, analyzer, assignments = case
        idx = circuit.indexed()
        params = stack_cell_param_arrays(idx, assignments)
        batch = batched_electrical_arrays(circuit, analyzer.tables, params)
        solo = batched_electrical_arrays(
            circuit,
            analyzer.tables,
            {field: values[1:2] for field, values in params.items()},
        )
        for field in ("delay_ps", "generated_width_ps", "static_power_uw"):
            np.testing.assert_array_equal(batch[field][1], solo[field][0])


class TestBatchedTiming:
    def test_lanes_match_scalar_walk(self, case):
        circuit, __a, assignments = case
        idx = circuit.indexed()
        params = stack_cell_param_arrays(idx, assignments)
        delays = continuous_delay_arrays(circuit, params)["delay_ps"]
        report = analyze_timing_batch(idx, delays)
        for lane, assignment in enumerate(assignments):
            scalar = analyze_timing(
                circuit,
                CircuitElectrical(circuit, assignment, use_tables=False).delay_ps,
            )
            assert report.delay_ps[lane] == scalar.delay_ps
            for name in scalar.arrival_ps:
                row = idx.index[name]
                assert report.arrival_ps[lane, row] == scalar.arrival_ps[name]
                assert report.required_ps[lane, row] == scalar.required_ps[name]

    def test_negative_delay_rejected(self, c432):
        idx = c432.indexed()
        delays = np.zeros((1, idx.n_signals))
        delays[0, idx.gate_rows[0]] = -1.0
        with pytest.raises(AnalysisError):
            analyze_timing_batch(idx, delays)


class TestBatchedMasking:
    def test_sample_width_rows_bitwise(self, case):
        circuit, analyzer, assignments = case
        idx = circuit.indexed()
        params = stack_cell_param_arrays(idx, assignments)
        arrays = batched_electrical_arrays(circuit, analyzer.tables, params)
        rows = default_sample_widths_batch(
            idx, arrays["delay_ps"], arrays["generated_width_ps"], 10
        )
        for lane, assignment in enumerate(assignments):
            single = default_sample_widths(
                analyzer.electrical_view(assignment), 10
            )
            np.testing.assert_array_equal(rows[lane], single)

    def test_expected_matrix_lanes_bitwise(self, case):
        circuit, analyzer, assignments = case
        idx = circuit.indexed()
        params = stack_cell_param_arrays(idx, assignments)
        arrays = batched_electrical_arrays(circuit, analyzer.tables, params)
        samples = default_sample_widths_batch(
            idx, arrays["delay_ps"], arrays["generated_width_ps"], 10
        )
        expected = electrical_masking_many(
            analyzer.structure,
            arrays["delay_ps"],
            arrays["generated_width_ps"],
            samples,
        )
        for lane, assignment in enumerate(assignments):
            single = electrical_masking(
                circuit,
                analyzer.electrical_view(assignment),
                structure=analyzer.structure,
            )
            assert single.arrays is not None
            np.testing.assert_array_equal(
                expected[lane], single.arrays.expected
            )

    def test_bad_shapes_rejected(self, case):
        circuit, analyzer, __ = case
        idx = circuit.indexed()
        with pytest.raises(AnalysisError):
            electrical_masking_many(
                analyzer.structure,
                np.zeros((2, idx.n_signals + 1)),
                np.zeros((2, idx.n_signals + 1)),
                np.ones((2, 4)),
            )
        with pytest.raises(AnalysisError):
            electrical_masking_many(
                analyzer.structure,
                np.zeros((2, idx.n_signals)),
                np.zeros((2, idx.n_signals)),
                np.ones((2, 4)),  # non-increasing rows
            )


class TestAnalyzeMany:
    def test_totals_bit_consistent_with_analyze(self, case):
        circuit, analyzer, assignments = case
        batch = analyzer.analyze_many(assignments)
        for lane, assignment in enumerate(assignments):
            report = analyzer.analyze(assignment)
            assert batch.totals[lane] == report.total
            assert batch.delay_ps[lane] == analyze_timing(
                circuit, report.electrical.delay_ps
            ).delay_ps

    def test_energy_and_area_close(self, case):
        from repro.power.area import circuit_area
        from repro.power.energy import circuit_energy

        circuit, analyzer, assignments = case
        batch = analyzer.analyze_many(assignments)
        for lane, assignment in enumerate(assignments):
            elec = analyzer.electrical_view(assignment)
            energy = circuit_energy(circuit, elec, analyzer.probabilities)
            assert batch.energy_fj[lane] == pytest.approx(
                energy.total_fj, rel=RTOL
            )
            assert batch.area[lane] == pytest.approx(
                circuit_area(circuit, elec), rel=RTOL
            )

    def test_chunking_changes_nothing(self, case):
        __c, analyzer, assignments = case
        whole = analyzer.analyze_many(assignments)
        chunked = analyzer.analyze_many(assignments, max_batch_bytes=1)
        np.testing.assert_array_equal(whole.totals, chunked.totals)
        np.testing.assert_array_equal(whole.delay_ps, chunked.delay_ps)

    def test_param_arrays_entry_point(self, case):
        circuit, analyzer, assignments = case
        params = stack_cell_param_arrays(circuit.indexed(), assignments)
        by_params = analyzer.analyze_many(params=params)
        by_assignments = analyzer.analyze_many(assignments)
        np.testing.assert_array_equal(by_params.totals, by_assignments.totals)

    def test_exactly_one_input_required(self, case):
        __c, analyzer, assignments = case
        with pytest.raises(AnalysisError):
            analyzer.analyze_many()
        with pytest.raises(AnalysisError):
            analyzer.analyze_many(
                assignments,
                params=stack_cell_param_arrays(
                    analyzer.indexed, assignments
                ),
            )

    def test_reference_fallback_matches(self):
        """``use_tables=False`` analyzers fall back to per-assignment
        analyze() calls with identical totals."""
        circuit = iscas85_circuit("c17")
        analyzer = AsertaAnalyzer(
            circuit, AsertaConfig(n_vectors=256, seed=3, use_tables=False)
        )
        assignments = _mixed_assignments(circuit, seed=5, count=3)
        batch = analyzer.analyze_many(assignments)
        for lane, assignment in enumerate(assignments):
            assert batch.totals[lane] == analyzer.analyze(assignment).total
        with pytest.raises(AnalysisError):
            analyzer.analyze_many(
                params=stack_cell_param_arrays(circuit.indexed(), assignments)
            )


class TestBatchedMatching:
    @pytest.fixture(scope="class")
    def matcher_case(self):
        circuit = iscas85_circuit("c432")
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        baseline = size_for_speed(circuit, library)
        elec = CircuitElectrical(circuit, baseline, use_tables=False)
        engine = MatchingEngine(circuit, library)
        idx = circuit.indexed()
        base_targets = idx.gather(elec.delay_ps)
        ramps = dict(elec.input_ramp_ps)
        return circuit, engine, baseline, base_targets, ramps, idx

    def _target_population(self, base_targets, idx, seed, count):
        rng = np.random.default_rng(seed)
        rows = idx.gate_rows
        targets = np.tile(base_targets, (count, 1))
        for lane in range(count):
            picks = rng.choice(rows, size=max(1, rows.size // 6), replace=False)
            targets[lane, picks] = np.maximum(
                0.5, targets[lane, picks] * rng.uniform(0.4, 3.0, picks.size)
            )
        return targets

    def test_match_batch_equals_serial_match(self, matcher_case):
        circuit, engine, baseline, base_targets, ramps, idx = matcher_case
        targets = self._target_population(base_targets, idx, seed=1, count=5)
        state = engine.match_batch(targets, ramps, anchor=baseline)
        for lane in range(targets.shape[0]):
            serial = engine.match(
                {
                    name: float(targets[lane, idx.index[name]])
                    for name in engine._reverse_order
                },
                ramps,
                anchor=baseline,
            )
            batched = state.assignment(lane, idx.order)
            for name in engine._reverse_order:
                assert batched[name] == serial[name], (lane, name)

    def test_delta_reference_path_identical(self, matcher_case):
        """Matching against a reference state (rescoring only the fan-in
        cone of the changed targets) picks exactly the full-match cells."""
        circuit, engine, baseline, base_targets, ramps, idx = matcher_case
        ref_state = engine.match_batch(
            base_targets[np.newaxis, :], ramps, anchor=baseline
        )
        targets = self._target_population(base_targets, idx, seed=2, count=6)
        full = engine.match_batch(targets, ramps, anchor=baseline)
        delta = engine.match_batch(
            targets,
            ramps,
            anchor=baseline,
            reference=ref_state,
            changed=targets != base_targets[np.newaxis, :],
        )
        np.testing.assert_array_equal(full.cell_idx, delta.cell_idx)
        np.testing.assert_array_equal(full.input_cap, delta.input_cap)

    def test_match_with_timing_batch_equals_serial(self, matcher_case):
        circuit, engine, baseline, base_targets, ramps, idx = matcher_case
        # Aggressively slowed targets force the repair loop to engage.
        targets = self._target_population(base_targets, idx, seed=3, count=4)
        targets[2] = base_targets * 4.0
        cap = analyze_timing(
            circuit, {n: base_targets[idx.index[n]] for n in engine._reverse_order}
        ).delay_ps * 1.25
        state = engine.match_with_timing_batch(
            targets, ramps, cap, anchor=baseline
        )
        for lane in range(targets.shape[0]):
            serial = engine.match_with_timing(
                {
                    name: float(targets[lane, idx.index[name]])
                    for name in engine._reverse_order
                },
                ramps,
                cap,
                anchor=baseline,
            )
            batched = state.assignment(lane, idx.order)
            for name in engine._reverse_order:
                assert batched[name] == serial[name], (lane, name)

    def test_validation(self, matcher_case):
        __c, engine, baseline, base_targets, ramps, idx = matcher_case
        with pytest.raises(OptimizationError):
            engine.match_batch(base_targets, ramps)  # 1-D targets
        with pytest.raises(OptimizationError):
            engine.match_with_timing_batch(
                base_targets[np.newaxis, :], ramps, 0.0
            )
        ref = engine.match_batch(base_targets[np.newaxis, :], ramps)
        with pytest.raises(OptimizationError):
            engine.match_batch(
                base_targets[np.newaxis, :], ramps, reference=ref
            )  # changed mask missing

    def test_param_arrays_match_materialized(self, matcher_case):
        circuit, engine, baseline, base_targets, ramps, idx = matcher_case
        state = engine.match_batch(
            base_targets[np.newaxis, :], ramps, anchor=baseline
        )
        params = state.param_arrays()
        materialized = cell_param_arrays(idx, state.assignment(0, idx.order))
        for field in ("size", "length_nm", "vdd", "vth"):
            np.testing.assert_array_equal(params[field][0], materialized[field])


class TestLevelBatchedMatcher:
    """Level-batched vs per-gate matcher: *exact* differentials.

    The tentpole contract of the level-batched schedule is bitwise
    identity with the per-gate walk — same cells, same capacitances,
    same supplies, no tolerance — across every ISCAS'85 netlist, the
    generator families, and the level-shape edge cases (single-gate
    levels, fan-out-bearing primary outputs, dead levels under the
    dirty wave).
    """

    LIBRARY = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2,))

    def _random_targets(self, circuit, lanes, seed):
        idx = circuit.indexed()
        rng = np.random.default_rng(seed)
        targets = rng.uniform(0.5, 400.0, size=(lanes, idx.n_signals))
        return targets

    @pytest.mark.parametrize("name", iscas85_names())
    def test_all_iscas_bitwise(self, name):
        circuit = iscas85_circuit(name)
        lanes = 4 if circuit.gate_count < 1000 else 2
        targets = self._random_targets(circuit, lanes, seed=13)
        ramps = {}
        anchor = ParameterAssignment()
        gate_eng, level_eng = _make_engines(circuit, self.LIBRARY)
        full_g = gate_eng.match_batch(targets, ramps, anchor=anchor)
        full_l = level_eng.match_batch(targets, ramps, anchor=anchor)
        _assert_states_equal(full_g, full_l, f"{name} full pass")

        # Delta pass against a one-lane reference, mixed sparse deltas.
        base = self._random_targets(circuit, 1, seed=14)[0]
        ref_g = gate_eng.match_batch(base[np.newaxis, :], ramps, anchor=anchor)
        ref_l = level_eng.match_batch(
            base[np.newaxis, :], ramps, anchor=anchor
        )
        _assert_states_equal(ref_g, ref_l, f"{name} reference")
        idx = circuit.indexed()
        rng = np.random.default_rng(15)
        delta_targets = np.tile(base, (lanes, 1))
        for lane in range(lanes):
            picks = rng.choice(
                idx.gate_rows, size=max(1, idx.n_gates // 8), replace=False
            )
            delta_targets[lane, picks] *= rng.uniform(0.4, 2.5, picks.size)
        changed = delta_targets != base[np.newaxis, :]
        delta_g = gate_eng.match_batch(
            delta_targets, ramps, anchor=anchor,
            reference=ref_g, changed=changed,
        )
        delta_l = level_eng.match_batch(
            delta_targets, ramps, anchor=anchor,
            reference=ref_l, changed=changed,
        )
        _assert_states_equal(delta_g, delta_l, f"{name} delta pass")
        # ... and the dirty wave must land on the full recompute exactly.
        full_delta = level_eng.match_batch(
            delta_targets, ramps, anchor=anchor
        )
        _assert_states_equal(delta_l, full_delta, f"{name} wave vs full")

    @pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
    def test_generator_circuits_bitwise(self, spec):
        circuit = generate_circuit(spec)
        targets = self._random_targets(circuit, 5, seed=21)
        gate_eng, level_eng = _make_engines(circuit, self.LIBRARY)
        full_g = gate_eng.match_batch(targets, {}, anchor=None)
        full_l = level_eng.match_batch(targets, {}, anchor=None)
        _assert_states_equal(full_g, full_l, spec.name)

    def test_chain_single_gate_levels(self):
        """A pure inverter chain: every reverse level holds one gate."""
        from repro.circuit.gate import GateType
        from repro.circuit.netlist import Circuit

        circuit = Circuit("chain")
        signal = circuit.add_input("a")
        for step in range(12):
            signal = circuit.add_gate(f"n{step}", GateType.NOT, [signal])
        circuit.mark_output(signal)
        assert int(circuit.indexed().reverse_level.max()) == 12
        targets = self._random_targets(circuit, 6, seed=3)
        gate_eng, level_eng = _make_engines(circuit, self.LIBRARY)
        _assert_states_equal(
            gate_eng.match_batch(targets, {}, anchor=None),
            level_eng.match_batch(targets, {}, anchor=None),
            "chain",
        )

    def test_po_with_fanout_latch_order(self):
        """A primary output that also drives gates: the latch cap must
        add *after* the successor pin caps, in both schedules."""
        from repro.circuit.gate import GateType
        from repro.circuit.netlist import Circuit

        circuit = Circuit("po-fanout")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        mid = circuit.add_gate("mid", GateType.NAND, [a, b])
        circuit.mark_output(mid)  # PO *and* internal driver
        for branch in range(3):
            leaf = circuit.add_gate(f"leaf{branch}", GateType.NOR, [mid, a])
            circuit.mark_output(leaf)
        targets = self._random_targets(circuit, 4, seed=5)
        gate_eng, level_eng = _make_engines(circuit, self.LIBRARY)
        _assert_states_equal(
            gate_eng.match_batch(targets, {}, anchor=None),
            level_eng.match_batch(targets, {}, anchor=None),
            "po-fanout",
        )

    def test_dirty_wave_mixed_patterns(self):
        """Delta patterns from no-op to whole-circuit: the wave must
        stop, spread, and copy untouched entries exactly like the
        reference implementation."""
        circuit = iscas85_circuit("c880")
        idx = circuit.indexed()
        base = self._random_targets(circuit, 1, seed=31)[0]
        gate_eng, level_eng = _make_engines(circuit, self.LIBRARY)
        ref_g = gate_eng.match_batch(base[np.newaxis, :], {}, anchor=None)
        ref_l = level_eng.match_batch(base[np.newaxis, :], {}, anchor=None)
        rng = np.random.default_rng(32)
        lanes = 5
        targets = np.tile(base, (lanes, 1))
        # lane 0: untouched; lane 1: one deep gate; lane 2: one PO-side
        # gate; lane 3: a third of the circuit; lane 4: every gate.
        targets[1, idx.gate_rows[0]] *= 1.7
        targets[2, idx.gate_rows[-1]] *= 0.3
        third = rng.choice(idx.gate_rows, size=idx.n_gates // 3, replace=False)
        targets[3, third] *= rng.uniform(0.5, 2.0, third.size)
        targets[4, idx.gate_rows] *= rng.uniform(
            0.6, 1.6, idx.gate_rows.size
        )
        changed = targets != base[np.newaxis, :]
        assert not changed[0].any()
        delta_g = gate_eng.match_batch(
            targets, {}, anchor=None, reference=ref_g, changed=changed
        )
        delta_l = level_eng.match_batch(
            targets, {}, anchor=None, reference=ref_l, changed=changed
        )
        _assert_states_equal(delta_g, delta_l, "mixed wave")
        np.testing.assert_array_equal(
            delta_l.cell_idx[0], ref_l.cell_idx[0]
        )
        _assert_states_equal(
            delta_l, level_eng.match_batch(targets, {}, anchor=None),
            "wave vs full",
        )

    def test_match_with_timing_batch_schedules_agree(self):
        circuit = iscas85_circuit("c499")
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        baseline = size_for_speed(circuit, library)
        elec = CircuitElectrical(circuit, baseline, use_tables=False)
        idx = circuit.indexed()
        base_targets = idx.gather(elec.delay_ps)
        ramps = dict(elec.input_ramp_ps)
        cap = analyze_timing(circuit, elec.delay_ps).delay_ps * 1.25
        rng = np.random.default_rng(41)
        targets = np.tile(base_targets, (4, 1))
        targets[1] = base_targets * 3.0  # forces the repair loop
        for lane in (0, 2, 3):
            picks = rng.choice(idx.gate_rows, size=20, replace=False)
            targets[lane, picks] *= rng.uniform(0.5, 3.0, picks.size)
        gate_eng = MatchingEngine(circuit, library, level_batched=False)
        level_eng = MatchingEngine(circuit, library, level_batched=True)
        _assert_states_equal(
            gate_eng.match_with_timing_batch(
                targets, ramps, cap, anchor=baseline
            ),
            level_eng.match_with_timing_batch(
                targets, ramps, cap, anchor=baseline
            ),
            "timing repair",
        )

    def test_scalar_match_agrees_with_level_batch(self):
        circuit = iscas85_circuit("c17")
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        level_eng = MatchingEngine(circuit, library, level_batched=True)
        idx = circuit.indexed()
        targets = self._random_targets(circuit, 1, seed=51)
        state = level_eng.match_batch(targets, {}, anchor=None)
        serial = level_eng.match(
            {
                name: float(targets[0, idx.index[name]])
                for name in level_eng._reverse_order
            },
            {},
        )
        batched = state.assignment(0, idx.order)
        for name in level_eng._reverse_order:
            assert batched[name] == serial[name], name

    def test_empty_population(self):
        circuit = iscas85_circuit("c17")
        idx = circuit.indexed()
        empty = np.empty((0, idx.n_signals))
        gate_eng, level_eng = _make_engines(circuit, self.LIBRARY)
        for engine in (gate_eng, level_eng):
            state = engine.match_batch(empty, {}, anchor=None)
            assert state.cell_idx.shape == (0, idx.n_signals)


class TestBatchedCost:
    def test_evaluate_batch_matches_serial(self):
        circuit = iscas85_circuit("c432")
        analyzer = AsertaAnalyzer(circuit, AsertaConfig(n_vectors=512, seed=1))
        baseline = size_for_speed(circuit)
        evaluator = CostEvaluator(analyzer, baseline)
        assignments = _mixed_assignments(circuit, seed=21, count=4)
        totals = evaluator.evaluate_batch(assignments)
        for lane, assignment in enumerate(assignments):
            serial = evaluator.evaluate(assignment).total
            assert totals[lane] == pytest.approx(serial, rel=RTOL)
