"""Tests for units, errors, Verilog export, and the public API surface."""

import math

import pytest

from repro import errors, units
from repro.circuit.verilog_io import write_verilog, write_verilog_file


class TestUnits:
    def test_discharge_time(self):
        # 1 fC at 1 uA takes 1 ns = 1000 ps.
        assert units.discharge_time_ps(1.0, 1.0) == pytest.approx(1000.0)
        assert math.isinf(units.discharge_time_ps(1.0, 0.0))

    def test_charge(self):
        assert units.charge_fc(2.0, 0.5) == 1.0

    def test_dynamic_energy(self):
        assert units.dynamic_energy_fj(2.0, 1.0) == 2.0
        assert units.dynamic_energy_fj(2.0, 2.0) == 8.0

    def test_leakage_energy(self):
        # 1 uA at 1 V over 1000 ps = 1 fJ.
        assert units.leakage_energy_fj(1.0, 1.0, 1000.0) == pytest.approx(1.0)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.CircuitError,
            errors.BenchFormatError,
            errors.TechnologyError,
            errors.TableError,
            errors.LibraryError,
            errors.SimulationError,
            errors.AnalysisError,
            errors.OptimizationError,
        ):
            assert issubclass(exc, errors.ReproError)
        assert issubclass(errors.CircuitCycleError, errors.CircuitError)
        assert issubclass(errors.UnknownGateError, errors.CircuitError)


class TestVerilogExport:
    def test_c17_export(self, c17):
        text = write_verilog(c17)
        assert "module c17" in text
        assert text.count("nand ") == 6
        assert "endmodule" in text
        for name in c17.inputs:
            # c17 names are numeric, so they appear as escaped identifiers.
            assert f"input \\{name} ;" in text

    def test_escaped_identifiers(self, c17):
        # c17 signal names are numeric -> must be escaped.
        text = write_verilog(c17)
        assert "\\10 " in text

    def test_file_export(self, tmp_path, c17):
        path = tmp_path / "c17.v"
        write_verilog_file(c17, path)
        assert path.read_text().startswith("module")


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quick_workflow(self):
        """The README quickstart, in miniature."""
        import repro

        circuit = repro.iscas85_circuit("c17")
        analyzer = repro.AsertaAnalyzer(
            circuit, repro.AsertaConfig(n_vectors=300, seed=1)
        )
        report = analyzer.analyze()
        assert report.total > 0.0
