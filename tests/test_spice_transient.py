"""Tests for the transient reference simulator and its harnesses."""

import pytest

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.spice.harness import (
    random_vectors,
    transient_unreliability,
    vector_average_output_widths,
)
from repro.spice.transient import TransientSimulator
from repro.tech.glitch import propagate_width
from repro.tech.library import CellParams, ParameterAssignment


class TestInjection:
    def test_strike_on_po_gate_reaches_latch(self, chain4):
        sim = TransientSimulator(chain4)
        po = chain4.outputs[0]
        vector = {"a": False}
        widths = sim.inject(po, input_vector=vector)
        assert widths == {po: pytest.approx(sim.electrical.generated_width_ps[po])}

    def test_inverter_chain_attenuates_stepwise(self, chain4):
        """Width after each stage follows Equation 1 with that stage's
        delay — the transient simulator is Eq-1-exact on a chain."""
        sim = TransientSimulator(chain4)
        vector = {"a": True}
        widths = sim.inject("n0", input_vector=vector)
        expected = sim.electrical.generated_width_ps["n0"]
        for stage in ("n1", "n2", "n3"):
            expected = propagate_width(expected, sim.electrical.delay_ps[stage])
        po = chain4.outputs[0]
        if expected > 0.0:
            assert widths[po] == pytest.approx(expected)
        else:
            assert po not in widths

    def test_logical_masking_blocks_glitch(self):
        """AND gate with the side input at 0 masks the glitch."""
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        victim = circuit.add_gate("victim", GateType.NOT, [a])
        out = circuit.add_gate("out", GateType.AND, [victim, b])
        circuit.mark_output(out)
        sim = TransientSimulator(circuit)
        masked = sim.inject("victim", input_vector={"a": False, "b": False})
        passed = sim.inject("victim", input_vector={"a": False, "b": True})
        assert "out" not in masked
        assert "out" in passed

    def test_xor_always_propagates(self):
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        victim = circuit.add_gate("victim", GateType.NOT, [a])
        out = circuit.add_gate("out", GateType.XOR, [victim, b])
        circuit.mark_output(out)
        sim = TransientSimulator(circuit)
        for b_value in (False, True):
            widths = sim.inject(
                "victim", input_vector={"a": True, "b": b_value}
            )
            assert "out" in widths

    def test_strike_on_input_rejected(self, c17):
        sim = TransientSimulator(c17)
        with pytest.raises(SimulationError):
            sim.inject("1", input_vector={})

    def test_values_reusable_across_strikes(self, c17):
        sim = TransientSimulator(c17)
        vector = {"1": True, "2": False, "3": True, "6": False, "7": True}
        values = sim.logic_values(vector)
        for gate in c17.gates():
            by_values = sim.inject(gate.name, values=values)
            direct = sim.inject(gate.name, input_vector=vector)
            assert by_values == direct

    def test_missing_vector_rejected(self, c17):
        sim = TransientSimulator(c17)
        with pytest.raises(SimulationError):
            sim.inject("10")


class TestHarness:
    def test_random_vectors_deterministic(self, c17):
        assert random_vectors(c17, 5, seed=3) == random_vectors(c17, 5, seed=3)
        assert random_vectors(c17, 5, seed=3) != random_vectors(c17, 5, seed=4)

    def test_report_structure(self, c17):
        report = transient_unreliability(c17, n_vectors=10, seed=2)
        assert report.circuit_name == "c17"
        assert set(report.per_gate) == {g.name for g in c17.gates()}
        assert report.total > 0.0

    def test_gate_subset(self, c17):
        report = transient_unreliability(
            c17, n_vectors=5, seed=2, gates=["10", "11"]
        )
        assert set(report.per_gate) == {"10", "11"}

    def test_size_weighting(self, chain4):
        big = ParameterAssignment(default=CellParams(size=2.0))
        small = ParameterAssignment()
        u_small = transient_unreliability(chain4, small, n_vectors=5, seed=1)
        u_big = transient_unreliability(chain4, big, n_vectors=5, seed=1)
        for name, entry in u_big.per_gate.items():
            assert entry.size == 2.0
        assert u_small.per_gate["n3"].size == 1.0

    def test_scalar_equals_report_total(self, c17):
        total = vector_average_output_widths(c17, n_vectors=8, seed=9)
        report = transient_unreliability(c17, n_vectors=8, seed=9)
        assert total == pytest.approx(report.total)

    def test_tables_mode_close_to_continuous(self, c17, tables):
        reference = vector_average_output_widths(
            c17, n_vectors=10, seed=4, use_tables=False
        )
        interpolated = vector_average_output_widths(
            c17, n_vectors=10, seed=4, use_tables=True, tables=tables
        )
        assert interpolated == pytest.approx(reference, rel=0.25)
