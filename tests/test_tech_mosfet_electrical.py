"""Tests for the device model and gate-level electrical model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gate import GateType
from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.tech import gate_electrical as ge
from repro.tech import mosfet

sizes = st.floats(min_value=0.3, max_value=6.0)
lengths = st.floats(min_value=50.0, max_value=400.0)
vdds = st.floats(min_value=0.5, max_value=1.4)
vths = st.floats(min_value=0.05, max_value=0.4)


class TestMosfet:
    def test_nominal_current_scale(self):
        current = mosfet.on_current_ua(100.0, 70.0, 1.0, 0.2)
        assert 20.0 < current < 100.0  # tens of uA at 70 nm

    @given(w=st.floats(min_value=50, max_value=500), vdd=vdds, vth=vths)
    @settings(max_examples=40, deadline=None)
    def test_current_monotone_in_overdrive(self, w, vdd, vth):
        if vdd <= vth + 0.05:
            return
        low = mosfet.on_current_ua(w, 70.0, vdd, vth)
        high = mosfet.on_current_ua(w, 70.0, vdd + 0.1, vth)
        assert high > low

    def test_current_scales_with_width_over_length(self):
        base = mosfet.on_current_ua(100.0, 70.0, 1.0, 0.2)
        assert mosfet.on_current_ua(200.0, 70.0, 1.0, 0.2) == pytest.approx(2 * base)
        assert mosfet.on_current_ua(100.0, 140.0, 1.0, 0.2) == pytest.approx(base / 2)

    def test_vdd_below_vth_rejected(self):
        with pytest.raises(TechnologyError):
            mosfet.on_current_ua(100.0, 70.0, 0.2, 0.3)

    def test_negative_parameters_rejected(self):
        with pytest.raises(TechnologyError):
            mosfet.on_current_ua(-1.0, 70.0, 1.0, 0.2)
        with pytest.raises(TechnologyError):
            mosfet.gate_capacitance_ff(100.0, 0.0)

    def test_leakage_decreases_exponentially_with_vth(self):
        low = mosfet.leakage_current_ua(100.0, 70.0, 0.1)
        high = mosfet.leakage_current_ua(100.0, 70.0, 0.3)
        ratio = low / high
        expected = math.exp(0.2 / (k.SUBTHRESHOLD_N * 0.02585))
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_size_to_width(self):
        assert mosfet.size_to_width_nm(1.0) == 100.0
        with pytest.raises(TechnologyError):
            mosfet.size_to_width_nm(0.0)


class TestGateFactors:
    def test_inverter_factors_are_unity(self):
        assert ge.drive_divisor(GateType.NOT, 1) == 1.0
        assert ge.input_cap_factor(GateType.NOT, 1) == 1.0

    def test_stacks_weaken_with_fanin(self):
        for gtype in (GateType.NAND, GateType.NOR):
            assert ge.drive_divisor(gtype, 4) > ge.drive_divisor(gtype, 2)

    def test_nor_stack_worse_than_nand(self):
        assert ge.drive_divisor(GateType.NOR, 3) > ge.drive_divisor(GateType.NAND, 3)

    def test_transistor_counts(self):
        assert ge.transistor_count(GateType.NOT, 1) == 2
        assert ge.transistor_count(GateType.NAND, 2) == 4
        assert ge.transistor_count(GateType.AND, 2) == 6

    def test_bad_fanin_rejected(self):
        with pytest.raises(TechnologyError):
            ge.drive_divisor(GateType.NAND, 0)


class TestDelayModel:
    @given(size=sizes, load=st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_delay_increases_with_load(self, size, load):
        fast = ge.propagation_delay_ps(
            GateType.NAND, 2, size, 70.0, 1.0, 0.2, load
        )
        slow = ge.propagation_delay_ps(
            GateType.NAND, 2, size, 70.0, 1.0, 0.2, load + 1.0
        )
        assert slow > fast

    @given(size=sizes)
    @settings(max_examples=30, deadline=None)
    def test_delay_decreases_with_size_at_fixed_load(self, size):
        d1 = ge.propagation_delay_ps(GateType.NOT, 1, size, 70.0, 1.0, 0.2, 2.0)
        d2 = ge.propagation_delay_ps(GateType.NOT, 1, size * 1.5, 70.0, 1.0, 0.2, 2.0)
        assert d2 < d1

    def test_slow_knobs_slow_the_gate(self):
        base = ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2, 1.0)
        assert ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 150.0, 1.0, 0.2, 1.0) > base
        assert ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 0.8, 0.2, 1.0) > base
        assert ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.3, 1.0) > base

    def test_ramp_adds_delay(self):
        quiet = ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2, 1.0, 0.0)
        ramped = ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2, 1.0, 40.0)
        assert ramped == pytest.approx(quiet + k.RAMP_DELAY_FRACTION * 40.0)

    def test_negative_load_rejected(self):
        with pytest.raises(TechnologyError):
            ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2, -1.0)

    def test_output_ramp_proportional_to_delay(self):
        delay = ge.propagation_delay_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2, 1.0)
        ramp = ge.output_ramp_ps(GateType.NOT, 1, 1.0, 70.0, 1.0, 0.2, 1.0)
        assert ramp == pytest.approx(k.RAMP_OF_DELAY * delay)


class TestEnergyAndArea:
    def test_dynamic_energy_quadratic_in_vdd(self):
        low = ge.dynamic_energy_fj(GateType.NOT, 1, 1.0, 1.0, 0.8)
        high = ge.dynamic_energy_fj(GateType.NOT, 1, 1.0, 1.0, 1.2)
        assert high / low == pytest.approx((1.2 / 0.8) ** 2)

    def test_static_power_drops_with_vth(self):
        leaky = ge.static_power_uw(GateType.NAND, 2, 1.0, 70.0, 1.0, 0.1)
        tight = ge.static_power_uw(GateType.NAND, 2, 1.0, 70.0, 1.0, 0.3)
        assert leaky > 10.0 * tight

    def test_area_scales_with_size_and_length(self):
        base = ge.area_units(GateType.NAND, 2, 1.0, 70.0)
        assert ge.area_units(GateType.NAND, 2, 2.0, 70.0) == pytest.approx(2 * base)
        assert ge.area_units(GateType.NAND, 2, 1.0, 140.0) == pytest.approx(2 * base)
