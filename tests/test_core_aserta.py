"""Tests for the ASERTA analyzer and unreliability accounting."""

import pytest

from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.unreliability import GateUnreliability, UnreliabilityReport
from repro.errors import AnalysisError
from repro.tech.library import CellParams, ParameterAssignment


class TestConfig:
    def test_defaults_match_paper(self):
        config = AsertaConfig()
        assert config.n_vectors == 10000
        assert config.n_sample_widths == 10
        assert config.charge_fc == 16.0
        assert config.input_probability == 0.5

    def test_validation(self):
        with pytest.raises(AnalysisError):
            AsertaConfig(n_vectors=0)
        with pytest.raises(AnalysisError):
            AsertaConfig(n_sample_widths=1)
        with pytest.raises(AnalysisError):
            AsertaConfig(charge_fc=-1.0)
        with pytest.raises(AnalysisError):
            AsertaConfig(input_probability=2.0)


class TestAnalysis:
    def test_report_covers_all_gates(self, c17_analyzer, c17):
        report = c17_analyzer.analyze()
        assert set(report.unreliability.per_gate) == {
            g.name for g in c17.gates()
        }
        assert report.total > 0.0
        assert report.runtime_s >= 0.0

    def test_contribution_formula(self, c17_analyzer):
        report = c17_analyzer.analyze()
        for entry in report.unreliability.per_gate.values():
            assert entry.contribution == pytest.approx(
                entry.size * sum(entry.widths_by_output.values())
            )
        assert report.total == pytest.approx(
            sum(e.contribution for e in report.unreliability.per_gate.values())
        )

    def test_zero_charge_means_zero_unreliability(self, c17_analyzer):
        report = c17_analyzer.analyze(charge_fc=0.0)
        assert report.total == 0.0

    def test_unreliability_monotone_in_charge(self, c17_analyzer):
        low = c17_analyzer.analyze(charge_fc=8.0).total
        high = c17_analyzer.analyze(charge_fc=32.0).total
        assert high >= low

    def test_analysis_deterministic(self, c17_analyzer):
        assert c17_analyzer.analyze().total == pytest.approx(
            c17_analyzer.analyze().total
        )

    def test_size_weighting_visible(self, c17_analyzer):
        big = ParameterAssignment(default=CellParams(size=2.0))
        nominal_report = c17_analyzer.analyze()
        big_report = c17_analyzer.analyze(big)
        for name, entry in big_report.unreliability.per_gate.items():
            assert entry.size == 2.0
        assert nominal_report.unreliability.per_gate["22"].size == 1.0

    def test_po_gate_width_hits_latch_directly(self, c17_analyzer, c17):
        report = c17_analyzer.analyze()
        for out in c17.outputs:
            entry = report.unreliability.per_gate[out]
            assert entry.widths_by_output[out] == pytest.approx(
                entry.generated_width_ps
            )

    def test_softest_gates_ranked(self, c432_analyzer):
        report = c432_analyzer.analyze()
        top = report.unreliability.softest_gates(5)
        assert len(top) == 5
        values = [e.contribution for e in top]
        assert values == sorted(values, reverse=True)
        assert values[0] == max(
            e.contribution for e in report.unreliability.per_gate.values()
        )


class TestReportHelpers:
    def test_improvement_over(self):
        def fake(name, contribution):
            return GateUnreliability(
                gate=name, generated_width_ps=1.0, size=1.0,
                widths_by_output={"o": contribution},
            )

        base = UnreliabilityReport("c", {"g": fake("g", 10.0)})
        better = UnreliabilityReport("c", {"g": fake("g", 6.0)})
        assert better.improvement_over(base) == pytest.approx(0.4)
        assert base.improvement_over(base) == 0.0

    def test_contribution_missing_gate_is_zero(self):
        report = UnreliabilityReport("c", {})
        assert report.contribution("ghost") == 0.0
