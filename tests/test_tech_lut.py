"""Tests for the N-dimensional interpolated lookup tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TableError
from repro.tech.lut import GridTable, interp_monotone


def linear_table():
    """f(x, y) = 2x + 3y sampled on a grid (multilinear interp is exact)."""
    xs = np.array([0.0, 1.0, 2.5, 4.0])
    ys = np.array([-1.0, 0.0, 2.0])
    values = 2.0 * xs[:, None] + 3.0 * ys[None, :]
    return GridTable([("x", xs), ("y", ys)], values)


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(TableError):
            GridTable([("x", [0.0, 1.0])], np.zeros(3))

    def test_non_increasing_grid_rejected(self):
        with pytest.raises(TableError):
            GridTable([("x", [0.0, 0.0])], np.zeros(2))
        with pytest.raises(TableError):
            GridTable([("x", [1.0, 0.0])], np.zeros(2))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(TableError):
            GridTable(
                [("x", [0.0, 1.0]), ("x", [0.0, 1.0])], np.zeros((2, 2))
            )

    def test_no_axes_rejected(self):
        with pytest.raises(TableError):
            GridTable([], np.zeros(()))

    def test_axis_accessors(self):
        table = linear_table()
        assert table.axis_names == ("x", "y")
        assert list(table.axis_grid("y")) == [-1.0, 0.0, 2.0]
        with pytest.raises(TableError):
            table.axis_grid("z")


class TestLookup:
    def test_exact_at_grid_points(self):
        table = linear_table()
        for x in (0.0, 1.0, 2.5, 4.0):
            for y in (-1.0, 0.0, 2.0):
                assert table.lookup(x=x, y=y) == pytest.approx(2 * x + 3 * y)

    @given(
        x=st.floats(min_value=0.0, max_value=4.0),
        y=st.floats(min_value=-1.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_for_multilinear_functions(self, x, y):
        assert linear_table().lookup(x=x, y=y) == pytest.approx(
            2 * x + 3 * y, abs=1e-9
        )

    def test_clamping_outside_grid(self):
        table = linear_table()
        assert table.lookup(x=-10.0, y=0.0) == pytest.approx(0.0)
        assert table.lookup(x=10.0, y=0.0) == pytest.approx(8.0)

    def test_missing_coordinate_rejected(self):
        with pytest.raises(TableError):
            linear_table().lookup(x=1.0)

    def test_unknown_coordinate_rejected(self):
        with pytest.raises(TableError):
            linear_table().lookup(x=1.0, y=0.0, z=5.0)

    def test_nan_rejected(self):
        with pytest.raises(TableError):
            linear_table().lookup(x=float("nan"), y=0.0)

    def test_singleton_axis(self):
        table = GridTable([("x", [2.0])], np.array([7.0]))
        assert table.lookup(x=2.0) == 7.0
        assert table.lookup(x=99.0) == 7.0

    def test_five_dimensional_interpolation(self):
        grids = [np.array([0.0, 1.0])] * 5
        mesh = np.meshgrid(*grids, indexing="ij")
        values = sum(mesh)  # f = x0+x1+x2+x3+x4, multilinear
        table = GridTable(
            [(f"x{i}", grids[i]) for i in range(5)], np.asarray(values)
        )
        coords = {f"x{i}": 0.3 + 0.1 * i for i in range(5)}
        assert table.lookup(**coords) == pytest.approx(sum(coords.values()))


class TestInterpMonotone:
    def test_interpolates_and_clamps(self):
        xs = np.array([0.0, 10.0, 20.0])
        ys = np.array([0.0, 100.0, 110.0])
        assert interp_monotone(xs, ys, 5.0) == pytest.approx(50.0)
        assert interp_monotone(xs, ys, -5.0) == 0.0
        assert interp_monotone(xs, ys, 50.0) == 110.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(TableError):
            interp_monotone(np.array([0.0, 0.0]), np.array([1.0, 2.0]), 0.0)
        with pytest.raises(TableError):
            interp_monotone(np.array([0.0]), np.array([1.0, 2.0]), 0.0)
