"""Cross-module integration tests: the full pipelines, end to end."""

import numpy as np
import pytest

from repro import (
    AsertaAnalyzer,
    AsertaConfig,
    CellLibrary,
    Sertopt,
    SertoptConfig,
    iscas85_circuit,
    parse_bench,
    write_bench,
)
from repro.analysis.correlation import correlate_reports
from repro.core.baseline import size_for_speed
from repro.core.sertopt import SertoptConfig
from repro.spice import transient_unreliability
from repro.sta.timing import analyze_timing
from repro.tech.electrical_view import CircuitElectrical


class TestAnalysisPipeline:
    def test_aserta_agrees_with_reference_on_c432(self, c432):
        """The Fig-3 claim at test scale: strong per-gate correlation
        between the probabilistic analyzer and the vector-accurate
        transient reference."""
        analyzer = AsertaAnalyzer(c432, AsertaConfig(n_vectors=2000, seed=7))
        aserta = analyzer.analyze().unreliability
        reference = transient_unreliability(c432, n_vectors=25, seed=7)
        result = correlate_reports(
            c432, aserta, reference, max_levels_from_output=5
        )
        assert result.correlation > 0.75

    def test_roundtripped_circuit_analyzes_identically(self, c17):
        """bench write -> parse -> analyze gives identical unreliability."""
        rebuilt = parse_bench(write_bench(c17), name="c17")
        a = AsertaAnalyzer(c17, AsertaConfig(n_vectors=500, seed=3)).analyze()
        b = AsertaAnalyzer(rebuilt, AsertaConfig(n_vectors=500, seed=3)).analyze()
        assert a.total == pytest.approx(b.total)

    def test_user_supplied_bench_file_runs_through_tools(self, tmp_path):
        """A netlist loaded from disk (the real-ISCAS path) works with
        every tool in the library."""
        source = write_bench(iscas85_circuit("c17"))
        path = tmp_path / "user.bench"
        path.write_text(source)
        from repro import parse_bench_file

        circuit = parse_bench_file(path)
        analyzer = AsertaAnalyzer(circuit, AsertaConfig(n_vectors=400, seed=1))
        report = analyzer.analyze()
        assert report.total > 0.0
        result = Sertopt(
            circuit,
            config=SertoptConfig(
                max_evaluations=10, aserta=AsertaConfig(n_vectors=400, seed=1)
            ),
        ).optimize()
        assert result.optimized.total <= result.baseline.total + 1e-9


class TestOptimizationPipeline:
    def test_sizing_only_mode(self, c432):
        """The paper's fallback: sizing-only optimization still runs and
        never worsens the cost."""
        config = SertoptConfig(
            max_evaluations=25, aserta=AsertaConfig(n_vectors=1000, seed=1)
        )
        result = Sertopt(
            c432, library=CellLibrary.sizing_only(), config=config
        ).optimize()
        assert result.vdds_used() == (1.0,)
        assert result.vths_used() == (0.2,)
        assert result.optimized.total <= result.baseline.total + 1e-9

    def test_svd_delay_space_in_flow(self, c432):
        """The literal paper construction (sampled T + SVD nullspace)
        remains usable through the DelaySpace API."""
        from repro.core.delay_assignment import DelaySpace

        elec = CircuitElectrical(
            c432, size_for_speed(c432), use_tables=False
        )
        space = DelaySpace(
            c432, elec.delay_ps, max_paths=150, method="svd", max_dimension=6
        )
        x = np.zeros(space.dimension)
        if space.dimension:
            x[0] = 3.0
        assert space.path_delay_residual(x) < 1e-6

    def test_optimized_circuit_respects_timing_envelope(self, c432):
        config = SertoptConfig(
            max_evaluations=30, aserta=AsertaConfig(n_vectors=1000, seed=2)
        )
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        result = Sertopt(c432, library=library, config=config).optimize()
        baseline_elec = CircuitElectrical(
            c432, result.baseline_assignment, use_tables=False
        )
        optimized_elec = CircuitElectrical(
            c432, result.optimized_assignment, use_tables=False
        )
        base_t = analyze_timing(c432, baseline_elec.delay_ps).delay_ps
        opt_t = analyze_timing(c432, optimized_elec.delay_ps).delay_ps
        cap = config.weights.timing_cap
        assert opt_t <= base_t * (cap + 0.12)

    def test_table1_contrast_c432_vs_c499(self):
        """The paper's central qualitative claim, end to end: the
        control-logic circuit hardens substantially, the
        error-correcting circuit barely moves."""
        from repro.experiments.common import ExperimentScale
        from repro.experiments.table1_optimization import optimize_circuit

        scale = ExperimentScale.fast()
        c432_result = optimize_circuit("c432", scale)
        c499_result = optimize_circuit("c499", scale)
        assert c432_result.unreliability_reduction > 0.15
        assert (
            c499_result.unreliability_reduction
            < c432_result.unreliability_reduction
        )


class TestChargeExtension:
    def test_unreliability_negligible_below_critical_charge(self, c17_analyzer):
        """Sub-critical strikes are (nearly) harmless.  The interpolated
        charge axis leaves a small linear foot between the 0 fC and
        2 fC grid points, so "zero" means "well under a percent of the
        nominal strike's unreliability"."""
        tiny = c17_analyzer.analyze(charge_fc=0.05).total
        nominal = c17_analyzer.analyze(charge_fc=16.0).total
        assert tiny < 0.02 * nominal
        assert c17_analyzer.analyze(charge_fc=0.0).total == 0.0

    def test_charge_axis_interpolates_between_grid_points(self, c432_analyzer):
        mid = c432_analyzer.analyze(charge_fc=12.0).total
        low = c432_analyzer.analyze(charge_fc=8.0).total
        high = c432_analyzer.analyze(charge_fc=16.0).total
        assert low <= mid <= high
