"""Property tests for Equation 1 and the glitch-generation model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.tech.glitch import (
    critical_charge_fc,
    generated_width_ps,
    propagate_width,
    propagate_width_array,
)

widths = st.floats(min_value=0.0, max_value=5000.0)
delays = st.floats(min_value=0.0, max_value=1000.0)


class TestEquationOne:
    def test_fully_masked_region(self):
        assert propagate_width(10.0, 20.0) == 0.0

    def test_attenuating_region(self):
        assert propagate_width(30.0, 20.0) == pytest.approx(20.0)

    def test_pass_through_region(self):
        assert propagate_width(100.0, 20.0) == 100.0

    def test_boundaries_are_continuous(self):
        d = 25.0
        eps = 1e-7
        assert propagate_width(d - eps, d) == 0.0
        assert propagate_width(d, d) == pytest.approx(0.0, abs=1e-6)
        assert propagate_width(2 * d, d) == pytest.approx(2 * d)
        assert propagate_width(2 * d + eps, d) == pytest.approx(2 * d, abs=1e-5)

    @given(w=widths, d=delays)
    @settings(max_examples=100, deadline=None)
    def test_output_never_exceeds_input(self, w, d):
        assert propagate_width(w, d) <= w + 1e-12

    @given(w=widths, d=delays)
    @settings(max_examples=100, deadline=None)
    def test_output_nonnegative(self, w, d):
        assert propagate_width(w, d) >= 0.0

    @given(w=widths, d=delays, dw=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_input_width(self, w, d, dw):
        assert propagate_width(w + dw, d) >= propagate_width(w, d) - 1e-9

    @given(w=widths, d=delays, dd=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_antimonotone_in_delay(self, w, d, dd):
        """Slower gates attenuate at least as much (paper Section 2)."""
        assert propagate_width(w, d + dd) <= propagate_width(w, d) + 1e-9

    @given(w=widths, d=delays)
    @settings(max_examples=60, deadline=None)
    def test_wide_glitch_passes_unattenuated(self, w, d):
        wide = 2.0 * d + w + 1.0
        assert propagate_width(wide, d) == wide

    def test_negative_arguments_rejected(self):
        with pytest.raises(TechnologyError):
            propagate_width(-1.0, 5.0)
        with pytest.raises(TechnologyError):
            propagate_width(5.0, -1.0)

    @given(
        ws=st.lists(widths, min_size=1, max_size=12),
        d=delays,
    )
    @settings(max_examples=60, deadline=None)
    def test_array_version_matches_scalar(self, ws, d):
        array = propagate_width_array(np.array(ws), d)
        for value, w in zip(array, ws):
            assert value == pytest.approx(propagate_width(w, d))


class TestGeneratedWidth:
    def test_below_critical_charge_no_glitch(self):
        critical = critical_charge_fc(2.0, 1.0)
        assert generated_width_ps(critical * 0.99, 2.0, 40.0, 1.0) == 0.0

    def test_above_critical_charge_glitch(self):
        assert generated_width_ps(16.0, 1.0, 40.0, 1.0) > 0.0

    @given(q=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_charge(self, q):
        low = generated_width_ps(q, 1.0, 40.0, 1.0)
        high = generated_width_ps(q + 1.0, 1.0, 40.0, 1.0)
        assert high >= low

    @given(i=st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=50, deadline=None)
    def test_antimonotone_in_drive(self, i):
        weak = generated_width_ps(16.0, 1.0, i, 1.0)
        strong = generated_width_ps(16.0, 1.0, i * 1.5, 1.0)
        assert strong <= weak

    def test_width_sublinear_in_charge(self):
        """The saturation property that makes slowing-to-mask feasible:
        doubling the removal time less than doubles the width."""
        w1 = generated_width_ps(16.0, 1.0, 40.0, 1.0) - k.STRIKE_TAU_PS
        w2 = generated_width_ps(31.5, 1.0, 40.0, 1.0) - k.STRIKE_TAU_PS
        assert w2 < 2.0 * w1

    def test_nominal_magnitude(self):
        """16 fC on a minimum inverter-ish node: a couple hundred ps."""
        width = generated_width_ps(16.0, 0.5, 37.0, 1.0)
        assert 100.0 < width < 400.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(TechnologyError):
            generated_width_ps(-1.0, 1.0, 40.0, 1.0)
        with pytest.raises(TechnologyError):
            generated_width_ps(16.0, 1.0, 0.0, 1.0)
        with pytest.raises(TechnologyError):
            critical_charge_fc(0.0, 1.0)
