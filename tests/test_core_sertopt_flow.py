"""End-to-end tests of the SERTOPT flow and the baseline sizing."""

import pytest

from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.baseline import size_for_speed
from repro.core.sertopt import Sertopt, SertoptConfig
from repro.errors import OptimizationError
from repro.sta.timing import analyze_timing
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellLibrary, NOMINAL_CELL, ParameterAssignment


class TestBaseline:
    def test_sizing_never_slows_circuit(self, c432):
        library = CellLibrary.paper_library()
        nominal_delay = analyze_timing(
            c432,
            CircuitElectrical(
                c432, ParameterAssignment(), use_tables=False
            ).delay_ps,
        ).delay_ps
        sized = size_for_speed(c432, library)
        sized_delay = analyze_timing(
            c432,
            CircuitElectrical(c432, sized, use_tables=False).delay_ps,
        ).delay_ps
        assert sized_delay <= nominal_delay

    def test_baseline_keeps_nominal_voltages(self, c432):
        sized = size_for_speed(c432)
        for gate in c432.gates():
            cell = sized[gate.name]
            assert cell.vdd == NOMINAL_CELL.vdd
            assert cell.vth == NOMINAL_CELL.vth
            assert cell.length_nm == NOMINAL_CELL.length_nm


class TestSertoptConfig:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            SertoptConfig(max_evaluations=0)
        with pytest.raises(OptimizationError):
            SertoptConfig(coefficient_bound_ps=-1.0)


class TestSertoptFlow:
    @pytest.fixture(scope="class")
    def result(self):
        circuit = iscas85_circuit("c432")
        config = SertoptConfig(
            max_evaluations=40,
            seed=0,
            aserta=AsertaConfig(n_vectors=1500, seed=0),
        )
        library = CellLibrary.paper_library(
            vdds=(0.8, 1.0), vths=(0.2, 0.3)
        )
        return Sertopt(circuit, library=library, config=config).optimize()

    def test_result_never_worse_than_baseline(self, result):
        assert result.optimized.total <= (
            result.baseline.total + 1e-9
        )

    def test_ratios_computed(self, result):
        assert result.area_ratio > 0.0
        assert result.energy_ratio > 0.0
        assert 0.5 < result.delay_ratio < 1.6

    def test_reduction_bounded(self, result):
        assert -0.05 <= result.unreliability_reduction <= 1.0

    def test_voltages_within_menu(self, result):
        assert set(result.vdds_used()) <= {0.8, 1.0}
        assert set(result.vths_used()) <= {0.2, 0.3}

    def test_vdd_ordering_in_result(self, result):
        circuit = iscas85_circuit("c432")
        assignment = result.optimized_assignment
        for gate in circuit.gates():
            for successor in circuit.fanouts(gate.name):
                assert assignment[gate.name].vdd >= (
                    assignment[successor].vdd - 1e-12
                )

    def test_delay_space_reported(self, result):
        assert result.delay_space_info["dimension"] >= 0
        assert result.delay_space_info["gates"] == iscas85_circuit(
            "c432"
        ).gate_count

    def test_runtime_recorded(self, result):
        assert result.runtime_s > 0.0


class TestSertoptFindsImprovement:
    def test_c432_improves_with_reasonable_budget(self):
        """The headline reproduction: SERTOPT reduces c432-like
        unreliability by a double-digit percentage."""
        circuit = iscas85_circuit("c432")
        config = SertoptConfig(
            max_evaluations=60,
            seed=0,
            aserta=AsertaConfig(n_vectors=2000, seed=0),
        )
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        result = Sertopt(circuit, library=library, config=config).optimize()
        assert result.unreliability_reduction > 0.10
        assert result.delay_ratio < 1.40
